#!/usr/bin/env python3
"""Edge insertions without rebuilding the index (§8 territory).

The paper leaves dynamic label maintenance open; this library keeps the
static labels and answers queries exactly through a patch overlay while
edges accumulate, rebuilding only when the patch grows. The script
simulates a growing social graph: new friendships arrive, every answer
stays exact, and a rebuild folds the patch in.

Run:  python examples/dynamic_updates.py
"""

import random
import time

from repro.dynamic.incremental import DynamicSPCIndex
from repro.generators.random_graphs import barabasi_albert_graph
from repro.graph.traversal import spc_bfs


def main():
    graph = barabasi_albert_graph(900, 3, seed=11)
    print(f"base graph: {graph.n} vertices, {graph.m} edges")

    index = DynamicSPCIndex(graph, ordering="degree", auto_rebuild=10)
    print(f"static index: {index.base_index.total_entries()} entries, "
          f"built in {index.base_index.build_seconds:.2f}s\n")

    rng = random.Random(4)
    watched = (5, 640)
    print(f"watching pair {watched}:"
          f" dist/count = {index.count_with_distance(*watched)}")

    inserted = 0
    while inserted < 8:
        u, v = rng.randrange(graph.n), rng.randrange(graph.n)
        if u == v or index.current_graph().has_edge(u, v):
            continue
        index.insert_edge(u, v)
        inserted += 1
        dist, count = index.count_with_distance(*watched)
        # Exactness check against BFS on the updated graph.
        assert (dist, count) == spc_bfs(index.current_graph(), *watched)
        print(f"+edge ({u:4d},{v:4d})  pending={len(index.pending_edges)}  "
              f"pair -> dist {dist}, {count} paths")

    started = time.perf_counter()
    pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(300)]
    for s, t in pairs:
        index.count_with_distance(s, t)
    patched = time.perf_counter() - started

    index.rebuild()
    started = time.perf_counter()
    for s, t in pairs:
        index.count_with_distance(s, t)
    clean = time.perf_counter() - started

    print(f"\n300 queries with 8 pending edges: {patched * 1e3:.1f} ms")
    print(f"300 queries after rebuild:        {clean * 1e3:.1f} ms")
    print("answers are exact in both regimes; the patch overlay trades "
          "query time for skipping rebuilds")


if __name__ == "__main__":
    main()
