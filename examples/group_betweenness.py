#!/usr/bin/env python3
"""Group betweenness via the counting oracle (§1's driving application).

Evaluating B̈(C) for many candidate groups needs pairwise distances and
shortest-path counts; [44] precomputed full matrices, which hub labeling
replaces. This script scores a batch of random groups two ways — oracle
queries vs exact per-group BFS — verifies they agree, and reports the
speedup.

Run:  python examples/group_betweenness.py
"""

import math
import time

from repro import build_index
from repro.applications.group_betweenness import (
    GroupBetweennessEvaluator,
    group_betweenness_exact,
)
from repro.bench.workloads import group_workload, query_workload
from repro.datasets.registry import load_dataset


def main():
    graph = load_dataset("WI", scale=0.6)
    print(f"graph: {graph.n} vertices, {graph.m} edges")

    index = build_index(graph, ordering="significant-path",
                        reductions=("shell", "equivalence"))
    print(f"index built in {index.build_seconds:.2f}s "
          f"({index.total_entries()} entries)")

    pairs = query_workload(graph.n, 400, seed=3)
    groups = group_workload(graph.n, groups=12, group_size=4, seed=4)
    evaluator = GroupBetweennessEvaluator(index, pairs)

    started = time.perf_counter()
    oracle_scores = [evaluator.evaluate(group) for group in groups]
    oracle_time = time.perf_counter() - started

    started = time.perf_counter()
    exact_scores = [group_betweenness_exact(graph, group, pairs) for group in groups]
    exact_time = time.perf_counter() - started

    print("\n group                     B̈(C)   (oracle == BFS)")
    for group, ours, theirs in zip(groups, oracle_scores, exact_scores):
        assert math.isclose(ours, theirs, rel_tol=1e-9)
        print(f" {str(group):24s} {ours:8.3f}   ok")

    print(f"\noracle evaluation: {oracle_time:.2f}s; "
          f"BFS baseline: {exact_time:.2f}s "
          f"({exact_time / max(oracle_time, 1e-9):.1f}x)")
    print("(one index build amortises across every group scored)")


if __name__ == "__main__":
    main()
