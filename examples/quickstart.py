#!/usr/bin/env python3
"""Quickstart: build a counting index and query it.

Builds HP-SPC* (all three §4 reductions) over a synthetic social network,
then answers shortest-path-count queries in label-scan time and checks a
few of them against online BFS.

Run:  python examples/quickstart.py
"""

from repro import build_index
from repro.baselines.bfs_counting import BFSCountingOracle
from repro.generators.random_graphs import barabasi_albert_graph
from repro.utils.rng import random_pairs


def main():
    graph = barabasi_albert_graph(2000, 4, seed=7)
    print(f"graph: {graph.n} vertices, {graph.m} edges")

    index = build_index(
        graph,
        ordering="significant-path",
        reductions=("shell", "equivalence", "independent-set"),
    )
    print(f"index: {index.total_entries()} label entries "
          f"({index.size_bytes() / 1024:.1f} KiB packed), "
          f"built in {index.build_seconds:.2f}s")

    baseline = BFSCountingOracle(graph)
    print("\n  s     t   dist  #shortest-paths")
    for s, t in random_pairs(graph.n, 8, rng=1):
        dist, count = index.count_with_distance(s, t)
        assert (dist, count) == baseline.count_with_distance(s, t)
        dist_text = str(dist) if count else "inf"
        print(f"{s:5d} {t:5d}  {dist_text:>4}  {count}")

    # Single-call helpers:
    s, t = 0, graph.n // 2
    print(f"\nspc({s}, {t}) = {index.count(s, t)}")
    print(f"sd({s}, {t})  = {index.distance(s, t)}")


if __name__ == "__main__":
    main()
