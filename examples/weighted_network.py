#!/usr/bin/env python3
"""Weighted undirected counting on a road-like network.

Road networks are weighted and undirected — the §5.3 highway-dimension
setting. This script perturbs a grid into a road-like weighted graph,
builds the weighted pipeline (one Dijkstra per hub, single label set),
and compares its index against the naive directed lift of §7.

Run:  python examples/weighted_network.py
"""

import random

from repro.directed.index import DirectedSPCIndex
from repro.utils.rng import random_pairs
from repro.weighted.graph import WeightedGraph, spc_weighted
from repro.weighted.index import WeightedSPCIndex


def road_grid(rows, cols, seed=0):
    """Grid with travel-time weights and a few missing streets."""
    rng = random.Random(seed)
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols and rng.random() > 0.08:
                edges.append((u, u + 1, rng.choice((1, 1, 2, 3))))
            if r + 1 < rows and rng.random() > 0.08:
                edges.append((u, u + cols, rng.choice((1, 1, 2, 3))))
    return WeightedGraph.from_edges(rows * cols, edges)


def main():
    graph = road_grid(16, 16, seed=2)
    print(f"road network: {graph.n} junctions, {graph.m} weighted roads")

    index = WeightedSPCIndex.build(
        graph, reductions=("shell", "equivalence", "independent-set")
    )
    lifted = DirectedSPCIndex.build(graph.to_digraph())
    print(f"weighted pipeline : {index.total_entries():6d} entries, "
          f"built in {index.build_seconds:.2f}s")
    print(f"directed lift (§7): {lifted.total_entries():6d} entries, "
          f"built in {lifted.build_seconds:.2f}s")
    print(f"-> one undirected label set saves "
          f"{100 * (1 - index.total_entries() / lifted.total_entries()):.0f}% "
          "of the lifted index\n")

    print(" from    to   time  #fastest-routes")
    for s, t in random_pairs(graph.n, 6, rng=5):
        dist, count = index.count_with_distance(s, t)
        assert (dist, count) == spc_weighted(graph, s, t)
        assert (dist, count) == lifted.count_with_distance(s, t)
        dist_text = str(dist) if count else "-"
        print(f"{s:5d} {t:5d}  {dist_text:>5}  {count}")

    corner_a, corner_b = 0, graph.n - 1
    dist, count = index.count_with_distance(corner_a, corner_b)
    print(f"\ncorner to corner: time {dist}, {count} equally-fast routes")


if __name__ == "__main__":
    main()
