#!/usr/bin/env python3
"""§7 extension: counting minimum-weight routes in a directed road grid.

Builds a weighted digraph (a city-style grid with one-way streets and
variable travel times), indexes it with directed HP-SPC plus all three
reductions, and answers route-count queries — e.g. how many distinct
fastest routes connect two corners, a robustness signal for routing.

Run:  python examples/directed_routing.py
"""

import random

from repro.directed.index import DirectedSPCIndex
from repro.graph.digraph import WeightedDigraph
from repro.graph.traversal import spc_dijkstra


def one_way_grid(rows, cols, seed=0):
    """Grid digraph: every street gets a direction and a travel time."""
    rng = random.Random(seed)
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                w = rng.choice((1, 1, 2))
                if rng.random() < 0.75:   # two-way street
                    edges += [(v, v + 1, w), (v + 1, v, w)]
                else:                      # one-way
                    edges.append((v, v + 1, w) if rng.random() < 0.5 else (v + 1, v, w))
            if r + 1 < rows:
                w = rng.choice((1, 1, 2))
                if rng.random() < 0.75:
                    edges += [(v, v + cols, w), (v + cols, v, w)]
                else:
                    edges.append((v, v + cols, w) if rng.random() < 0.5 else (v + cols, v, w))
    return WeightedDigraph.from_edges(rows * cols, edges)


def main():
    rows, cols = 14, 14
    digraph = one_way_grid(rows, cols, seed=3)
    print(f"road grid: {digraph.n} junctions, {digraph.m} directed streets")

    index = DirectedSPCIndex.build(
        digraph, reductions=("shell", "equivalence", "independent-set")
    )
    print(f"index built in {index.build_seconds:.2f}s "
          f"({index.total_entries()} entries across L^in and L^out)")

    corners = [0, cols - 1, (rows - 1) * cols, rows * cols - 1]
    print("\n  from    to   time  #fastest-routes")
    for s in corners:
        for t in corners:
            if s == t:
                continue
            dist, count = index.count_with_distance(s, t)
            assert (dist, count) == spc_dijkstra(digraph, s, t)
            dist_text = str(dist) if count else "unreachable"
            print(f"{s:6d} {t:6d}  {dist_text:>5}  {count}")

    # Route diversity: corners connected by a single fastest route are
    # fragile; many parallel fastest routes mean resilience.
    s, t = 0, rows * cols - 1
    _, count = index.count_with_distance(s, t)
    print(f"\nroute diversity {s} -> {t}: {count} equally-fast routes")


if __name__ == "__main__":
    main()
