#!/usr/bin/env python3
"""Exp-6 in miniature: PL-SPC vs HP-SPC variants on a Delaunay graph.

Planar triangulations have enormous shortest-path counts; this script
builds the paper's four competitors over one scipy Delaunay instance and
prints a Table-5-style comparison (indexing time / entries / query time).

Run:  python examples/planar_comparison.py
"""

import time

from repro.baselines.pl_spc import PLSPCIndex
from repro.core.index import SPCIndex
from repro.datasets.registry import load_delaunay
from repro.theory.planar_order import planar_separator_order
from repro.utils.rng import random_pairs


def measure_queries(index, pairs):
    started = time.perf_counter()
    for s, t in pairs:
        index.count_with_distance(s, t)
    return (time.perf_counter() - started) / len(pairs) * 1e6


def main():
    graph, points = load_delaunay(n=1200, seed=20)
    print(f"Delaunay: {graph.n} vertices, {graph.m} edges")
    pairs = list(random_pairs(graph.n, 500, rng=1))
    order = planar_separator_order(graph, points=points)

    competitors = []
    pl = PLSPCIndex.build(graph, order=order)
    competitors.append(("PL-SPC", pl))
    competitors.append(("HP-SPC_P", SPCIndex.build(graph, ordering=list(order))))
    competitors.append(("HP-SPC_D", SPCIndex.build(graph, ordering="degree")))
    competitors.append(("HP-SPC_S", SPCIndex.build(graph, ordering="significant-path")))

    print(f"\n{'variant':10s} {'index s':>8s} {'entries':>9s} {'query us':>9s}")
    for name, index in competitors:
        avg_us = measure_queries(index, pairs)
        print(f"{name:10s} {index.build_seconds:8.2f} "
              f"{index.total_entries():9d} {avg_us:9.1f}")

    # Spot check: a big count, identical across competitors.
    s, t = 0, graph.n - 1
    counts = {name: index.count(s, t) for name, index in competitors}
    assert len(set(counts.values())) == 1
    print(f"\nspc({s}, {t}) = {counts['PL-SPC']} (all variants agree)")


if __name__ == "__main__":
    main()
