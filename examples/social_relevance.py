#!/usr/bin/env python3
"""Count-aware relevance ranking (the paper's Figure 1 motivation).

In small-world graphs many candidates sit at the same distance from a
query vertex, so distance alone cannot rank them; the number of shortest
paths breaks the tie. This script builds a counting index over a social
analog, picks a source, and compares the distance-only ranking with the
count-aware one.

Run:  python examples/social_relevance.py
"""

from collections import Counter

from repro import build_index
from repro.applications.relevance import relevance_ranking
from repro.datasets.registry import load_dataset


def main():
    graph = load_dataset("FB", scale=0.8)
    index = build_index(graph, ordering="significant-path",
                        reductions=("shell", "equivalence"))
    source = max(graph.vertices(), key=graph.degree)

    candidates = [v for v in graph.vertices() if v != source][:400]
    ranked = relevance_ranking(index, source, candidates)

    by_distance = Counter(dist for _, dist, count in ranked if count)
    print(f"source {source} (degree {graph.degree(source)}); "
          f"{len(candidates)} candidates")
    print("candidates per distance:",
          dict(sorted(by_distance.items())))

    # Show how counts separate equally-distant candidates. Distance-1
    # candidates always have exactly one path, so look at distance >= 2,
    # where the Figure 1 effect appears.
    top_distance = min(d for _, d, c in ranked if c and d >= 2)
    tied = [(v, c) for v, d, c in ranked if d == top_distance]
    tied.sort(key=lambda vc: -vc[1])
    print(f"\n{len(tied)} candidates at distance {top_distance}, "
          "ranked by shortest-path count:")
    for v, count in tied[:10]:
        print(f"  vertex {v:5d}: {count} shortest paths")
    if len(tied) > 1:
        best, worst = tied[0][1], tied[-1][1]
        print(f"\nmost vs least relevant at the same distance: "
              f"{best} vs {worst} paths "
              f"({best / max(1, worst):.1f}x difference)")


if __name__ == "__main__":
    main()
