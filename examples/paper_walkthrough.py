#!/usr/bin/env python3
"""The paper's running example, executed end to end.

Rebuilds Figure 2a's graph G, walks the §3-§4 pipeline on it — trough
paths, the Table 2 labeling, the Figure 4 shell cut, the equivalence
classes — and checks every printed fact against the paper. A compact way
to see each concept on the exact graphs the paper uses.

Run:  python examples/paper_walkthrough.py
"""

from repro.core.espc import all_shortest_paths, build_espc, verify_espc
from repro.core.hp_spc import build_labels
from repro.core.query import count_query
from repro.graph.graph import Graph
from repro.reductions.equivalence import EquivalenceReduction
from repro.reductions.shell import ShellReduction

# Figure 2a, vertices v1..v13 as ids 0..12.
G_EDGES = [
    (0, 1), (0, 4), (6, 1), (6, 4), (1, 2), (1, 5), (2, 4),
    (2, 3), (2, 7), (3, 5), (7, 5), (3, 7),
    (6, 9), (6, 12), (9, 10), (10, 11), (3, 8),
]
# §3's order over G' (Figure 2b): v2 ⪯ v3 ⪯ v5 ⪯ v6 ⪯ v1 ⪯ v4.
GPRIME_ORDER = [1, 2, 4, 5, 0, 3]


def v(i):
    """Paper-style vertex name for a 0-based id."""
    return f"v{i + 1}"


def path_names(path):
    return "(" + ", ".join(v(x) for x in path) + ")"


def main():
    graph = Graph.from_edges(13, G_EDGES)
    print("== Example 2.1 — notation on G (Figure 2a)")
    print(f"nbr(v7) = {{{', '.join(v(x) for x in graph.neighbors(6))}}}, "
          f"deg(v7) = {graph.degree(6)}")
    paths = all_shortest_paths(graph, 2, 5)
    print(f"P_v3,v6 = {[path_names(p) for p in paths]}  "
          f"-> sd = 2, spc = {len(paths)}")

    print("\n== §4.1 — the 1-shell cut (Figure 4)")
    shell = ShellReduction.compute(graph)
    print(f"2-core: {{{', '.join(v(x) for x in range(8))}}}; "
          f"removed: {{{', '.join(v(x) for x in shell.removed_vertices())}}}")
    for vertex in (9, 12, 8):
        print(f"shr({v(vertex)}) = {v(shell.shr(vertex))}")
    core = shell.graph_reduced

    print("\n== §4.2 — equivalence classes on G_s")
    equiv = EquivalenceReduction.compute(core)
    classes = {}
    for x in core.vertices():
        classes.setdefault(equiv.eqr(x), []).append(x)
    for rep, members in sorted(classes.items()):
        kind = "clique" if equiv.is_clique_class(rep) else "independent"
        names = ", ".join(v(shell.new_to_old[x]) for x in members)
        suffix = f"  ({kind})" if len(members) > 1 else ""
        print(f"  {{{names}}}{suffix}")
    gprime = equiv.graph_reduced
    print(f"quotient G' has {gprime.n} vertices, {gprime.m} edges (Figure 2b)")

    print("\n== §3.1 — the ESPC over G' under v2 ⪯ v3 ⪯ v5 ⪯ v6 ⪯ v1 ⪯ v4")
    cover_map, _ = build_espc(gprime, GPRIME_ORDER)
    verify_espc(gprime, cover_map)
    print("cover(T(u), T(v)) == P_uv for every pair: verified")

    print("\n== §3.2 — HP-SPC reproduces Table 2")
    labels = build_labels(gprime, ordering=GPRIME_ORDER)
    for x in range(gprime.n):
        entries = ", ".join(
            f"({v(h)}, {d}, {c})" for _, h, d, c in labels.merged(x)
        )
        print(f"  L({v(x)}) = {{{entries}}}")

    print("\n== Example 3.3 — querying (v5, v6)")
    dist, count = count_query(labels, 4, 5)
    print(f"sd(v5, v6) = {dist}, spc(v5, v6) = {count}   (paper: 3 and 3)")
    assert (dist, count) == (3, 3)
    print("\nall facts match the paper.")


if __name__ == "__main__":
    main()
