#!/usr/bin/env python
"""Render the committed ``BENCH_*.json`` records into ``docs/PERF.md``.

One page collecting the numbers that matter across the bench suite —
construction wall time, label size (entries and bytes/vertex), query
microbenchmarks, serving latency percentiles, observability overhead —
so a reader gets the repository's current performance story without
spelunking JSON. The rendering is a pure function of the committed
``BENCH_*.json`` files, which makes staleness checkable:

    python tools/perf_report.py           # rewrite docs/PERF.md
    python tools/perf_report.py --check   # exit 1 when PERF.md is stale

CI runs ``--check`` in the lint job (same idiom as
``tools/gen_api_docs.py``): regenerate and commit whenever a bench
record changes.
"""

import argparse
import json
import os
import sys

#: Bench records rendered, in page order. Missing files are skipped with
#: a note, so the report works from any subset.
BENCH_FILES = (
    "BENCH_construction.json",
    "BENCH_ci_smoke.json",
    "BENCH_serving.json",
    "BENCH_streaming.json",
    "BENCH_observability.json",
)

_HEADER = """\
# Performance

Current bench numbers, rendered from the committed ``BENCH_*.json``
records by ``tools/perf_report.py`` — do not edit by hand; rerun the
generator (CI's lint job fails when this page is stale). Absolute
timings depend on the box that produced the record; the relative
numbers (speedups, bytes/vertex, overhead ratios) are the contract.
"""


def _get(record, *path, default=None):
    for key in path:
        if not isinstance(record, dict) or key not in record:
            return default
        record = record[key]
    return record


def _fmt(value, spec=""):
    if value is None:
        return "—"
    if spec:
        return format(value, spec)
    return str(value)


def _graph_line(record):
    graph = record.get("graph", {})
    if not graph:
        return "unknown graph"
    return (f"{graph.get('family', 'graph')} with n = {graph.get('n', '?')}, "
            f"m = {graph.get('m', '?')}")


def render_construction(record):
    lines = [f"Graph: {_graph_line(record)}.", ""]
    tier = record.get("tier", "smoke")
    if tier == "smoke":
        rows = [
            ("python engine", _get(record, "python_seconds")),
            ("csr engine", _get(record, "csr_seconds")),
            ("csr-batch engine", _get(record, "csr_batch_seconds")),
        ]
        lines += ["| Engine | Build seconds |", "|---|---|"]
        for name, seconds in rows:
            if seconds is not None:
                lines.append(f"| {name} | {_fmt(seconds, '.2f')} |")
        lines += [
            "",
            f"All engines bit-identical: "
            f"{_fmt(record.get('identical'))} (csr vs python), "
            f"{_fmt(record.get('csr_batch_identical'))} (csr-batch vs csr); "
            f"csr speedup over python "
            f"{_fmt(record.get('speedup'), '.2f')}x "
            f"(floor {_fmt(record.get('min_speedup'), '.2f')}x); "
            f"{_fmt(record.get('label_entries'))} label entries.",
        ]
    else:
        lines += [
            f"| Metric | Value |", "|---|---|",
            f"| Tier | {tier} |",
            f"| Engine | {_fmt(record.get('engine'))} "
            f"(batch size {_fmt(record.get('batch_size'))}) |",
            f"| Build seconds | {_fmt(record.get('build_seconds'), '.1f')} "
            f"(budget {_fmt(record.get('max_seconds'))}) |",
            f"| Peak RSS | {_fmt(record.get('peak_rss_mb'), '.0f')} MiB "
            f"(budget {_fmt(record.get('max_rss_mb'))}) |",
            f"| Label entries | {_fmt(record.get('label_entries'))} "
            f"(avg size {_fmt(record.get('avg_label_size'))}) |",
            f"| Label bytes/vertex | "
            f"{_fmt(record.get('label_bytes_per_vertex'))} |",
            f"| Oracle bit-identity (n = "
            f"{_fmt(record.get('oracle_vertices'))}) | "
            f"{_fmt(record.get('oracle_identical'))} |",
            f"| BFS spot-checks | {_fmt(record.get('bfs_samples'))} sources, "
            f"{_fmt(record.get('bfs_mismatches'))} mismatches |",
        ]
    return lines


def render_ci_smoke(record):
    lines = [
        f"Graph: {_graph_line(record)}; "
        f"{_fmt(record.get('queries'))} random query pairs.",
        "",
        "| Metric | Value |", "|---|---|",
        f"| Build seconds ({_fmt(record.get('build_workers'))} worker(s)) | "
        f"{_fmt(record.get('build_seconds'), '.2f')} |",
        f"| Freeze seconds | {_fmt(record.get('freeze_seconds'), '.3f')} |",
        f"| python engine | "
        f"{_fmt(record.get('python_us_per_query'), '.2f')} µs/query |",
        f"| flat engine | "
        f"{_fmt(record.get('flat_us_per_query'), '.2f')} µs/query |",
        f"| Speedup | {_fmt(record.get('speedup'), '.1f')}x "
        f"(floor {_fmt(record.get('min_speedup'), '.1f')}x) |",
    ]
    query_layer = record.get("query_layer")
    if query_layer:
        overhead = query_layer.get("plan_overhead")
        ceiling = query_layer.get("max_plan_overhead")
        lines += [
            f"| Compiled query layer | "
            f"{_fmt(None if overhead is None else overhead * 100, '+.2f')}% "
            f"over raw count_many "
            f"(ceiling {_fmt(None if ceiling is None else ceiling * 100, '+.0f')}%, "
            f"answers bit-identical: "
            f"{_fmt(query_layer.get('answers_identical'))}) |",
        ]
    return lines


def render_serving(record):
    healthy = record.get("healthy", {})
    recovery = record.get("recovery", {})
    overload = record.get("overload", {})
    lines = [
        f"{_fmt(_get(record, 'config', 'vertices'))}-vertex graph, "
        f"{_fmt(_get(record, 'config', 'threads'))} driver thread(s), "
        f"deadline {_fmt(_get(record, 'config', 'deadline_ms'))} ms.",
        "",
        "| Phase | Requests | Outcome | p95 latency |",
        "|---|---|---|---|",
        f"| Healthy | {_fmt(healthy.get('requests'))} | "
        f"{_fmt(healthy.get('served'))} served | "
        f"{_fmt(healthy.get('p95_ms'), '.2f')} ms |",
        f"| Overload burst | {_fmt(overload.get('requests'))} | "
        f"{_fmt(overload.get('shed'))} shed | — |",
        f"| Post-chaos recovery | {_fmt(recovery.get('requests'))} | "
        f"{_fmt(recovery.get('served_index'))} from index | "
        f"{_fmt(recovery.get('p95_ms'), '.2f')} ms |",
    ]
    sustained = record.get("sustained", {})
    if sustained:
        single = sustained.get("single", {})
        cluster = sustained.get("cluster", {})
        memory = cluster.get("worker_memory", [])
        dirty = max((w.get("arena_private_dirty_kb", 0) for w in memory),
                    default=None)
        lines += [
            "",
            "### Sustained throughput: cluster vs single process",
            "",
            f"G(n, p) graph with n = {_fmt(sustained.get('n'))}, "
            f"m = {_fmt(sustained.get('m'))} "
            f"({_fmt(sustained.get('entries'))} label entries); "
            f"{_fmt(_get(sustained, 'config', 'duration'))} s of load per "
            f"side on {_fmt(sustained.get('cpu_count'))} core(s).",
            "",
            "| Tier | QPS | p50 | p95 | p99 |",
            "|---|---|---|---|---|",
            f"| single process ({_fmt(single.get('threads'))} threads) | "
            f"{_fmt(single.get('qps'), ',.0f')} | "
            f"{_fmt(single.get('p50_ms'), '.2f')} ms | "
            f"{_fmt(single.get('p95_ms'), '.2f')} ms | "
            f"{_fmt(single.get('p99_ms'), '.2f')} ms |",
            f"| cluster ({_fmt(cluster.get('workers'))} workers, "
            f"{_fmt(cluster.get('shards'))} shards) | "
            f"{_fmt(cluster.get('qps'), ',.0f')} | "
            f"{_fmt(cluster.get('p50_ms'), '.2f')} ms | "
            f"{_fmt(cluster.get('p95_ms'), '.2f')} ms | "
            f"{_fmt(cluster.get('p99_ms'), '.2f')} ms |",
            "",
            f"Speedup {_fmt(cluster.get('speedup'), '.1f')}x from request "
            f"coalescing ({_fmt(cluster.get('served'))} requests in "
            f"{_fmt(cluster.get('batches'))} worker batches); every worker "
            f"maps the label arena copy-on-read shared "
            f"(max Private_Dirty {_fmt(dirty)} kB).",
        ]
    resilience = record.get("resilience", {})
    if resilience:
        tally = resilience.get("tally", {})
        lines += [
            "",
            "### Self-healing under process chaos",
            "",
            f"G(n, p) graph with n = {_fmt(resilience.get('n'))}, "
            f"m = {_fmt(resilience.get('m'))}; "
            f"{_fmt(_get(resilience, 'config', 'duration'))} s burst with "
            f"{_fmt(resilience.get('kills_injected'))} SIGKILLed worker(s), "
            f"one SIGSTOP stall, a shard blackout and a graceful drain.",
            "",
            "| Metric | Value |", "|---|---|",
            f"| Requests | {_fmt(resilience.get('requests'))} "
            f"({_fmt(resilience.get('qps'), ',.0f')} qps) |",
            f"| Availability | "
            f"{_fmt(resilience.get('availability'), '.4f')} |",
            f"| Wrong answers | {_fmt(resilience.get('wrong'))} |",
            f"| Supervised respawns | {_fmt(resilience.get('respawns'))} "
            f"(incl. {_fmt(resilience.get('stalls'))} stall kill(s)) |",
            f"| Hedges / wins | {_fmt(resilience.get('hedges'))} / "
            f"{_fmt(resilience.get('hedge_wins'))} |",
            f"| Degraded-shard requests | "
            f"{_fmt(resilience.get('degraded_requests'))} annotated, "
            f"{_fmt(resilience.get('degraded_served'))} BFS-served |",
            f"| Replays / drains | {_fmt(resilience.get('replays'))} / "
            f"{_fmt(resilience.get('drains'))} |",
            "",
            f"Status tally: {tally}. Every success was checked bit-exact "
            "against the batch oracle on the same labels.",
        ]
    return lines


def render_streaming(record):
    streaming = record.get("streaming", {})
    chaos = record.get("chaos", {})
    lines = []
    if streaming:
        config = streaming.get("config", {})
        lines += [
            f"{_fmt(config.get('vertices'))}-vertex graph under "
            f"{_fmt(config.get('duration'), '.0f')} s of mixed insert/delete "
            f"churn ({_fmt(config.get('churn_per_second'), '.0f')} "
            f"mutations/s, delete fraction "
            f"{_fmt(config.get('delete_fraction'))}) with "
            f"{_fmt(config.get('query_threads'))} concurrent query "
            f"thread(s); every served answer checked against a BFS oracle.",
            "",
            "| Metric | Value |", "|---|---|",
            f"| Answers checked | {_fmt(streaming.get('queries_checked'))} "
            f"({_fmt(streaming.get('mismatches'))} wrong) |",
            f"| Served QPS under churn | "
            f"{_fmt(streaming.get('served_qps'), ',.0f')} |",
            f"| Background publishes | {_fmt(streaming.get('publishes'))} |",
            f"| Overlay→BFS fallbacks | "
            f"{_fmt(streaming.get('overlay_fallbacks'))} |",
            f"| Staleness p95 / max | "
            f"{_fmt(streaming.get('staleness_p95_s'), '.2f')} s / "
            f"{_fmt(streaming.get('staleness_max_s'), '.2f')} s "
            f"(SLO breaches: {_fmt(streaming.get('slo_breaches'))}) |",
        ]
        svc = streaming.get("service")
        if svc:
            lines.append(
                f"| Service generation / checked answers | "
                f"{_fmt(svc.get('generation'))} / {_fmt(svc.get('checked'))} "
                f"({_fmt(svc.get('mismatches'))} wrong, "
                f"{_fmt(svc.get('reload_failures'))} reload failures) |")
    if chaos:
        resume = chaos.get("resume", {})
        corrupt = chaos.get("corrupt", {})
        lines += [
            "",
            "### Chaos: kill the rebuild worker mid-build",
            "",
            "| Leg | Worker crashes | Recovery | Wrong answers |",
            "|---|---|---|---|",
            f"| kill → resume | {_fmt(resume.get('worker_crashes'))} | "
            f"{_fmt(resume.get('resumed_pushes'))} pushes resumed from "
            f"checkpoint, {_fmt(resume.get('publishes'))} publish(es) | "
            f"{_fmt(resume.get('mismatches'))} of "
            f"{_fmt(resume.get('queries_checked'))} |",
            f"| kill → corrupt checkpoint | "
            f"{_fmt(corrupt.get('worker_crashes'))} | "
            f"{_fmt(corrupt.get('checkpoint_discards'))} corrupt "
            f"checkpoint(s) discarded, {_fmt(corrupt.get('publishes'))} "
            f"publish(es) | {_fmt(corrupt.get('mismatches'))} of "
            f"{_fmt(corrupt.get('queries_checked'))} |",
        ]
    return lines or ["*Empty record.*"]


def render_observability(record):
    overhead = record.get("overhead", {})
    coverage = record.get("coverage", {})
    return [
        "| Metric | Value |", "|---|---|",
        f"| Instrumented build (n = {_fmt(overhead.get('vertices'))}) | "
        f"{_fmt(overhead.get('enabled_seconds'), '.2f')}s vs "
        f"{_fmt(overhead.get('disabled_seconds'), '.2f')}s bare |",
        f"| Overhead ratio | {_fmt(overhead.get('ratio'), '.3f')} "
        f"(budget {_fmt(overhead.get('max_overhead'))}) |",
        f"| Metric families observed | {_fmt(coverage.get('families'))} "
        f"({_fmt(coverage.get('uncatalogued'))} uncatalogued) |",
        f"| Trace spans | {_fmt(coverage.get('spans'))} |",
        f"| Bit-identity under instrumentation | "
        f"{_fmt(record.get('bit_identity'))} |",
    ]


_SECTIONS = {
    "BENCH_construction.json": ("Construction", render_construction),
    "BENCH_ci_smoke.json": ("Query engines", render_ci_smoke),
    "BENCH_serving.json": ("Serving", render_serving),
    "BENCH_streaming.json": ("Streaming churn and chaos recovery",
                             render_streaming),
    "BENCH_observability.json": ("Observability overhead",
                                 render_observability),
}


def render(root="."):
    lines = [_HEADER]
    for name in BENCH_FILES:
        title, renderer = _SECTIONS[name]
        path = os.path.join(root, name)
        lines.append(f"## {title}")
        lines.append("")
        if not os.path.exists(path):
            lines.append(f"*No committed `{name}` record.*")
            lines.append("")
            continue
        with open(path) as handle:
            record = json.load(handle)
        lines.extend(renderer(record))
        lines.append("")
        lines.append(f"Source: [`{name}`](../{name}).")
        lines.append("")
    return "\n".join(lines)


def _write_or_check(path, text, check):
    """Write ``text`` to ``path`` (or, with ``check``, diff against it)."""
    if check:
        try:
            with open(path) as handle:
                current = handle.read()
        except FileNotFoundError:
            print(f"STALE: {path} is missing; run tools/perf_report.py",
                  file=sys.stderr)
            return False
        if current != text:
            print(f"STALE: {path} does not match the committed bench "
                  "records; run tools/perf_report.py", file=sys.stderr)
            return False
        print(f"ok: {path} is up to date")
        return True
    with open(path, "w") as handle:
        handle.write(text)
    print(f"wrote {path} ({len(text.splitlines())} lines)")
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify docs/PERF.md matches; exit 1 if stale")
    parser.add_argument("--stdout", action="store_true",
                        help="print the page instead of writing it")
    parser.add_argument("--output", default="docs/PERF.md")
    args = parser.parse_args(argv)
    text = render(".")
    if args.stdout:
        sys.stdout.write(text)
        return 0
    return 0 if _write_or_check(args.output, text, args.check) else 1


if __name__ == "__main__":
    sys.exit(main())
