#!/usr/bin/env python
"""CI observability smoke: instrumentation must be complete, honest, cheap.

Runs three gates and writes the observed numbers to
``BENCH_observability.json``:

1. **coverage** — builds a small index with metrics + tracing enabled,
   runs flat batch queries and an :class:`repro.serving.SPCService`
   burst, then asserts the required metric families exist with sane
   values, that every registered family is listed in the metric catalog
   (``repro.observability.catalog``), and that the trace contains the
   expected nested spans (``build.csr`` wrapping one ``hp_spc.push`` per
   vertex).
2. **bit-identity** — the same build with instrumentation enabled and
   disabled must produce entry-for-entry identical labels.
3. **overhead** — on the bench graph (default 10k vertices, the
   ``BENCH_construction.json`` configuration) the default *disabled*
   registry must keep ``build_flat_labels_csr`` within ``--max-overhead``
   (default 5%) of itself across interleaved runs, and even the fully
   *enabled* registry must stay within the same budget — so the no-op
   path is provably below it.

Run from the repo root:

    PYTHONPATH=src python tools/ci_observability_smoke.py
"""

import argparse
import json
import platform
import sys
import time


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def counter_sum(registry, name):
    """Total across every label combination of a counter family."""
    return registry.sum_values(name)


def coverage_gate(args, report):
    """Instrumented build/query/serving run; assert the metrics exist."""
    import os
    import tempfile

    from repro.core.index import SPCIndex
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.io.serialize import save_index
    from repro.observability.catalog import missing_from_catalog
    from repro.observability.metrics import MetricsRegistry, scoped_registry, snapshot
    from repro.observability.tracing import Tracer, scoped_tracer
    from repro.serving import SPCService
    from repro.utils.rng import random_pairs

    graph = barabasi_albert_graph(args.vertices, 3, seed=args.seed)
    registry = MetricsRegistry()
    tracer = Tracer()
    with scoped_registry(registry), scoped_tracer(tracer):
        index = SPCIndex.build(graph, ordering="degree", engine="csr")
        pairs = list(random_pairs(graph.n, args.queries, rng=args.seed))
        answers = index.count_many(pairs)
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, "index.bin")
            save_index(index, path, graph=graph)
            service = SPCService(graph, index_path=path, capacity=4)
            for s, t in pairs[:50]:
                service.submit(s, t)

    n = graph.n
    required = {
        "spc_build_pushes_total": n,
        "spc_queries_total": len(pairs),
        "spc_requests_total": min(len(pairs), 50),
    }
    for name, expected in required.items():
        actual = counter_sum(registry, name)
        check(actual == expected, f"coverage: {name} == {expected}")
    check(counter_sum(registry, "spc_build_label_entries_total") > n,
          "coverage: spc_build_label_entries_total exceeds the vertex count")
    check(registry.get("spc_build_seconds", engine="csr").count == 1,
          "coverage: spc_build_seconds recorded exactly one build")
    check(registry.get("spc_batch_query_seconds").count >= 1,
          "coverage: spc_batch_query_seconds recorded the batch call")
    check(counter_sum(registry, "spc_io_bytes_total") > 0,
          "coverage: spc_io_bytes_total counted serialized bytes")
    check(counter_sum(registry, "spc_request_outcomes_total")
          == min(len(pairs), 50),
          "coverage: every service request reached a terminal outcome")
    uncatalogued = missing_from_catalog(registry)
    check(not uncatalogued,
          f"coverage: every registered family is catalogued ({uncatalogued})")

    roots = tracer.roots()
    root_names = {span.name for span in roots}
    check("build.csr" in root_names, "trace: build.csr root span present")
    build_root = next(span for span in roots if span.name == "build.csr")
    pushes = [s for s in build_root.children if s.name == "hp_spc.push"]
    check(len(pushes) == n, f"trace: one hp_spc.push span per vertex ({n})")
    check(any(s.name == "serve.request" for s in roots),
          "trace: serve.request spans present")

    report["coverage"] = {
        "vertices": n,
        "queries": len(pairs),
        "answered_nonzero": sum(1 for _, count in answers if count),
        "families": len(registry.families()),
        "spans": tracer.span_count(),
        "uncatalogued": uncatalogued,
    }
    report["metrics"] = snapshot(registry)


def bit_identity_gate(args, report):
    """Labels must be identical with instrumentation on and off."""
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.kernels.hub_push import build_flat_labels_csr
    from repro.observability.metrics import MetricsRegistry, scoped_registry
    from repro.observability.tracing import Tracer, scoped_tracer

    graph = barabasi_albert_graph(args.vertices, 3, seed=args.seed)
    plain = build_flat_labels_csr(graph)
    with scoped_registry(MetricsRegistry()), scoped_tracer(Tracer()):
        instrumented = build_flat_labels_csr(graph)
    check(plain.equals(instrumented),
          "bit-identity: labels unchanged with instrumentation enabled")
    report["bit_identity"] = {"vertices": graph.n, "identical": True}


def overhead_gate(args, report):
    """The disabled-by-default instrumentation must cost <5% build time."""
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.kernels.hub_push import build_flat_labels_csr
    from repro.observability.metrics import MetricsRegistry, scoped_registry

    graph = barabasi_albert_graph(args.overhead_vertices, 3, seed=args.seed)
    print(f"overhead graph: barabasi_albert(n={graph.n}, m={graph.m}), "
          f"best of {args.repeat}")

    def best_build(enabled):
        best = float("inf")
        for _ in range(args.repeat):
            if enabled:
                with scoped_registry(MetricsRegistry()):
                    started = time.perf_counter()
                    build_flat_labels_csr(graph)
                    best = min(best, time.perf_counter() - started)
            else:
                started = time.perf_counter()
                build_flat_labels_csr(graph)
                best = min(best, time.perf_counter() - started)
        return best

    best_build(False)  # warm caches outside the measurement
    disabled = best_build(False)
    enabled = best_build(True)
    ratio = enabled / disabled if disabled > 0 else float("inf")
    print(f"disabled registry: {disabled:.3f}s")
    print(f"enabled registry : {enabled:.3f}s ({(ratio - 1) * 100:+.1f}%)")
    check(ratio <= 1.0 + args.max_overhead,
          f"overhead: enabled/disabled ratio {ratio:.3f} within "
          f"{args.max_overhead:.0%} budget (no-op path is below it)")
    report["overhead"] = {
        "vertices": graph.n,
        "repeat": args.repeat,
        "disabled_seconds": round(disabled, 4),
        "enabled_seconds": round(enabled, 4),
        "ratio": round(ratio, 4),
        "max_overhead": args.max_overhead,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=300,
                        help="coverage-gate graph size (default 300)")
    parser.add_argument("--queries", type=int, default=200,
                        help="flat batch queries in the coverage gate")
    parser.add_argument("--overhead-vertices", type=int, default=10_000,
                        help="overhead-gate graph size (default 10000, the "
                             "bench graph)")
    parser.add_argument("--repeat", type=int, default=2,
                        help="builds per mode in the overhead gate; best "
                             "is compared (default 2)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed enabled/disabled overtime (default 0.05)")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the (slow) overhead gate")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_observability.json")
    args = parser.parse_args(argv)

    report = {"config": vars(args), "python": platform.python_version()}
    coverage_gate(args, report)
    bit_identity_gate(args, report)
    if args.skip_overhead:
        print("skipping overhead gate (--skip-overhead)")
        report["overhead"] = {"skipped": True}
    else:
        overhead_gate(args, report)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    print("observability smoke: all gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
