#!/usr/bin/env python
"""CI serving smoke: the service must stay bounded and exact under chaos.

Builds a small index, then drives four phases of traffic through
:class:`repro.serving.SPCService`:

1. **healthy burst** — >= 99% of answers served from labels (a scheduler
   hiccup under the tight deadline may shed a straggler), every served
   answer bit-identical to the exact BFS oracle, p95 latency within the
   request deadline;
2. **corrupt + slow fallback** — the index file is garbaged while the
   degraded BFS path stalls past the deadline: every request still ends
   in a terminal status, enough timeouts accumulate to trip the circuit
   breaker, and most of the burst is short-circuited instead of each
   request burning a full deadline;
3. **overload** — a capacity-1/queue-0 service under concurrent drivers
   must shed with typed retry-after hints, never melt down;
4. **restore + reload** — putting the pristine file back swaps the index
   in one hot reload, closes the breaker, and serves >= 99% of a
   follow-up burst from labels again.

Writes the observed numbers to ``BENCH_serving.json`` and exits non-zero
on the first violated invariant. Run from the repo root:

    PYTHONPATH=src python tools/ci_serving_smoke.py
"""

import argparse
import gc
import json
import os
import platform
import sys
import tempfile
import threading
import time


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def percentile(samples, q):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def drive(service, pairs, threads, timeout):
    """Submit every pair from ``threads`` workers; returns the results."""
    results = []
    lock = threading.Lock()
    queue = list(enumerate(pairs))

    def worker():
        while True:
            with lock:
                if not queue:
                    return
                _, (s, t) = queue.pop()
            result = service.submit(s, t, timeout=timeout)
            with lock:
                results.append(((s, t), result))

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=300.0)
        if thread.is_alive():
            print("FAIL: driver thread hung", file=sys.stderr)
            sys.exit(1)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=80,
                        help="graph size (default 80)")
    parser.add_argument("--burst", type=int, default=400,
                        help="requests per chaos/recovery burst (default 400)")
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent driver threads (default 8)")
    parser.add_argument("--deadline-ms", type=float, default=20.0,
                        help="per-request budget in the chaos phase")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    from repro.core.index import SPCIndex
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.graph.traversal import spc_bfs
    from repro.io.serialize import save_index
    from repro.serving import (
        CIRCUIT_OPEN,
        DEADLINE,
        SERVED_INDEX,
        SHED,
        TERMINAL_STATUSES,
        SPCService,
    )
    from repro.bench.harness import attach_metrics
    from repro.observability.metrics import enable_metrics
    from repro.testing.faults import FlappingFile, SlowFallback

    enable_metrics()
    graph = barabasi_albert_graph(args.vertices, 2, seed=args.seed)
    print(f"graph: barabasi_albert(n={graph.n}, m={graph.m})")
    pairs = [((i * 13) % graph.n, (i * 29 + 5) % graph.n)
             for i in range(args.burst)]
    truth = {(s, t): spc_bfs(graph, s, t) for s, t in set(pairs)}
    deadline = args.deadline_ms / 1000.0

    def exact(results):
        return all(result.answer == truth[pair]
                   for pair, result in results if result.ok)

    report = {"config": vars(args), "python": platform.python_version()}

    with tempfile.TemporaryDirectory() as scratch:
        index_path = os.path.join(scratch, "index.bin")
        save_index(SPCIndex.build(graph), index_path, graph=graph)
        service = SPCService(
            graph, index_path=index_path, capacity=4, queue_limit=8,
            failure_threshold=5, reset_timeout=60.0, reload_check_every=1,
        )

        # Warm-up: the first request pays the initial index load+verify,
        # which is cold-start cost, not steady-state serving latency —
        # the burst gates below are about the latter. Collect the garbage
        # piled up by the BFS truth table too, so its one-off gen-2 pause
        # is not billed to an unlucky burst request.
        service.submit(*pairs[0])
        gc.collect()

        # Phase 1 — healthy burst.
        started = time.perf_counter()
        healthy = drive(service, pairs, args.threads, timeout=deadline)
        healthy_seconds = time.perf_counter() - started
        served = sum(r.status == SERVED_INDEX for _, r in healthy)
        p95 = percentile([r.elapsed for _, r in healthy], 0.95)
        # >= 99% (phase 4's standard): the tight per-request deadline makes
        # 100%-of-400 a max-latency gate, and a single OS-scheduler or GIL
        # hiccup while all slots are held fails it spuriously. The p95
        # check below still gates typical latency at the full deadline.
        check(served >= len(pairs) * 99 // 100,
              f"healthy burst: {served}/{len(pairs)} "
              "requests served from labels (>= 99%)")
        check(exact(healthy), "healthy burst: every answer matches the oracle")
        check(p95 <= deadline, f"healthy burst: p95 {p95 * 1e3:.2f} ms within "
              f"the {args.deadline_ms:.0f} ms deadline")
        report["healthy"] = {"requests": len(pairs), "served": served,
                             "p95_ms": p95 * 1e3,
                             "seconds": healthy_seconds}

        # Phase 2 — corrupt the file while the fallback crawls.
        flapper = FlappingFile(index_path)
        flapper.corrupt(mode="garbage")
        with SlowFallback(seconds=2.5 * deadline) as slow:
            chaos = drive(service, pairs, args.threads, timeout=deadline)
        tally = {}
        for _, result in chaos:
            tally[result.status] = tally.get(result.status, 0) + 1
        stray = set(tally) - set(TERMINAL_STATUSES)
        check(not stray and sum(tally.values()) == len(pairs),
              f"chaos burst: all {len(pairs)} requests ended in a terminal "
              f"status ({tally})")
        breaker = service.breaker.snapshot()
        check(exact(chaos), "chaos burst: every served answer stays exact")
        check(tally.get(DEADLINE, 0) >= 5,
              f"chaos burst: {tally.get(DEADLINE, 0)} deadline failures "
              "(enough to trip the breaker)")
        check(breaker["counters"]["opened"] >= 1,
              "chaos burst: the circuit breaker opened")
        check(breaker["counters"]["short_circuited"] > 0
              and tally.get(CIRCUIT_OPEN, 0) > 0,
              f"chaos burst: {tally.get(CIRCUIT_OPEN, 0)} requests "
              "short-circuited instead of burning deadlines")
        check(slow.calls < len(pairs) // 2,
              f"chaos burst: only {slow.calls}/{len(pairs)} requests paid "
              "the slow fallback")
        report["chaos"] = {"tally": tally, "slow_calls": slow.calls,
                           "breaker": breaker}

        # Phase 3 — overload a deliberately tiny service: shed, don't melt.
        tiny = SPCService(graph, index_path=None, capacity=1, queue_limit=0)
        with SlowFallback(seconds=0.02):
            overload = drive(tiny, pairs[:100], args.threads, timeout=5.0)
        shed = [r for _, r in overload if r.status == SHED]
        check(len(shed) > 0, f"overload: {len(shed)}/100 requests shed")
        check(all(r.error.retry_after > 0 for r in shed),
              "overload: every shed response carries a retry-after hint")
        check(exact(overload), "overload: admitted answers stay exact")
        report["overload"] = {"requests": 100, "shed": len(shed)}

        # Phase 4 — restore the file: one reload, breaker closed, recovery.
        flapper.restore()
        primer = service.submit(0, 1, timeout=5.0)
        check(primer.status == SERVED_INDEX,
              "recovery: first request after restore served from labels")
        check(service.breaker.state == "closed",
              "recovery: the reload closed the breaker")
        check(service.generation == 2,
              f"recovery: generation bumped to {service.generation}")
        recovery = drive(service, pairs, args.threads, timeout=5.0)
        from_labels = sum(r.status == SERVED_INDEX for _, r in recovery)
        p95 = percentile([r.elapsed for _, r in recovery], 0.95)
        check(from_labels >= len(pairs) * 99 // 100,
              f"recovery burst: {from_labels}/{len(pairs)} served from labels "
              "(>= 99%)")
        check(exact(recovery), "recovery burst: answers match the oracle")
        report["recovery"] = {"requests": len(pairs),
                              "served_index": from_labels,
                              "p95_ms": p95 * 1e3}
        report["service"] = service.stats()

    attach_metrics(report)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    print("serving smoke: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
