#!/usr/bin/env python
"""CI serving smoke: the service must stay bounded and exact under chaos.

Builds a small index, then drives four phases of traffic through
:class:`repro.serving.SPCService`:

1. **healthy burst** — >= 99% of answers served from labels (a scheduler
   hiccup under the tight deadline may shed a straggler), every served
   answer bit-identical to the exact BFS oracle, p95 latency within the
   request deadline;
2. **corrupt + slow fallback** — the index file is garbaged while the
   degraded BFS path stalls past the deadline: every request still ends
   in a terminal status, enough timeouts accumulate to trip the circuit
   breaker, and most of the burst is short-circuited instead of each
   request burning a full deadline;
3. **overload** — a capacity-1/queue-0 service under concurrent drivers
   must shed with typed retry-after hints, never melt down;
4. **restore + reload** — putting the pristine file back swaps the index
   in one hot reload, closes the breaker, and serves >= 99% of a
   follow-up burst from labels again.

A second tier, ``--tier sustained``, benchmarks the multiprocess
cluster against the single-process service on a larger graph under a
fixed-duration load: the shared-memory cluster must deliver >= 5x the
single-process QPS on the same box with the same deadline config (the
win comes from coalescing pair requests into vectorized ``count_many``
batches, amortising IPC and the per-request python merge join), and
every worker must prove the label arena is mapped shared, not copied
(``Private_Dirty == 0`` for the index mapping in ``/proc``).

A third tier, ``--tier resilience``, points the self-healing layer at
live process faults: while closed-loop drivers hammer the cluster, a
chaos thread SIGKILLs workers, SIGSTOPs another mid-burst (exercising
heartbeat stall detection and request hedging), blacks out a whole
shard (both replicas at once, forcing peer-degraded coverage), and
rolls a graceful drain. Gates: zero wrong answers ever, >= 99%
availability across the burst, at least one supervised respawn per
injected kill, at least one stall kill, and at least one hedge win.

All tiers write into ``BENCH_serving.json`` (each preserves the other
tiers' sections) and exit non-zero on the first violated invariant. Run
from the repo root:

    PYTHONPATH=src python tools/ci_serving_smoke.py
    PYTHONPATH=src python tools/ci_serving_smoke.py --tier sustained
    PYTHONPATH=src python tools/ci_serving_smoke.py --tier resilience
"""

import argparse
import gc
import json
import os
import platform
import sys
import tempfile
import threading
import time


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def percentile(samples, q):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def drive(service, pairs, threads, timeout):
    """Submit every pair from ``threads`` workers; returns the results."""
    results = []
    lock = threading.Lock()
    queue = list(enumerate(pairs))

    def worker():
        while True:
            with lock:
                if not queue:
                    return
                _, (s, t) = queue.pop()
            result = service.submit(s, t, timeout=timeout)
            with lock:
                results.append(((s, t), result))

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=300.0)
        if thread.is_alive():
            print("FAIL: driver thread hung", file=sys.stderr)
            sys.exit(1)
    return results


def merge_report(output, key, section):
    """Write ``section`` under ``key`` in ``output``, keeping other keys.

    The chaos and sustained tiers run as separate processes but share
    one benchmark file; each must not clobber the other's section.
    """
    existing = {}
    if os.path.exists(output):
        try:
            with open(output) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing[key] = section
    with open(output, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output} [{key}]")


def run_sustained(args):
    """Fixed-duration throughput duel: cluster vs single-process service.

    Closed-loop threads drive :class:`SPCService` (one python merge join
    per request) for ``--duration`` seconds; then an open-loop windowed
    driver pushes ``submit_nowait`` futures through the cluster router.
    Gates: >= 5x QPS, shared (not duplicated) arena pages per worker.
    """
    from repro.core.index import SPCIndex
    from repro.generators.random_graphs import gnp_random_graph
    from repro.io.flat_store import load_flat_labels, save_flat_labels
    from repro.kernels.hub_push import build_flat_labels_csr
    from repro.serving import SERVED_INDEX, SPCService
    from repro.serving.cluster import ClusterService

    # G(n, p): no hub hierarchy to exploit, so labels are wide (about
    # 2.5k entries/vertex at n=10k, deg 20). That is the regime the duel
    # is about — the per-request python merge join pays ~0.2 us per
    # label entry while the batched kernel pays ~0.02 us, so wide labels
    # are exactly where batching has to prove itself.
    graph = gnp_random_graph(args.vertices, args.degree / (args.vertices - 1),
                             seed=args.seed)
    print(f"graph: gnp(n={graph.n}, m={graph.m}, "
          f"avg_deg={2 * graph.m / graph.n:.1f})")
    arena_cache = None
    if args.cache_dir:
        os.makedirs(args.cache_dir, exist_ok=True)
        arena_cache = os.path.join(
            args.cache_dir,
            f"sustained-{args.vertices}-{args.degree}-{args.seed}.spcf")
    if arena_cache and os.path.exists(arena_cache):
        flat = load_flat_labels(arena_cache)
        print(f"arena cache hit: {arena_cache} "
              f"({flat.total_entries()} entries)")
    else:
        build_started = time.perf_counter()
        flat = build_flat_labels_csr(graph)
        print(f"built {flat.total_entries()} label entries in "
              f"{time.perf_counter() - build_started:.1f}s (csr engine)")
        if arena_cache:
            save_flat_labels(flat, arena_cache, encoding="raw")
            print(f"arena cached: {arena_cache}")
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    pairs = [((i * 13) % graph.n, (i * 29 + 5) % graph.n)
             for i in range(4096)]
    section = {"config": vars(args), "python": platform.python_version(),
               "cpu_count": os.cpu_count(), "n": graph.n, "m": graph.m,
               "entries": flat.total_entries()}

    # -- single-process baseline: per-request python merge joins ----------
    service = SPCService(graph, index=SPCIndex.from_flat(flat),
                         capacity=args.threads * 2,
                         queue_limit=args.threads * 4,
                         default_deadline=deadline, reload_check_every=0)
    service.submit(*pairs[0])
    gc.collect()
    stop_at = time.perf_counter() + args.duration
    single_latencies = []
    single_served = [0]
    lock = threading.Lock()

    def closed_loop(offset):
        i = offset
        local = []
        served = 0
        while time.perf_counter() < stop_at:
            s, t = pairs[i % len(pairs)]
            i += 7
            result = service.submit(s, t)
            local.append(result.elapsed)
            served += result.status == SERVED_INDEX
        with lock:
            single_latencies.extend(local)
            single_served[0] += served

    started = time.perf_counter()
    drivers = [threading.Thread(target=closed_loop, args=(k * 97,))
               for k in range(args.threads)]
    for thread in drivers:
        thread.start()
    for thread in drivers:
        thread.join()
    single_seconds = time.perf_counter() - started
    single_qps = single_served[0] / single_seconds
    check(single_served[0] > 0, "sustained: single-process baseline served "
          f"{single_served[0]} requests")
    section["single"] = {
        "qps": single_qps, "served": single_served[0],
        "seconds": single_seconds, "threads": args.threads,
        "p50_ms": percentile(single_latencies, 0.50) * 1e3,
        "p95_ms": percentile(single_latencies, 0.95) * 1e3,
        "p99_ms": percentile(single_latencies, 0.99) * 1e3,
    }
    print(f"single-process: {single_qps:,.0f} qps "
          f"(p99 {section['single']['p99_ms']:.2f} ms)")
    # Drop the thawed per-vertex label lists before timing the cluster:
    # tens of millions of live tuples make every gen-2 GC pass take
    # seconds, which would show up as stalls in the cluster's windows.
    del service
    gc.collect()

    # -- multiprocess cluster: batched round-trips over the shared arena --
    with tempfile.TemporaryDirectory() as scratch:
        arena = arena_cache or os.path.join(scratch, "labels.spcf")
        if not os.path.exists(arena):
            save_flat_labels(flat, arena, encoding="raw")
        with ClusterService(
            arena, workers=args.workers, shards=args.shards,
            batch_window=args.batch_window_ms / 1000.0, max_batch=256,
            capacity=1024, queue_limit=4096, default_deadline=deadline,
            reload_check_every=0,
        ) as cluster:
            # Warm up before the clock starts: the first windows fault the
            # whole arena into the workers' page tables, which is deploy
            # cost, not sustained throughput.
            cluster.submit_many(pairs[:1024], timeout=60)
            gc.collect()
            # Open-loop double buffering through the bulk front door: one
            # window is always in flight while the previous one drains,
            # so the workers never sit idle between rounds. Latency
            # samples are per *window* (the unit a bulk caller waits on).
            window = 2048
            stop_at = time.perf_counter() + args.duration
            cluster_latencies = []
            cluster_served = 0
            started = time.perf_counter()
            i = 0
            inflight = None

            def drain(future):
                nonlocal cluster_served
                result = future.result(timeout=60)
                cluster_latencies.append(result.elapsed)
                if result.status == SERVED_INDEX:
                    cluster_served += len(result.answer)

            while time.perf_counter() < stop_at:
                batch = [pairs[(i + k) % len(pairs)] for k in range(window)]
                i += window
                upcoming = cluster.submit_many_nowait(batch)
                if inflight is not None:
                    drain(inflight)
                inflight = upcoming
            if inflight is not None:
                drain(inflight)
            cluster_seconds = time.perf_counter() - started
            cluster_qps = cluster_served / cluster_seconds
            workers = cluster.worker_stats()
            stats = cluster.stats()
        section["cluster"] = {
            "qps": cluster_qps, "served": cluster_served,
            "seconds": cluster_seconds, "workers": args.workers,
            "shards": args.shards,
            "batch_window_ms": args.batch_window_ms,
            "window": window,
            "p50_ms": percentile(cluster_latencies, 0.50) * 1e3,
            "p95_ms": percentile(cluster_latencies, 0.95) * 1e3,
            "p99_ms": percentile(cluster_latencies, 0.99) * 1e3,
            "batches": stats["counters"]["batches"],
            "speedup": cluster_qps / single_qps,
            "worker_memory": [
                {"pid": w["pid"], "rss_kb": w["rss_kb"],
                 "arena_rss_kb": w["map_rss_kb"],
                 "arena_private_dirty_kb": w["map_private_dirty_kb"],
                 "arena_shared_clean_kb": w["map_shared_clean_kb"]}
                for w in workers
            ],
        }
        print(f"cluster: {cluster_qps:,.0f} qps "
              f"(p99 {section['cluster']['p99_ms']:.2f} ms, "
              f"{stats['counters']['batches']} batches, "
              f"speedup {cluster_qps / single_qps:.1f}x)")
        check(cluster_served > 0, "sustained: cluster served "
              f"{cluster_served} requests")
        check(cluster_qps >= args.speedup_floor * single_qps,
              f"sustained: cluster {cluster_qps:,.0f} qps is >= "
              f"{args.speedup_floor:.0f}x single-process "
              f"{single_qps:,.0f} qps")
        for worker in workers:
            if worker["supported"]:
                check(worker["map_private_dirty_kb"] == 0,
                      f"sustained: worker {worker['pid']} maps the arena "
                      "shared (Private_Dirty == 0 kB)")
    merge_report(args.output, "sustained", section)
    print("sustained smoke: all invariants hold")
    return 0


def run_resilience(args):
    """Self-healing gates: kills, stalls, shard blackouts, drains.

    Closed-loop threads drive pair requests through a 2-replica/2-shard
    cluster for ``--duration`` seconds while a chaos script injects
    process faults on a fixed schedule. Every answer that claims success
    is checked bit-exact against ``count_many`` on the same labels; the
    run then has to end healthy (every slot respawned and serving).
    """
    import signal

    from repro.core.batch_query import count_many
    from repro.generators.random_graphs import gnp_random_graph
    from repro.io.flat_store import save_flat_labels
    from repro.kernels.hub_push import build_flat_labels_csr
    from repro.serving import SERVED_DEGRADED, SERVED_INDEX
    from repro.serving.cluster import ClusterService

    graph = gnp_random_graph(args.vertices, args.degree / (args.vertices - 1),
                             seed=args.seed)
    print(f"graph: gnp(n={graph.n}, m={graph.m})")
    flat = build_flat_labels_csr(graph)
    print(f"built {flat.total_entries()} label entries (csr engine)")
    pairs = [((i * 13) % graph.n, (i * 29 + 5) % graph.n)
             for i in range(1024)]
    truth = {pair: tuple(answer)
             for pair, answer in zip(pairs, count_many(flat, pairs))}
    deadline = args.deadline_ms / 1000.0
    section = {"config": vars(args), "python": platform.python_version(),
               "n": graph.n, "m": graph.m}

    with tempfile.TemporaryDirectory() as scratch:
        arena = os.path.join(scratch, "labels.spcf")
        save_flat_labels(flat, arena, encoding="raw")
        with ClusterService(
            arena, workers=4, shards=2, graph=graph,
            batch_window=0.002, max_batch=128, capacity=512,
            queue_limit=2048, default_deadline=deadline,
            respawn_backoff=0.1, heartbeat_interval=0.25,
            stall_timeout=1.0, hedge_delay=0.05, reload_check_every=0,
        ) as cluster:
            cluster.submit_many(pairs[:256], timeout=60)

            results = []
            lock = threading.Lock()
            stop_at = time.perf_counter() + args.duration

            def closed_loop(offset):
                i = offset
                local = []
                while time.perf_counter() < stop_at:
                    pair = pairs[i % len(pairs)]
                    i += 7
                    local.append((pair, cluster.submit(*pair)))
                with lock:
                    results.extend(local)

            kills = []

            def sigkill(slot):
                pid = cluster.stats()["workers"][slot]["pid"]
                if pid:
                    os.kill(pid, signal.SIGKILL)
                    kills.append((slot, pid))
                    print(f"chaos: SIGKILL worker {slot} (pid {pid})")

            def chaos():
                step = args.duration / 6.0
                time.sleep(step)
                sigkill(0)                      # replica loss, shard 0
                time.sleep(step)
                pid = cluster.stats()["workers"][2]["pid"]
                os.kill(pid, signal.SIGSTOP)    # silent stall, shard 0
                print(f"chaos: SIGSTOP worker 2 (pid {pid})")
                time.sleep(step)
                sigkill(1)                      # shard-1 blackout: both
                sigkill(3)                      # replicas at once
                time.sleep(step)
                try:
                    cluster.drain(0).result(timeout=30)
                    print("chaos: drained worker 0")
                except Exception as exc:  # drain is best-effort chaos
                    print(f"chaos: drain failed: {exc}")

            drivers = [threading.Thread(target=closed_loop, args=(k * 97,))
                       for k in range(args.threads)]
            chaos_thread = threading.Thread(target=chaos)
            started = time.perf_counter()
            for thread in drivers:
                thread.start()
            chaos_thread.start()
            for thread in drivers:
                thread.join(timeout=300.0)
                check(not thread.is_alive(), "resilience: driver thread "
                      "finished")
            chaos_thread.join(timeout=60.0)
            check(not chaos_thread.is_alive(), "resilience: chaos thread "
                  "finished")
            seconds = time.perf_counter() - started

            deadline_at = time.monotonic() + 30.0
            while time.monotonic() < deadline_at:
                workers = cluster.stats()["workers"]
                if all(w["alive"] and w["state"] in ("idle", "busy")
                       for w in workers):
                    break
                time.sleep(0.05)
            check(all(w["alive"] for w in cluster.stats()["workers"]),
                  "resilience: every worker slot healed after the burst")
            verify = cluster.submit_many(pairs[:256], timeout=60)
            check(verify.ok and all(
                tuple(got) == truth[pair]
                for pair, got in zip(pairs[:256], verify.answer)),
                  "resilience: post-chaos verification burst is exact")

            stats = cluster.stats()

        tally = {}
        wrong = 0
        for pair, result in results:
            tally[result.status] = tally.get(result.status, 0) + 1
            if result.ok and tuple(result.answer) != truth[pair]:
                wrong += 1
        ok_statuses = (SERVED_INDEX, SERVED_DEGRADED)
        served = sum(tally.get(status, 0) for status in ok_statuses)
        total = len(results)
        availability = served / total if total else 0.0
        counters = stats["counters"]

        check(total > 0, f"resilience: {total} requests driven "
              f"({total / seconds:,.0f} qps)")
        check(wrong == 0, f"resilience: zero wrong answers ({wrong} wrong, "
              f"tally {tally})")
        check(availability >= args.availability_floor,
              f"resilience: availability {availability:.4f} >= "
              f"{args.availability_floor} ({tally})")
        check(counters["respawns"] >= len(kills),
              f"resilience: {counters['respawns']} respawns cover "
              f"{len(kills)} injected kills")
        check(counters["stalls"] >= 1,
              f"resilience: {counters['stalls']} stall kill(s) caught the "
              "SIGSTOPped worker")
        check(counters["hedge_wins"] >= 1,
              f"resilience: {counters['hedges']} hedges, "
              f"{counters['hedge_wins']} hedge win(s)")
        check(counters["drains"] >= 1,
              f"resilience: {counters['drains']} graceful drain(s)")

        section.update({
            "requests": total, "seconds": seconds,
            "qps": total / seconds, "availability": availability,
            "wrong": wrong, "tally": tally,
            "kills_injected": len(kills),
            "respawns": counters["respawns"],
            "stalls": counters["stalls"],
            "hedges": counters["hedges"],
            "hedge_wins": counters["hedge_wins"],
            "degraded_requests": counters["degraded_requests"],
            "degraded_served": tally.get(SERVED_DEGRADED, 0),
            "drains": counters["drains"],
            "replays": counters["replays"],
            "worker_failures": counters["worker_failures"],
        })
    merge_report(args.output, "resilience", section)
    print("resilience smoke: all invariants hold")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default="chaos",
                        choices=["chaos", "sustained", "resilience"],
                        help="chaos: 4-phase single-process gates (default); "
                             "sustained: cluster-vs-single throughput duel; "
                             "resilience: cluster self-healing under kills, "
                             "stalls and drains")
    parser.add_argument("--vertices", type=int, default=80,
                        help="graph size (default 80; sustained uses 10000 "
                             "unless overridden)")
    parser.add_argument("--burst", type=int, default=400,
                        help="requests per chaos/recovery burst (default 400)")
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent driver threads (default 8; "
                             "sustained uses 4 unless overridden)")
    parser.add_argument("--deadline-ms", type=float, default=20.0,
                        help="per-request budget in the chaos phase "
                             "(sustained default: 1000)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="seconds of sustained load per side")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster worker processes (sustained tier)")
    parser.add_argument("--shards", type=int, default=2,
                        help="cluster shards (sustained tier)")
    parser.add_argument("--batch-window-ms", type=float, default=2.0,
                        help="router batch window (sustained tier)")
    parser.add_argument("--speedup-floor", type=float, default=5.0,
                        help="minimum cluster/single QPS ratio (sustained)")
    parser.add_argument("--availability-floor", type=float, default=0.99,
                        help="minimum served fraction under chaos "
                             "(resilience tier)")
    parser.add_argument("--degree", type=int, default=20,
                        help="average G(n, p) degree (sustained tier)")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse/populate a prebuilt label arena here "
                             "(sustained tier; the build takes minutes)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    if args.tier == "sustained":
        # Tier-specific defaults: a bigger graph, looser deadline, and a
        # modest driver pool (the box may be single-core; the speedup
        # gate is about batching, not parallelism).
        if args.vertices == 80:
            args.vertices = 10000
        if args.deadline_ms == 20.0:
            args.deadline_ms = 1000.0
        if args.threads == 8:
            args.threads = 4
        from repro.observability.metrics import enable_metrics

        enable_metrics()
        return run_sustained(args)

    if args.tier == "resilience":
        # Tier-specific defaults: a mid-size graph (labels build in
        # seconds with the csr kernel) and a deadline loose enough that
        # healing — not the budget — decides whether a request survives.
        if args.vertices == 80:
            args.vertices = 2000
        if args.degree == 20:
            args.degree = 8
        if args.deadline_ms == 20.0:
            args.deadline_ms = 1000.0
        return run_resilience(args)

    from repro.core.index import SPCIndex
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.graph.traversal import spc_bfs
    from repro.io.serialize import save_index
    from repro.serving import (
        CIRCUIT_OPEN,
        DEADLINE,
        SERVED_INDEX,
        SHED,
        TERMINAL_STATUSES,
        SPCService,
    )
    from repro.bench.harness import attach_metrics
    from repro.observability.metrics import enable_metrics
    from repro.testing.faults import FlappingFile, SlowFallback

    enable_metrics()
    graph = barabasi_albert_graph(args.vertices, 2, seed=args.seed)
    print(f"graph: barabasi_albert(n={graph.n}, m={graph.m})")
    pairs = [((i * 13) % graph.n, (i * 29 + 5) % graph.n)
             for i in range(args.burst)]
    truth = {(s, t): spc_bfs(graph, s, t) for s, t in set(pairs)}
    deadline = args.deadline_ms / 1000.0

    def exact(results):
        return all(result.answer == truth[pair]
                   for pair, result in results if result.ok)

    report = {"config": vars(args), "python": platform.python_version()}

    with tempfile.TemporaryDirectory() as scratch:
        index_path = os.path.join(scratch, "index.bin")
        save_index(SPCIndex.build(graph), index_path, graph=graph)
        service = SPCService(
            graph, index_path=index_path, capacity=4, queue_limit=8,
            failure_threshold=5, reset_timeout=60.0, reload_check_every=1,
        )

        # Warm-up: the first request pays the initial index load+verify,
        # which is cold-start cost, not steady-state serving latency —
        # the burst gates below are about the latter. Collect the garbage
        # piled up by the BFS truth table too, so its one-off gen-2 pause
        # is not billed to an unlucky burst request.
        service.submit(*pairs[0])
        gc.collect()

        # Phase 1 — healthy burst.
        started = time.perf_counter()
        healthy = drive(service, pairs, args.threads, timeout=deadline)
        healthy_seconds = time.perf_counter() - started
        served = sum(r.status == SERVED_INDEX for _, r in healthy)
        p95 = percentile([r.elapsed for _, r in healthy], 0.95)
        # >= 99% (phase 4's standard): the tight per-request deadline makes
        # 100%-of-400 a max-latency gate, and a single OS-scheduler or GIL
        # hiccup while all slots are held fails it spuriously. The p95
        # check below still gates typical latency at the full deadline.
        check(served >= len(pairs) * 99 // 100,
              f"healthy burst: {served}/{len(pairs)} "
              "requests served from labels (>= 99%)")
        check(exact(healthy), "healthy burst: every answer matches the oracle")
        check(p95 <= deadline, f"healthy burst: p95 {p95 * 1e3:.2f} ms within "
              f"the {args.deadline_ms:.0f} ms deadline")
        report["healthy"] = {"requests": len(pairs), "served": served,
                             "p95_ms": p95 * 1e3,
                             "seconds": healthy_seconds}

        # Phase 2 — corrupt the file while the fallback crawls.
        flapper = FlappingFile(index_path)
        flapper.corrupt(mode="garbage")
        with SlowFallback(seconds=2.5 * deadline) as slow:
            chaos = drive(service, pairs, args.threads, timeout=deadline)
        tally = {}
        for _, result in chaos:
            tally[result.status] = tally.get(result.status, 0) + 1
        stray = set(tally) - set(TERMINAL_STATUSES)
        check(not stray and sum(tally.values()) == len(pairs),
              f"chaos burst: all {len(pairs)} requests ended in a terminal "
              f"status ({tally})")
        breaker = service.breaker.snapshot()
        check(exact(chaos), "chaos burst: every served answer stays exact")
        check(tally.get(DEADLINE, 0) >= 5,
              f"chaos burst: {tally.get(DEADLINE, 0)} deadline failures "
              "(enough to trip the breaker)")
        check(breaker["counters"]["opened"] >= 1,
              "chaos burst: the circuit breaker opened")
        check(breaker["counters"]["short_circuited"] > 0
              and tally.get(CIRCUIT_OPEN, 0) > 0,
              f"chaos burst: {tally.get(CIRCUIT_OPEN, 0)} requests "
              "short-circuited instead of burning deadlines")
        check(slow.calls < len(pairs) // 2,
              f"chaos burst: only {slow.calls}/{len(pairs)} requests paid "
              "the slow fallback")
        report["chaos"] = {"tally": tally, "slow_calls": slow.calls,
                           "breaker": breaker}

        # Phase 3 — overload a deliberately tiny service: shed, don't melt.
        tiny = SPCService(graph, index_path=None, capacity=1, queue_limit=0)
        with SlowFallback(seconds=0.02):
            overload = drive(tiny, pairs[:100], args.threads, timeout=5.0)
        shed = [r for _, r in overload if r.status == SHED]
        check(len(shed) > 0, f"overload: {len(shed)}/100 requests shed")
        check(all(r.error.retry_after > 0 for r in shed),
              "overload: every shed response carries a retry-after hint")
        check(exact(overload), "overload: admitted answers stay exact")
        report["overload"] = {"requests": 100, "shed": len(shed)}

        # Phase 4 — restore the file: one reload, breaker closed, recovery.
        flapper.restore()
        primer = service.submit(0, 1, timeout=5.0)
        check(primer.status == SERVED_INDEX,
              "recovery: first request after restore served from labels")
        check(service.breaker.state == "closed",
              "recovery: the reload closed the breaker")
        check(service.generation == 2,
              f"recovery: generation bumped to {service.generation}")
        recovery = drive(service, pairs, args.threads, timeout=5.0)
        from_labels = sum(r.status == SERVED_INDEX for _, r in recovery)
        p95 = percentile([r.elapsed for _, r in recovery], 0.95)
        check(from_labels >= len(pairs) * 99 // 100,
              f"recovery burst: {from_labels}/{len(pairs)} served from labels "
              "(>= 99%)")
        check(exact(recovery), "recovery burst: answers match the oracle")
        report["recovery"] = {"requests": len(pairs),
                              "served_index": from_labels,
                              "p95_ms": p95 * 1e3}
        report["service"] = service.stats()

    attach_metrics(report)
    # Keep the other tiers' sections when they ran before this tier.
    if os.path.exists(args.output):
        try:
            with open(args.output) as handle:
                existing = json.load(handle)
            for key in ("sustained", "resilience"):
                if key in existing:
                    report[key] = existing[key]
        except (OSError, ValueError):
            pass
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    print("serving smoke: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
