#!/usr/bin/env python
"""CI benchmark smoke: flat batched engine must not be slower than python.

Builds an HP-SPC index over a generated Barabási–Albert graph, times the
same random-pair workload through both query engines, writes the numbers
to ``BENCH_ci_smoke.json`` and exits non-zero when the flat engine's
batched throughput falls below ``--min-speedup`` times the python
engine's (default 1.0: flat must not lose).

A second leg gates the query compilation layer: the same workload as a
compiled ``Batch`` of ``Count`` nodes must answer bit-identically to raw
``count_many`` and add less than ``--max-plan-overhead`` relative wall
time (default 0.05) over it.

Run from the repository root:

    PYTHONPATH=src python tools/ci_bench_smoke.py --vertices 4000
"""

import argparse
import json
import platform
import sys
import time


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=10000,
                        help="graph size (default 10000)")
    parser.add_argument("--attach", type=int, default=3,
                        help="Barabási–Albert attachment degree (default 3)")
    parser.add_argument("--queries", type=int, default=20000,
                        help="random query pairs (default 20000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1,
                        help="construction processes (default 1)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail below this flat/python speedup (default 1.0)")
    parser.add_argument("--max-plan-overhead", type=float, default=0.05,
                        help="fail when the compiled query layer adds more "
                             "than this relative overhead over raw "
                             "count_many (default 0.05)")
    parser.add_argument("--output", default="BENCH_ci_smoke.json")
    args = parser.parse_args(argv)

    from repro.bench.harness import attach_metrics, compare_engines
    from repro.core.index import SPCIndex
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.observability.metrics import enable_metrics
    from repro.utils.rng import random_pairs

    enable_metrics()
    graph = barabasi_albert_graph(args.vertices, args.attach, seed=args.seed)
    print(f"graph: barabasi_albert(n={graph.n}, m={graph.m})")
    started = time.perf_counter()
    index = SPCIndex.build(graph, workers=args.workers, collect_stats=True)
    build_seconds = time.perf_counter() - started
    print(f"build: {build_seconds:.1f}s, {index.total_entries()} entries "
          f"({args.workers} worker(s))")

    started = time.perf_counter()
    index.to_flat()  # freeze outside the timed comparison
    freeze_seconds = time.perf_counter() - started
    pairs = list(random_pairs(graph.n, args.queries, rng=args.seed))
    result = compare_engines(index, pairs)
    print(f"python engine: {result['python_us_per_query']:.2f} us/query")
    print(f"flat engine  : {result['flat_us_per_query']:.2f} us/query "
          f"(freeze {freeze_seconds:.2f}s)")
    print(f"speedup      : {result['speedup']:.2f}x (floor {args.min_speedup:.2f}x)")

    from repro.query import Batch, Count, QueryEngine

    engine = QueryEngine(index=index, cache=None)
    compiled = engine.compile(Batch(tuple(Count(s, t) for s, t in pairs)))
    plan_answers = list(compiled.run())
    direct_answers = [tuple(answer) for answer in index.count_many(pairs)]
    if plan_answers != direct_answers:
        print("FAIL: compiled query answers differ from raw count_many",
              file=sys.stderr)
        return 1
    # Interleaved best-of-N: both paths share the same vectorized scans,
    # so the minimum isolates the compilation layer's per-run overhead
    # from scheduler/GC noise.
    direct_seconds = plan_seconds = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        index.count_many(pairs)
        direct_seconds = min(direct_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        compiled.run()
        plan_seconds = min(plan_seconds, time.perf_counter() - started)
    plan_overhead = plan_seconds / direct_seconds - 1.0
    print(f"query layer  : direct {direct_seconds * 1e3:.1f}ms, "
          f"compiled {plan_seconds * 1e3:.1f}ms, "
          f"overhead {plan_overhead:+.2%} "
          f"(ceiling {args.max_plan_overhead:+.2%})")

    report = {
        "graph": {"family": "barabasi_albert", "n": graph.n, "m": graph.m,
                  "attach": args.attach, "seed": args.seed},
        "build_seconds": round(build_seconds, 3),
        "build_workers": args.workers,
        "build_stats": index.build_stats.as_dict(),
        "label_entries": index.total_entries(),
        "freeze_seconds": round(freeze_seconds, 3),
        "queries": result["queries"],
        "python_us_per_query": round(result["python_us_per_query"], 3),
        "flat_us_per_query": round(result["flat_us_per_query"], 3),
        "speedup": round(result["speedup"], 3),
        "min_speedup": args.min_speedup,
        "query_layer": {
            "answers_identical": True,
            "direct_seconds": round(direct_seconds, 4),
            "compiled_seconds": round(plan_seconds, 4),
            "plan_overhead": round(plan_overhead, 4),
            "max_plan_overhead": args.max_plan_overhead,
        },
        "python_version": platform.python_version(),
    }
    attach_metrics(report)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if result["speedup"] < args.min_speedup:
        print(f"FAIL: flat engine speedup {result['speedup']:.2f}x "
              f"< floor {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if plan_overhead >= args.max_plan_overhead:
        print(f"FAIL: compiled query overhead {plan_overhead:+.2%} "
              f">= ceiling {args.max_plan_overhead:+.2%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
