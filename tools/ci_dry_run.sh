#!/usr/bin/env bash
# Local replica of .github/workflows/ci.yml for environments without `act`.
#
# Runs the same three jobs against the current checkout:
#   lint        ruff check . (falls back to tools/mini_lint.py when ruff is
#               not installed) + the CHANGES.md non-empty gate
#   tests       the tier-1 pytest suite with PYTHONPATH=src (current python
#               only; CI runs the 3.10/3.11/3.12 matrix)
#   chaos-smoke tools/ci_chaos_smoke.py fault-injection gate (corrupt files,
#               killed builds, crashing workers)
#   serving-smoke tools/ci_serving_smoke.py SPCService gate (deadlines,
#               shedding, circuit breaker, hot reload), writing
#               BENCH_serving.json
#   serving-sustained tools/ci_serving_smoke.py --tier sustained, scaled
#               down (CI runs the 10k-vertex cluster-vs-single duel with
#               the 5x speedup floor; the dry run only exercises the
#               machinery)
#   serving-resilience tools/ci_serving_smoke.py --tier resilience,
#               scaled down (same kills/stalls/drain chaos script and
#               zero-wrong-answer + availability gates on a smaller
#               graph and shorter burst)
#   docs-check  tools/gen_api_docs.py --check (docs/API.md and
#               docs/METRICS.md must match the live package) +
#               tools/perf_report.py --check (docs/PERF.md must match the
#               committed BENCH_*.json records)
#   observability-smoke tools/ci_observability_smoke.py (metric coverage,
#               bit-identity, disabled-instrumentation overhead), writing
#               BENCH_observability.json
#   streaming-gate tools/ci_streaming_smoke.py, scaled down (CI runs 60s of
#               insert/delete churn on the 10k graph plus the kill/corrupt
#               chaos legs; the dry run keeps the same gates on a small
#               graph and short window), writing BENCH_streaming.json
#   bench-smoke tools/ci_bench_smoke.py + tools/ci_construction_smoke.py at
#               CI scale, writing BENCH_ci_smoke.json / BENCH_construction.json.
#               The bench smoke also gates the query compilation layer:
#               compiled Batch(Count...) answers must be bit-identical to
#               raw count_many with <5% planning overhead
#   scaling-gate tools/ci_construction_smoke.py --tier scaling (CI runs the
#               100k budgeted csr-batch build; the dry run scales it down
#               to keep a laptop pass under a minute)
#
# The nightly million-vertex job (--tier nightly) is schedule-only and not
# replicated here.
#
# Usage: bash tools/ci_dry_run.sh [--skip-bench]

set -u
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0
step() {
    echo
    echo "=== $1 ==="
}

step "lint"
if command -v ruff >/dev/null 2>&1; then
    ruff check . || failures=$((failures + 1))
elif python -c "import ruff" >/dev/null 2>&1; then
    python -m ruff check . || failures=$((failures + 1))
else
    echo "ruff not installed; using tools/mini_lint.py fallback"
    python tools/mini_lint.py || failures=$((failures + 1))
fi

step "changelog updated"
if [ -s CHANGES.md ]; then
    echo "CHANGES.md: non-empty, ok"
else
    echo "CHANGES.md is empty - every PR must append a changelog entry" >&2
    failures=$((failures + 1))
fi

step "tests (python $(python -c 'import platform; print(platform.python_version())'))"
python -m pytest -x -q || failures=$((failures + 1))

step "docs-check"
python tools/gen_api_docs.py --check || failures=$((failures + 1))
python tools/perf_report.py --check || failures=$((failures + 1))

step "chaos-smoke"
python tools/ci_chaos_smoke.py || failures=$((failures + 1))

step "serving-smoke"
python tools/ci_serving_smoke.py \
    --output "${TMPDIR:-/tmp}/BENCH_serving.local.json" \
    || failures=$((failures + 1))

step "serving-sustained"
# CI runs the full 10k-vertex duel where the 5x batching win emerges;
# the dry run exercises the same driver/gates on a small graph with a
# token floor so a laptop pass stays under half a minute.
python tools/ci_serving_smoke.py --tier sustained \
    --vertices 1500 --degree 10 --duration 2 --speedup-floor 0.1 \
    --output "${TMPDIR:-/tmp}/BENCH_serving.local.json" \
    || failures=$((failures + 1))

step "serving-resilience"
# CI runs the 2000-vertex burst; the dry run keeps the same fault
# schedule and gates on a smaller graph and a shorter window.
python tools/ci_serving_smoke.py --tier resilience \
    --vertices 1200 --duration 4 \
    --output "${TMPDIR:-/tmp}/BENCH_serving.local.json" \
    || failures=$((failures + 1))

step "observability-smoke"
if [ "${1:-}" != "--skip-bench" ]; then
    python tools/ci_observability_smoke.py \
        --output "${TMPDIR:-/tmp}/BENCH_observability.local.json" \
        || failures=$((failures + 1))
else
    # The overhead gate builds the 10k bench graph four times; keep the
    # skip-bench path fast while still exercising coverage + bit-identity.
    python tools/ci_observability_smoke.py --skip-overhead \
        --output "${TMPDIR:-/tmp}/BENCH_observability.local.json" \
        || failures=$((failures + 1))
fi

step "streaming-gate"
# CI runs 60 seconds of churn on the 10k graph; the dry run keeps the
# same zero-wrong-answer and chaos-recovery gates on a small graph.
python tools/ci_streaming_smoke.py \
    --vertices 1500 --duration 6 --chaos-vertices 500 --chaos-duration 4 \
    --output "${TMPDIR:-/tmp}/BENCH_streaming.local.json" \
    || failures=$((failures + 1))

if [ "${1:-}" != "--skip-bench" ]; then
    step "bench-smoke"
    # Scratch outputs: keep the committed 10k-vertex BENCH_*.json intact.
    python tools/ci_bench_smoke.py --vertices 4000 --queries 10000 \
        --output "${TMPDIR:-/tmp}/BENCH_ci_smoke.local.json" \
        || failures=$((failures + 1))
    python tools/ci_construction_smoke.py --vertices 4000 \
        --output "${TMPDIR:-/tmp}/BENCH_construction.local.json" \
        || failures=$((failures + 1))

    step "scaling-gate"
    # CI runs the full 100k tier; a 20k run keeps the dry run quick while
    # exercising the same oracle + budget + BFS spot-check machinery.
    python tools/ci_construction_smoke.py --tier scaling \
        --vertices 20000 --oracle-vertices 4000 --bfs-samples 5 \
        --spill --mmap \
        --output "${TMPDIR:-/tmp}/BENCH_construction_scaling.local.json" \
        || failures=$((failures + 1))
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "ci dry run: $failures job(s) FAILED"
    exit 1
fi
echo "ci dry run: all jobs green"
