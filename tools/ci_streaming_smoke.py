#!/usr/bin/env python3
"""CI gate: rebuild-behind maintenance must stay exact under streaming churn.

Two tiers, both writing into ``BENCH_streaming.json``:

* **streaming** — sustained insert/delete churn on the 10k-vertex bench
  graph with concurrent query traffic. Every facade answer is checked
  against a BFS oracle on the logical graph, and every generation-stable
  answer served by the fronting :class:`SPCService` is checked against
  the published graph of its own generation. Gates: zero wrong answers,
  zero reload failures, at least one background publish (the service
  generation must actually move), and the observed staleness window under
  the configured SLO.
* **chaos** — a small graph, two legs. *resume*: a
  :class:`~repro.testing.faults.KillDuringRebuild` fault SIGKILLs the
  rebuild worker right after its first checkpoint save; supervision must
  retry and the retry must *resume* from the surviving checkpoint
  (``resumed_pushes > 0``) — all while queries keep being answered
  exactly. *corrupt*: the worker is killed again, and before the retry
  the harness flips a bit in the half-written checkpoint; the worker's
  CRC pre-flight must detect it, discard it, and build fresh — again with
  zero wrong answers. A published index is never trusted untested either
  way: the parent re-reads it through the checksummed loader before
  adopting it.

Run from the repo root:

    PYTHONPATH=src python tools/ci_streaming_smoke.py
    PYTHONPATH=src python tools/ci_streaming_smoke.py \\
        --vertices 1500 --duration 6 --chaos-duration 4
"""

import argparse
import json
import os
import platform
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dynamic import MaintenanceSLO, run_streaming_scenario  # noqa: E402
from repro.generators.random_graphs import barabasi_albert_graph  # noqa: E402
from repro.testing.faults import KillDuringRebuild, flip_bit  # noqa: E402


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def merge_report(output, key, section):
    """Write ``section`` under ``key`` in ``output``, keeping other keys."""
    existing = {}
    if os.path.exists(output):
        try:
            with open(output) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing[key] = section
    existing["python"] = platform.python_version()
    existing["platform"] = platform.platform()
    with open(output, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output} [{key}]")


def summarize(report):
    """The slice of a scenario report worth persisting in the bench file."""
    counters = report["controller"]["counters"]
    section = {
        "config": report["config"],
        "elapsed": round(report["elapsed"], 3),
        "mutations": report["mutations"],
        "queries_checked": report["queries"]["total"],
        "served_qps": round(report["queries"]["qps"], 1),
        "overlay_fallbacks": report["queries"]["overlay_fallbacks"],
        "mismatches": len(report["queries"]["mismatches"]),
        "staleness_p50_s": round(report["staleness"]["p50"], 3),
        "staleness_p95_s": round(report["staleness"]["p95"], 3),
        "staleness_max_s": round(report["staleness"]["max"], 3),
        "pending_max": report["staleness"]["pending_max"],
        "publishes": counters["publishes"],
        "rebuild_retries": counters["rebuild_retries"],
        "rebuild_failures": counters["rebuild_failures"],
        "worker_crashes": counters["worker_crashes"],
        "resumed_pushes": counters["resumed_pushes"],
        "checkpoint_discards": counters["checkpoint_discards"],
        "slo_breaches": (counters["slo_staleness_breaches"]
                         + counters["slo_pending_breaches"]),
    }
    if report.get("service") is not None:
        svc = report["service"]
        section["service"] = {
            "generation": svc["generation"],
            "checked": svc["checked"],
            "skipped": svc["skipped"],
            "mismatches": len(svc["mismatches"]),
            "reload_failures": svc["counters"]["reload_failures"],
        }
    return section


def gate_exactness(report, label):
    """The non-negotiable gates every tier shares: nothing wrong, ever."""
    check(not report["errors"], f"{label}: no harness thread failed "
                                f"({report['errors'] or 'clean'})")
    check(report["queries"]["total"] > 0, f"{label}: queries actually ran "
                                          f"({report['queries']['total']})")
    check(not report["queries"]["mismatches"],
          f"{label}: 100% of {report['queries']['total']} facade answers "
          "match the BFS oracle on the logical graph")
    if report.get("service") is not None:
        svc = report["service"]
        check(not svc["mismatches"],
              f"{label}: 100% of {svc['checked']} generation-stable served "
              "answers match their generation's published graph")
        check(svc["counters"]["reload_failures"] == 0,
              f"{label}: zero reload failures")
    check(report["final_exact"] is not False,
          f"{label}: post-drain spot check exact")


def run_streaming(args):
    print(f"== streaming tier: n={args.vertices}, {args.duration:.0f}s of "
          f"churn at {args.rate:.0f} mutations/s ==")
    graph = barabasi_albert_graph(args.vertices, args.degree, seed=args.seed)
    slo = MaintenanceSLO(max_staleness_seconds=args.slo_seconds,
                         max_pending_mutations=args.slo_pending)
    with tempfile.TemporaryDirectory() as workdir:
        report = run_streaming_scenario(
            graph, workdir, duration=args.duration,
            churn_per_second=args.rate,
            delete_fraction=args.delete_fraction,
            query_threads=args.threads, rebuild_threshold=args.threshold,
            slo=slo, engine=args.engine, seed=args.seed,
            task_timeout=args.task_timeout,
            checkpoint_every=args.checkpoint_every,
            query_interval=args.query_interval,
        )

    gate_exactness(report, "streaming")
    counters = report["controller"]["counters"]
    check(counters["publishes"] >= 1,
          f"streaming: background rebuilds published "
          f"({counters['publishes']})")
    check(counters["rebuild_failures"] == 0,
          "streaming: no rebuild cycle exhausted its retries")
    if report.get("service") is not None:
        check(report["service"]["generation"] >= 2,
              f"streaming: the service generation moved "
              f"(gen {report['service']['generation']})")
        check(report["service"]["checked"] > 0,
              f"streaming: served answers were generation-checked "
              f"({report['service']['checked']})")
    check(report["staleness"]["max"] <= args.slo_seconds,
          f"streaming: staleness window {report['staleness']['max']:.2f}s "
          f"within the {args.slo_seconds:.0f}s SLO")
    check(report["mutations"]["inserts"] > 0
          and report["mutations"]["deletes"] > 0,
          f"streaming: churn included both inserts "
          f"({report['mutations']['inserts']}) and deletes "
          f"({report['mutations']['deletes']})")
    return summarize(report)


def run_chaos(args):
    print(f"== chaos tier: n={args.chaos_vertices}, kill the rebuild worker "
          f"mid-build ==")
    graph = barabasi_albert_graph(args.chaos_vertices, args.degree,
                                  seed=args.seed + 1)
    sections = {}

    # Leg A: SIGKILL after the first checkpoint save; the retry must
    # resume from the surviving checkpoint, not restart.
    with tempfile.TemporaryDirectory() as workdir, \
            tempfile.TemporaryDirectory() as markers:
        fault = KillDuringRebuild(markers, after_saves=1, times=1)
        report = run_streaming_scenario(
            graph, workdir, duration=args.chaos_duration,
            churn_per_second=args.rate,
            delete_fraction=args.delete_fraction,
            query_threads=args.threads, rebuild_threshold=6,
            engine="csr", seed=args.seed + 1,
            task_timeout=args.task_timeout, retry_backoff=0.05,
            checkpoint_every=max(10, args.chaos_vertices // 12),
            fault=fault,
        )
    gate_exactness(report, "chaos/resume")
    counters = report["controller"]["counters"]
    check(counters["worker_crashes"] >= 1,
          f"chaos/resume: the kill actually fired "
          f"({counters['worker_crashes']} worker crash)")
    check(counters["rebuild_retries"] >= 1,
          f"chaos/resume: supervision retried "
          f"({counters['rebuild_retries']})")
    check(counters["resumed_pushes"] > 0,
          f"chaos/resume: the retry resumed from the checkpoint "
          f"({counters['resumed_pushes']} pushes skipped)")
    check(counters["publishes"] >= 1,
          f"chaos/resume: a correct index was still published "
          f"({counters['publishes']})")
    sections["resume"] = summarize(report)

    # Leg B: kill again, then corrupt the surviving checkpoint before the
    # retry; the CRC pre-flight must discard it and build fresh.
    corruptions = []

    def corrupt_checkpoint(controller, attempt):
        path = controller.checkpoint_path
        if os.path.exists(path):
            flip_bit(path, 12, 2)
            corruptions.append(attempt)

    with tempfile.TemporaryDirectory() as workdir, \
            tempfile.TemporaryDirectory() as markers:
        fault = KillDuringRebuild(markers, after_saves=1, times=1)
        report = run_streaming_scenario(
            graph, workdir, duration=args.chaos_duration,
            churn_per_second=args.rate,
            delete_fraction=args.delete_fraction,
            query_threads=args.threads, rebuild_threshold=6,
            engine="csr", seed=args.seed + 2,
            task_timeout=args.task_timeout, retry_backoff=0.05,
            checkpoint_every=max(10, args.chaos_vertices // 12),
            fault=fault, before_retry=corrupt_checkpoint,
        )
    gate_exactness(report, "chaos/corrupt")
    counters = report["controller"]["counters"]
    check(counters["worker_crashes"] >= 1,
          f"chaos/corrupt: the kill actually fired "
          f"({counters['worker_crashes']} worker crash)")
    check(corruptions, f"chaos/corrupt: the checkpoint was corrupted "
                       f"before retry {corruptions}")
    check(counters["checkpoint_discards"] >= 1,
          f"chaos/corrupt: the corrupt checkpoint was detected and "
          f"discarded ({counters['checkpoint_discards']})")
    check(counters["publishes"] >= 1,
          f"chaos/corrupt: a correct index was still published "
          f"({counters['publishes']})")
    sections["corrupt"] = summarize(report)
    return sections


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=10_000,
                        help="streaming-tier graph size (default 10000)")
    parser.add_argument("--degree", type=int, default=2,
                        help="Barabási–Albert attachment parameter")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="seconds of sustained churn (default 60)")
    parser.add_argument("--rate", type=float, default=8.0,
                        help="target mutations per second")
    parser.add_argument("--delete-fraction", type=float, default=0.4)
    parser.add_argument("--threads", type=int, default=2,
                        help="concurrent query threads")
    parser.add_argument("--threshold", type=int, default=32,
                        help="pending mutations triggering a rebuild")
    parser.add_argument("--engine", default="csr",
                        choices=["python", "csr", "csr-batch"])
    parser.add_argument("--query-interval", type=float, default=0.2,
                        help="pause between checked queries per thread; the "
                             "10k BFS oracle is expensive enough to starve "
                             "the rebuild worker on small runners otherwise")
    parser.add_argument("--checkpoint-every", type=int, default=2048,
                        help="worker checkpoint cadence (pushes); the chaos "
                             "tier uses its own much smaller cadence")
    parser.add_argument("--slo-seconds", type=float, default=60.0,
                        help="staleness SLO for the streaming tier; covers "
                             "~2 rebuild cycles of the 10k graph on a "
                             "heavily shared CI core")
    parser.add_argument("--slo-pending", type=int, default=1024)
    parser.add_argument("--task-timeout", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chaos-vertices", type=int, default=600)
    parser.add_argument("--chaos-duration", type=float, default=6.0)
    parser.add_argument("--skip-chaos", action="store_true")
    parser.add_argument("--skip-streaming", action="store_true")
    parser.add_argument("--output", default="BENCH_streaming.json")
    args = parser.parse_args()

    if not args.skip_streaming:
        merge_report(args.output, "streaming", run_streaming(args))
    if not args.skip_chaos:
        merge_report(args.output, "chaos", run_chaos(args))
    print("streaming smoke: all gates passed")


if __name__ == "__main__":
    main()
