#!/usr/bin/env python
"""CI chaos smoke: injected faults must end in typed errors or correct answers.

A fast, deterministic slice of the chaos suite, runnable as a standalone
gate: it builds a small index, then drives the fault matrix end to end —

* truncated / bit-flipped / missing index files must degrade a
  :class:`repro.resilience.ResilientSPCIndex` to BFS fallback whose
  answers still match ground truth;
* a build killed between checkpoints must resume to labels
  entry-for-entry identical to an uninterrupted build;
* a crashing pool worker must be retried (or sequentially absorbed)
  without changing the labels.

Exits non-zero on the first violated invariant. Run from the repo root:

    PYTHONPATH=src python tools/ci_chaos_smoke.py
"""

import argparse
import os
import sys
import tempfile


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=60,
                        help="graph size for the fault matrix (default 60)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    from repro.baselines.bfs_counting import spc_all_pairs
    from repro.core.hp_spc import BuildStats, build_labels
    from repro.core.index import SPCIndex
    from repro.exceptions import SerializationError
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.io.checkpoint import BuildCheckpoint
    from repro.io.serialize import load_labels, save_index
    from repro.parallel import build_labels_parallel
    from repro.resilience import ResilientSPCIndex
    from repro.testing.faults import (
        CrashingCheckpoint,
        SimulatedKill,
        WorkerFault,
        flip_bit,
        truncate_file,
    )

    graph = barabasi_albert_graph(args.vertices, 2, seed=args.seed)
    dist, count = spc_all_pairs(graph)
    probes = [(0, args.vertices - 1), (3, 3), (5, args.vertices // 2)]

    def truth(s, t):
        return (dist[s][t], count[s][t]) if count[s][t] else (float("inf"), 0)

    reference = build_labels(graph)

    def identical(labels):
        return labels.order == reference.order and all(
            labels.canonical(v) == reference.canonical(v)
            and labels.noncanonical(v) == reference.noncanonical(v)
            for v in range(graph.n)
        )

    with tempfile.TemporaryDirectory() as scratch:
        index_path = os.path.join(scratch, "index.bin")
        save_index(SPCIndex(reference), index_path, graph=graph)

        # 1. Corrupt index files -> typed error recorded, BFS answers correct.
        for name, damage in (
            ("truncation", lambda: truncate_file(index_path, 25)),
            ("bit-flip", lambda: flip_bit(index_path, 100, 3)),
        ):
            save_index(SPCIndex(reference), index_path, graph=graph)
            damage()
            try:
                load_labels(index_path)
            except SerializationError as exc:
                check(True, f"{name}: loader raised typed error ({exc})")
            else:
                check(False, f"{name}: loader accepted a damaged file")
            resilient = ResilientSPCIndex(graph, index_path=index_path)
            check(resilient.status == "degraded",
                  f"{name}: resilient index degraded instead of crashing")
            check(
                all(resilient.count_with_distance(s, t) == truth(s, t)
                    for s, t in probes),
                f"{name}: BFS fallback answers match ground truth",
            )
            check(resilient.counters["fallback_queries"] == len(probes),
                  f"{name}: fallback counter observed the degradation")

        # 2. Missing index -> degraded but correct.
        resilient = ResilientSPCIndex(
            graph, index_path=os.path.join(scratch, "absent.bin")
        )
        check(resilient.status == "degraded"
              and all(resilient.count_with_distance(s, t) == truth(s, t)
                      for s, t in probes),
              "missing index: degraded with correct answers")

        # 3. Kill between checkpoints -> resume is bit-identical.
        ckpt = os.path.join(scratch, "build.ckpt")
        try:
            build_labels(graph, checkpoint=CrashingCheckpoint(ckpt, every=15))
        except SimulatedKill:
            pass
        check(os.path.exists(ckpt), "kill mid-build: checkpoint survived")
        stats = BuildStats()
        resumed = build_labels(
            graph, stats=stats, checkpoint=BuildCheckpoint(ckpt, every=15)
        )
        check(stats.resumed_pushes == 15, "resume skipped the pushed prefix")
        check(identical(resumed),
              "resumed build is entry-for-entry identical to uninterrupted")

        # 4. Crashing worker -> retried, labels identical.
        stats = BuildStats()
        fault = WorkerFault("exception", blocks=(0,), marker_dir=scratch, times=1)
        parallel = build_labels_parallel(
            graph, workers=2, stats=stats, retry_backoff=0, _fault=fault
        )
        check(stats.worker_retries >= 1, "worker crash: supervisor retried")
        check(identical(parallel), "worker crash: labels unchanged after retry")

    print("chaos smoke: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
