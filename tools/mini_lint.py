#!/usr/bin/env python
"""Dependency-free fallback linter for environments without ruff.

Checks a conservative subset of the repo's ruff rules (see
``[tool.ruff.lint]`` in pyproject.toml) so `tools/ci_dry_run.sh` can
still gate obvious problems when ruff is not installed:

* F401 — module-level imports never used (``__all__`` counts as a use)
* E711/E712 — comparisons to ``None`` / ``True`` / ``False`` with ``==``
* E722 — bare ``except:``
* E731 — lambda assigned to a name
* E9   — syntax errors
* I001 (approximate) — within the leading import block: stdlib before
  third-party before first-party (``repro``), straight imports before
  ``from`` imports per section, each alphabetized
* D100-ish — public-API docstrings: inside ``DOCSTRING_REQUIRED``
  subtrees (the observability/serving/resilience layers), every module
  and every public class/function/method must open with a docstring

It intentionally under-reports relative to ruff; anything it flags is a
real violation, so it is safe to fail the dry run on findings.
"""

import ast
import sys
from pathlib import Path

FIRST_PARTY = {"repro"}
STDLIB = set(getattr(sys, "stdlib_module_names", ()))

#: ``src``-relative prefixes whose public API must carry docstrings.
DOCSTRING_REQUIRED = (
    "repro/observability",
    "repro/serving",
    "repro/resilience.py",
)


def _module_section(module):
    root = module.split(".")[0]
    if root in FIRST_PARTY:
        return 2
    if root in STDLIB:
        return 0
    return 1


def _iter_names(node):
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.asname or alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name != "*":
                yield alias.asname or alias.name


def _used_names(tree):
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            inner = node
            while isinstance(inner, ast.Attribute):
                inner = inner.value
            if isinstance(inner, ast.Name):
                used.add(inner.id)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    used.add(element.value)
    return used


def _check_unused_imports(path, tree, problems):
    used = _used_names(tree)
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for name in _iter_names(node):
                if name not in used:
                    problems.append(
                        f"{path}:{node.lineno}: F401 imported but unused: {name}"
                    )


def _check_comparisons(path, tree, problems):
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comparator, ast.Constant) and comparator.value is None:
                    problems.append(f"{path}:{node.lineno}: E711 comparison to None")
                elif isinstance(comparator, ast.Constant) and isinstance(
                    comparator.value, bool
                ):
                    problems.append(f"{path}:{node.lineno}: E712 comparison to bool")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(f"{path}:{node.lineno}: E722 bare except")
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            problems.append(f"{path}:{node.lineno}: E731 lambda assignment")


def _check_import_order(path, tree, problems):
    block = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.level:
                return  # relative imports: out of scope for the fallback
            block.append(node)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # docstring
        else:
            break
    keys = []
    for node in block:
        if isinstance(node, ast.Import):
            module = node.names[0].name
            straight = 0
        else:
            module = node.module or ""
            straight = 1
        keys.append((_module_section(module), straight, module))
    for previous, current, node in zip(keys, keys[1:], block[1:]):
        if current < previous:
            problems.append(
                f"{path}:{node.lineno}: I001 import block out of order"
            )
            break


def _needs_docstrings(path):
    posix = path.as_posix()
    return any(f"/{prefix}" in posix or posix.startswith(prefix)
               for prefix in DOCSTRING_REQUIRED)


def _check_docstrings(path, tree, problems):
    """Public modules/classes/functions in covered subtrees need one-liners.

    Private names (leading underscore), dunders other than the module
    itself, and nested function bodies are exempt; overridden methods are
    not — a reader of the API docs sees every public callable.
    """
    if not ast.get_docstring(tree):
        problems.append(f"{path}:1: D100 public module missing docstring")

    def visit(node, owner):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not child.name.startswith("_"):
                    if not ast.get_docstring(child):
                        problems.append(
                            f"{path}:{child.lineno}: D103 public "
                            f"{'method' if owner else 'function'} "
                            f"{owner}{child.name} missing docstring"
                        )
            elif isinstance(child, ast.ClassDef):
                if not child.name.startswith("_"):
                    if not ast.get_docstring(child):
                        problems.append(
                            f"{path}:{child.lineno}: D101 public class "
                            f"{child.name} missing docstring"
                        )
                    visit(child, f"{child.name}.")

    visit(tree, "")


def lint_file(path):
    problems = []
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: E999 syntax error: {exc.msg}"]
    _check_unused_imports(path, tree, problems)
    _check_comparisons(path, tree, problems)
    _check_import_order(path, tree, problems)
    if _needs_docstrings(path):
        _check_docstrings(path, tree, problems)
    return problems


def main(argv=None):
    roots = [Path(p) for p in (argv or sys.argv[1:])] or [
        Path("src"), Path("tests"), Path("tools"), Path("examples"),
    ]
    problems = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            problems.extend(lint_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("mini-lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
