#!/usr/bin/env python
"""CI construction smoke: the csr engine must beat python and agree bit-for-bit.

Builds the same generated Barabási–Albert graph with both construction
engines (:func:`repro.bench.harness.compare_builders`), checks the two
labelings are entry-for-entry identical, writes the timings plus both
engines' :class:`~repro.core.hp_spc.BuildStats` counters to
``BENCH_construction.json``, and exits non-zero when the csr engine is
not at least ``--min-speedup`` times faster than python (default 1.0:
csr must not lose) or when the labelings differ.

Run from the repository root:

    PYTHONPATH=src python tools/ci_construction_smoke.py --vertices 4000
"""

import argparse
import json
import platform
import sys


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=10000,
                        help="graph size (default 10000)")
    parser.add_argument("--attach", type=int, default=3,
                        help="Barabási–Albert attachment degree (default 3)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ordering", default="degree")
    parser.add_argument("--repeat", type=int, default=1,
                        help="builds per engine; the best is reported (default 1)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail below this python/csr speedup (default 1.0)")
    parser.add_argument("--output", default="BENCH_construction.json")
    args = parser.parse_args(argv)

    from repro.bench.harness import compare_builders
    from repro.generators.random_graphs import barabasi_albert_graph

    graph = barabasi_albert_graph(args.vertices, args.attach, seed=args.seed)
    print(f"graph: barabasi_albert(n={graph.n}, m={graph.m})")

    comparison = compare_builders(graph, engines=("python", "csr"),
                                  ordering=args.ordering, repeat=args.repeat)
    python_result = comparison["engines"]["python"]
    csr_result = comparison["engines"]["csr"]
    print(f"python engine: {python_result['seconds']:.2f}s, "
          f"{python_result['entries']} entries")
    print(f"csr engine   : {csr_result['seconds']:.2f}s, "
          f"{csr_result['entries']} entries")
    print(f"speedup      : {comparison['speedup']:.2f}x "
          f"(floor {args.min_speedup:.2f}x)")
    print(f"identical    : {comparison['identical']}")

    report = {
        "graph": {"family": "barabasi_albert", "n": graph.n, "m": graph.m,
                  "attach": args.attach, "seed": args.seed},
        "ordering": args.ordering,
        "repeat": args.repeat,
        "python_seconds": round(python_result["seconds"], 3),
        "csr_seconds": round(csr_result["seconds"], 3),
        "speedup": round(comparison["speedup"], 3),
        "identical": comparison["identical"],
        "label_entries": csr_result["entries"],
        "python_build_stats": python_result["build_stats"],
        "csr_build_stats": csr_result["build_stats"],
        "min_speedup": args.min_speedup,
        "python_version": platform.python_version(),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    failed = False
    if not comparison["identical"]:
        print("FAIL: csr labeling is not entry-for-entry identical to python",
              file=sys.stderr)
        failed = True
    if python_result["build_stats"] != csr_result["build_stats"]:
        print("FAIL: construction counters differ between engines",
              file=sys.stderr)
        failed = True
    if comparison["speedup"] < args.min_speedup:
        print(f"FAIL: csr engine speedup {comparison['speedup']:.2f}x "
              f"< floor {args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
