#!/usr/bin/env python
"""CI construction gates: engine parity smoke plus large-graph scaling tiers.

Three tiers, selected with ``--tier``:

``smoke`` (default, runs on every PR)
    Builds one generated Barabási–Albert graph with the ``python`` and
    ``csr`` engines (:func:`repro.bench.harness.compare_builders`),
    requires entry-for-entry identical labelings, equal construction
    counters, and at least ``--min-speedup``; then builds the same graph
    with the rank-batched ``csr-batch`` engine and requires bit-identity
    with csr. Timings land in ``BENCH_construction.json``.

``scaling`` (runs on every PR, bigger box budget)
    First replays a small bit-identity oracle (csr vs csr-batch at
    ``--oracle-vertices``), then builds a ``--vertices`` (default 100k)
    graph with the csr-batch engine under ``--max-seconds`` /
    ``--max-rss-mb`` budgets, spot-checks ``--bfs-samples`` single-source
    sweeps against the vectorized BFS oracle, and reports label
    bytes/vertex plus peak RSS.

``nightly`` (scheduled job)
    The scaling tier with million-vertex defaults and looser budgets —
    the standing record that one box builds and serves n = 10^6.

Run from the repository root:

    PYTHONPATH=src python tools/ci_construction_smoke.py --vertices 4000
    PYTHONPATH=src python tools/ci_construction_smoke.py --tier scaling
    PYTHONPATH=src python tools/ci_construction_smoke.py --tier nightly
"""

import argparse
import json
import platform
import sys
import time

#: per-tier defaults: (vertices, max_seconds, max_rss_mb)
TIER_DEFAULTS = {
    "smoke": (10_000, None, None),
    "scaling": (100_000, 1800.0, 8192.0),
    "nightly": (1_000_000, 14_400.0, 65_536.0),
}


def _peak_rss_mb():
    """Max resident set size of this process so far, in MiB (Linux/macOS)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        peak //= 1024
    return peak / 1024.0


def run_smoke(args):
    from repro.bench.harness import compare_builders
    from repro.core.hp_spc import BuildStats
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.kernels.batch_push import build_flat_labels_batched

    graph = barabasi_albert_graph(args.vertices, args.attach, seed=args.seed)
    print(f"graph: barabasi_albert(n={graph.n}, m={graph.m})")

    comparison = compare_builders(graph, engines=("python", "csr"),
                                  ordering=args.ordering, repeat=args.repeat)
    python_result = comparison["engines"]["python"]
    csr_result = comparison["engines"]["csr"]
    print(f"python engine: {python_result['seconds']:.2f}s, "
          f"{python_result['entries']} entries")
    print(f"csr engine   : {csr_result['seconds']:.2f}s, "
          f"{csr_result['entries']} entries")
    print(f"speedup      : {comparison['speedup']:.2f}x "
          f"(floor {args.min_speedup:.2f}x)")
    print(f"identical    : {comparison['identical']}")

    # The rank-batched engine rides the same graph: bit-identical labels
    # required (its counter convention differs, so stats are reported,
    # not compared).
    batch_stats = BuildStats()
    started = time.perf_counter()
    batch_flat = build_flat_labels_batched(graph, ordering=args.ordering,
                                           stats=batch_stats)
    batch_seconds = time.perf_counter() - started
    # compare_builders does not expose the labelings; rebuild csr once.
    from repro.kernels.hub_push import build_flat_labels_csr

    csr_flat = build_flat_labels_csr(graph, ordering=args.ordering)
    batch_identical = batch_flat.equals(csr_flat)
    print(f"csr-batch    : {batch_seconds:.2f}s, "
          f"{batch_flat.total_entries()} entries, "
          f"identical: {batch_identical}")

    report = {
        "tier": "smoke",
        "graph": {"family": "barabasi_albert", "n": graph.n, "m": graph.m,
                  "attach": args.attach, "seed": args.seed},
        "ordering": args.ordering,
        "repeat": args.repeat,
        "python_seconds": round(python_result["seconds"], 3),
        "csr_seconds": round(csr_result["seconds"], 3),
        "csr_batch_seconds": round(batch_seconds, 3),
        "speedup": round(comparison["speedup"], 3),
        "identical": comparison["identical"],
        "csr_batch_identical": batch_identical,
        "label_entries": csr_result["entries"],
        "python_build_stats": python_result["build_stats"],
        "csr_build_stats": csr_result["build_stats"],
        "csr_batch_build_stats": batch_stats.as_dict(),
        "min_speedup": args.min_speedup,
        "python_version": platform.python_version(),
    }
    _write_report(report, args.output)

    failed = False
    if not comparison["identical"]:
        print("FAIL: csr labeling is not entry-for-entry identical to python",
              file=sys.stderr)
        failed = True
    if python_result["build_stats"] != csr_result["build_stats"]:
        print("FAIL: construction counters differ between engines",
              file=sys.stderr)
        failed = True
    if not batch_identical:
        print("FAIL: csr-batch labeling is not entry-for-entry identical "
              "to csr", file=sys.stderr)
        failed = True
    if comparison["speedup"] < args.min_speedup:
        print(f"FAIL: csr engine speedup {comparison['speedup']:.2f}x "
              f"< floor {args.min_speedup:.2f}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def run_scaling(args):
    import os
    import tempfile

    import numpy as np

    from repro.core.batch_query import single_source
    from repro.generators.random_graphs import barabasi_albert_graph
    from repro.kernels.batch_push import (
        build_flat_labels_batched,
        default_batch_size,
    )
    from repro.kernels.bfs import bfs_count_csr
    from repro.kernels.hub_push import build_flat_labels_csr

    failed = False

    # Gate 1: small-graph oracle — the batched engine must agree with the
    # sequential csr engine bit-for-bit before its large build counts.
    oracle_graph = barabasi_albert_graph(args.oracle_vertices, args.attach,
                                         seed=args.seed)
    oracle_ref = build_flat_labels_csr(oracle_graph, ordering=args.ordering)
    oracle_batch = build_flat_labels_batched(
        oracle_graph, ordering=args.ordering, batch_size=args.batch_size,
    )
    oracle_ok = oracle_batch.equals(oracle_ref)
    print(f"oracle (n={oracle_graph.n}): bit-identical = {oracle_ok}")
    if not oracle_ok:
        print("FAIL: csr-batch differs from csr on the oracle graph",
              file=sys.stderr)
        failed = True

    # Gate 2: the large build itself, under time/memory budgets.
    graph = barabasi_albert_graph(args.vertices, args.attach, seed=args.seed)
    print(f"graph: barabasi_albert(n={graph.n}, m={graph.m})")
    batch = args.batch_size or default_batch_size(graph.n)
    print(f"batch size: {batch}; spill: {bool(args.spill)}; "
          f"mmap: {bool(args.mmap)}")
    with tempfile.TemporaryDirectory() as tmp:
        spill_dir = os.path.join(tmp, "spill") if args.spill else None
        mmap_dir = os.path.join(tmp, "cols") if args.mmap else None
        if spill_dir:
            os.makedirs(spill_dir)
        if mmap_dir:
            os.makedirs(mmap_dir)
        started = time.perf_counter()
        flat = build_flat_labels_batched(
            graph, ordering=args.ordering, batch_size=args.batch_size,
            spill_dir=spill_dir, mmap_dir=mmap_dir,
        )
        build_seconds = time.perf_counter() - started
        peak_rss = _peak_rss_mb()
        entries = flat.total_entries()
        bytes_per_vertex = flat.nbytes() / graph.n
        avg_label = entries / graph.n
        print(f"build        : {build_seconds:.1f}s "
              f"(budget {args.max_seconds or 'none'})")
        print(f"entries      : {entries} (avg |L(v)| = {avg_label:.1f})")
        print(f"bytes/vertex : {bytes_per_vertex:.1f}")
        print(f"peak rss     : {peak_rss:.0f} MiB "
              f"(budget {args.max_rss_mb or 'none'})")

        # Gate 3: sampled single-source sweeps against the BFS oracle —
        # catches any at-scale wrongness the small oracle can't see.
        rng = np.random.default_rng(args.seed)
        sources = rng.integers(0, graph.n, size=args.bfs_samples)
        check_started = time.perf_counter()
        bad = 0
        for source in sources:
            ref_dist, ref_count = bfs_count_csr(graph, int(source))
            got_dist, got_count = single_source(flat, int(source))
            unreachable = ref_dist < 0
            got_dist = got_dist.copy()
            got_dist[np.isinf(got_dist)] = -1
            if not (np.array_equal(got_dist.astype(np.int64), ref_dist)
                    and np.array_equal(
                        got_count.astype(np.int64)[~unreachable],
                        ref_count[~unreachable])):
                bad += 1
        check_seconds = time.perf_counter() - check_started
        print(f"bfs spot-check: {args.bfs_samples} sources, {bad} mismatches "
              f"({check_seconds:.1f}s)")
        if bad:
            print(f"FAIL: {bad} single-source sweeps disagree with BFS",
                  file=sys.stderr)
            failed = True

    if args.max_seconds is not None and build_seconds > args.max_seconds:
        print(f"FAIL: build took {build_seconds:.1f}s "
              f"> budget {args.max_seconds:.0f}s", file=sys.stderr)
        failed = True
    if args.max_rss_mb is not None and peak_rss > args.max_rss_mb:
        print(f"FAIL: peak RSS {peak_rss:.0f} MiB "
              f"> budget {args.max_rss_mb:.0f} MiB", file=sys.stderr)
        failed = True

    report = {
        "tier": args.tier,
        "graph": {"family": "barabasi_albert", "n": graph.n, "m": graph.m,
                  "attach": args.attach, "seed": args.seed},
        "ordering": args.ordering,
        "engine": "csr-batch",
        "batch_size": batch,
        "spill": bool(args.spill),
        "mmap": bool(args.mmap),
        "build_seconds": round(build_seconds, 3),
        "max_seconds": args.max_seconds,
        "peak_rss_mb": round(peak_rss, 1),
        "max_rss_mb": args.max_rss_mb,
        "label_entries": entries,
        "avg_label_size": round(avg_label, 2),
        "label_bytes_per_vertex": round(bytes_per_vertex, 1),
        "oracle_vertices": args.oracle_vertices,
        "oracle_identical": oracle_ok,
        "bfs_samples": args.bfs_samples,
        "bfs_mismatches": bad,
        "python_version": platform.python_version(),
    }
    _write_report(report, args.output)
    return 1 if failed else 0


def _write_report(report, output):
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", default="smoke",
                        choices=["smoke", "scaling", "nightly"],
                        help="smoke: engine parity; scaling: 100k budgeted "
                             "build; nightly: the 1M record run")
    parser.add_argument("--vertices", type=int, default=None,
                        help="graph size (default: 10000/100000/1000000 "
                             "by tier)")
    parser.add_argument("--attach", type=int, default=3,
                        help="Barabási–Albert attachment degree (default 3)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ordering", default="degree")
    parser.add_argument("--repeat", type=int, default=1,
                        help="smoke: builds per engine; best reported "
                             "(default 1)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="smoke: fail below this python/csr speedup "
                             "(default 1.0)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="csr-batch ranks per sweep (default: auto)")
    parser.add_argument("--oracle-vertices", type=int, default=10_000,
                        help="scaling/nightly: size of the bit-identity "
                             "oracle graph (default 10000)")
    parser.add_argument("--bfs-samples", type=int, default=10,
                        help="scaling/nightly: single-source BFS spot checks "
                             "(default 10)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="scaling/nightly: fail when the build exceeds "
                             "this wall-clock budget")
    parser.add_argument("--max-rss-mb", type=float, default=None,
                        help="scaling/nightly: fail when peak RSS exceeds "
                             "this budget")
    parser.add_argument("--spill", action="store_true",
                        help="scaling/nightly: stream emission chunks to a "
                             "temp spill dir during the build")
    parser.add_argument("--mmap", action="store_true",
                        help="scaling/nightly: memory-map the final label "
                             "columns instead of allocating them in RAM")
    parser.add_argument("--output", default="BENCH_construction.json")
    args = parser.parse_args(argv)

    default_n, default_secs, default_rss = TIER_DEFAULTS[args.tier]
    if args.vertices is None:
        args.vertices = default_n
    if args.max_seconds is None and args.tier != "smoke":
        args.max_seconds = default_secs
    if args.max_rss_mb is None and args.tier != "smoke":
        args.max_rss_mb = default_rss

    if args.tier == "smoke":
        return run_smoke(args)
    return run_scaling(args)


if __name__ == "__main__":
    sys.exit(main())
