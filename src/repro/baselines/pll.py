"""Pruned landmark labeling (PLL) for *distance* queries [6].

The state-of-the-art canonical 2-hop labeling HP-SPC extends. Included as
a baseline and as a cross-check: under the same vertex order, PLL's hub
set must equal the hubs of HP-SPC's canonical part ``L^c`` (§3.2), which
the test suite asserts.
"""

from collections import deque

from repro.core.ordering import resolve_ordering
from repro.exceptions import OrderingError

INF = float("inf")


class PrunedLandmarkLabeling:
    """Distance-only 2-hop labels built by pruned BFS.

    Entries per vertex are ``(rank, hub, dist)`` sorted by rank; queries
    are merge joins like the counting index's, minus the counts.
    """

    def __init__(self, labels, order):
        self._labels = labels
        self._order = tuple(order)

    @classmethod
    def build(cls, graph, ordering="degree"):
        strategy = resolve_ordering(ordering)
        if strategy.wants_tree:
            raise OrderingError("PLL supports static orders only (degree or explicit)")
        n = graph.n
        adj = graph.adjacency
        labels = [[] for _ in range(n)]
        dist = [INF] * n
        hub_dist = [INF] * n
        pushed = [False] * n
        order = []
        w = strategy.first_vertex(graph) if n else None
        while w is not None:
            rank = len(order)
            order.append(w)
            pushed[w] = True
            touched = []
            for _, hub, d in labels[w]:
                hub_dist[hub] = d
                touched.append(hub)
            dist[w] = 0
            labels[w].append((rank, w, 0))
            queue = deque([w])
            visited = [w]
            while queue:
                v = queue.popleft()
                dv = dist[v]
                if v != w:
                    best = min(
                        (hub_dist[hub] + d for _, hub, d in labels[v]),
                        default=INF,
                    )
                    # PLL prunes on <=: an equally-long path through a
                    # higher-ranked hub makes w redundant for distances.
                    if best <= dv:
                        continue
                    labels[v].append((rank, w, dv))
                for v2 in adj[v]:
                    if dist[v2] is INF and not pushed[v2]:
                        dist[v2] = dv + 1
                        queue.append(v2)
                        visited.append(v2)
            for v in visited:
                dist[v] = INF
            for hub in touched:
                hub_dist[hub] = INF
            w = strategy.next_vertex(graph, pushed, None)
        if len(order) != n:
            raise OrderingError("ordering did not cover all vertices")
        return cls(labels, order)

    def distance(self, s, t):
        """``sd(s, t)``; ``inf`` when disconnected."""
        if s == t:
            return 0
        row_s = self._labels[s]
        row_t = self._labels[t]
        best = INF
        i = j = 0
        while i < len(row_s) and j < len(row_t):
            rs = row_s[i][0]
            rt = row_t[j][0]
            if rs < rt:
                i += 1
            elif rs > rt:
                j += 1
            else:
                total = row_s[i][2] + row_t[j][2]
                if total < best:
                    best = total
                i += 1
                j += 1
        return best

    def hubs(self, v):
        """The hub set of ``v`` (compared against ``L^c`` hubs in tests)."""
        return {hub for _, hub, _ in self._labels[v]}

    def total_entries(self):
        return sum(len(row) for row in self._labels)

    @property
    def order(self):
        return self._order

    def __repr__(self):
        return f"PrunedLandmarkLabeling(n={len(self._labels)}, entries={self.total_entries()})"
