"""The count-matrix strawman of §1 ([44]'s precomputation).

Group-betweenness pipelines want O(1) access to ``sd`` and ``spc`` for
every pair; precomputing full n x n matrices delivers that at O(n²)
memory — the "unaffordable overhead" hub labeling replaces. Kept as the
memory/quality baseline for the applications benchmark.
"""

from repro.graph.traversal import bfs_count_from

INF = float("inf")


class CountMatrixOracle:
    """Dense all-pairs distance and count matrices with O(1) queries."""

    def __init__(self, dist_rows, count_rows):
        self._dist = dist_rows
        self._count = count_rows

    @classmethod
    def build(cls, graph, **_ignored):
        dist_rows = []
        count_rows = []
        for source in graph.vertices():
            dist, count = bfs_count_from(graph, source)
            dist_rows.append(dist)
            count_rows.append(count)
        return cls(dist_rows, count_rows)

    def count(self, s, t):
        if s == t:
            return 1
        return self._count[s][t]

    def distance(self, s, t):
        return self._dist[s][t]

    def count_with_distance(self, s, t):
        if s == t:
            return 0, 1
        c = self._count[s][t]
        return (self._dist[s][t], c) if c else (INF, 0)

    def size_bytes(self, bytes_per_cell=12):
        """Paper-style accounting: dist (4B) + count (8B) per ordered pair."""
        n = len(self._dist)
        return n * n * bytes_per_cell

    def __repr__(self):
        return f"CountMatrixOracle(n={len(self._dist)})"
