"""PL-SPC — the planar counting oracle of Bezáková & Searns [12] (Exp-6).

Both PL-SPC and HP-SPC_P consume the same recursive-separator preorder;
the difference is pruning. PL-SPC performs no pruning joins: every vertex
a hub's restricted BFS reaches receives a label entry. Removing
higher-ranked separator vertices confines each BFS to the hub's region,
so the label of a vertex in tree node t collects entries from t and all
its ancestors — a superset of HP-SPC_P's hubs (§5.1).

Entries can carry *stale* distances (longer than the true shortest
distance, when every shortest path leaves the hub's region); the query's
minimum-distance rule discards them, because for the highest-ranked
vertex on any shortest path both entries are exact. Consequences measured
in Table 5: cheaper indexing (no joins), larger index, slower queries.
"""

import time

from repro.core.hp_spc import build_labels
from repro.core.query import count_query, distance_query
from repro.theory.planar_order import planar_separator_order


class PLSPCIndex:
    """The unpruned separator-order counting index."""

    def __init__(self, labels, tree, build_seconds=None):
        self._labels = labels
        self._tree = tree
        self._build_seconds = build_seconds

    @classmethod
    def build(cls, graph, points=None, leaf_size=8, order=None):
        """Build over a separator preorder (computed here unless given)."""
        started = time.perf_counter()
        tree = None
        if order is None:
            order, tree = planar_separator_order(
                graph, points=points, leaf_size=leaf_size, return_tree=True
            )
        labels = build_labels(graph, ordering=list(order), prune=False)
        elapsed = time.perf_counter() - started
        return cls(labels, tree, build_seconds=elapsed)

    def count(self, s, t):
        return count_query(self._labels, s, t)[1]

    def distance(self, s, t):
        return distance_query(self._labels, s, t)

    def count_with_distance(self, s, t):
        return count_query(self._labels, s, t)

    @property
    def labels(self):
        return self._labels

    @property
    def tree(self):
        return self._tree

    @property
    def build_seconds(self):
        return self._build_seconds

    def total_entries(self):
        return self._labels.total_entries()

    def size_bytes(self, entry_bits=192):
        """Exp-6 sizing: the paper packs Delaunay entries in 32+32+128 bits."""
        return self._labels.packed_size_bytes(entry_bits)

    def __repr__(self):
        return f"PLSPCIndex(n={self._labels.n}, entries={self._labels.total_entries()})"
