"""Online BFS counting — the paper's query-time baseline (Table 3).

No index: every query runs a counting BFS from the source. Also provides
the all-pairs ground truth the test suite validates every labeling
against.
"""

from repro.graph.traversal import bfs_count_from, spc_bfs

INF = float("inf")


class BFSCountingOracle:
    """Adapter giving online BFS the same query surface as the indexes.

    ``count`` / ``distance`` / ``count_with_distance`` each run one BFS;
    there is no construction cost (the paper's "BFS Time" column measures
    exactly this per-query work).
    """

    def __init__(self, graph):
        self._graph = graph

    @classmethod
    def build(cls, graph, **_ignored):
        return cls(graph)

    def count(self, s, t):
        return spc_bfs(self._graph, s, t)[1]

    def distance(self, s, t):
        return spc_bfs(self._graph, s, t)[0]

    def count_with_distance(self, s, t):
        return spc_bfs(self._graph, s, t)

    def __repr__(self):
        return f"BFSCountingOracle(n={self._graph.n})"


def spc_all_pairs(graph):
    """All-pairs ``(dist, count)`` matrices by n counting BFS runs.

    Returns ``(dist, count)`` as lists of per-source lists. The canonical
    ground truth for property tests; O(n·m) time, O(n²) space.
    """
    dist_rows = []
    count_rows = []
    for source in graph.vertices():
        dist, count = bfs_count_from(graph, source)
        dist_rows.append(dist)
        count_rows.append(count)
    return dist_rows, count_rows
