"""Online BFS counting — the paper's query-time baseline (Table 3).

No index: every query runs a counting BFS from the source. Also provides
the all-pairs ground truth the test suite validates every labeling
against. Both the oracle and the all-pairs sweep can run on the scalar
deque BFS (``engine="python"``, arbitrary-precision counts) or on the
vectorized CSR kernels of :mod:`repro.kernels.bfs` (``engine="csr"``,
int64 counts, one full level-synchronous sweep per source).
"""

from repro.graph.traversal import bfs_count_from, spc_bfs

INF = float("inf")


def _spc_csr(graph, s, t, deadline=None):
    """``(distance, count)`` via one vectorized full sweep from ``s``."""
    from repro.kernels.bfs import bfs_count_csr

    if s == t:
        return 0, 1
    dist, count = bfs_count_csr(graph, s, deadline=deadline)
    if count[t]:
        return int(dist[t]), int(count[t])
    return INF, 0


class BFSCountingOracle:
    """Adapter giving online BFS the same query surface as the indexes.

    ``count`` / ``distance`` / ``count_with_distance`` each run one BFS;
    there is no construction cost (the paper's "BFS Time" column measures
    exactly this per-query work). The scalar engine stops early at the
    target's level; the csr engine always sweeps the whole component but
    expands each level in a handful of numpy passes.
    """

    def __init__(self, graph, engine="python"):
        if engine not in ("python", "csr"):
            raise ValueError(f"unknown BFS engine {engine!r}; "
                             "expected 'python' or 'csr'")
        self._graph = graph
        self._engine = engine

    @classmethod
    def build(cls, graph, engine="python", **_ignored):
        return cls(graph, engine=engine)

    def count(self, s, t, deadline=None):
        return self.count_with_distance(s, t, deadline=deadline)[1]

    def distance(self, s, t, deadline=None):
        return self.count_with_distance(s, t, deadline=deadline)[0]

    def count_with_distance(self, s, t, deadline=None):
        """One online BFS; ``deadline`` (duck-typed ``check()``) makes the
        sweep cooperative — it raises
        :class:`~repro.exceptions.DeadlineExceeded` at the next level/chunk
        checkpoint once the budget is spent, never a partial answer."""
        if self._engine == "csr":
            return _spc_csr(self._graph, s, t, deadline=deadline)
        return spc_bfs(self._graph, s, t, deadline=deadline)

    def single_source(self, s, deadline=None):
        """``(dist, count)`` numpy arrays from ``s`` over every vertex.

        Matches :meth:`repro.core.index.SPCIndex.single_source`'s
        conventions — float64 distances with ``inf`` for unreachable
        vertices, int64 counts, ``(0, 1)`` on the diagonal — so the
        resilient fallback path is a drop-in for the flat engine. Counts
        too wide for int64 (python engine only) fall back to an object
        array rather than losing exactness.
        """
        import numpy as np

        if self._engine == "csr":
            from repro.kernels.bfs import bfs_count_csr

            dist, count = bfs_count_csr(self._graph, s, deadline=deadline)
            out_dist = dist.astype(np.float64)
            out_dist[dist < 0] = INF
            return out_dist, count.copy()
        dist, count = bfs_count_from(self._graph, s, deadline=deadline)
        try:
            counts = np.array(count, dtype=np.int64)
        except OverflowError:
            counts = np.array(count, dtype=object)
        return np.array(dist, dtype=np.float64), counts

    def __repr__(self):
        return f"BFSCountingOracle(n={self._graph.n}, engine={self._engine!r})"


def spc_all_pairs(graph, engine="python"):
    """All-pairs ``(dist, count)`` matrices by n counting BFS runs.

    Returns ``(dist, count)`` as lists of per-source lists. The canonical
    ground truth for property tests; O(n·m) time, O(n²) space.
    ``engine="csr"`` runs each source through
    :func:`repro.kernels.bfs.bfs_count_csr` and converts back to the
    scalar convention (``inf`` distance, count 0 for unreachable pairs).
    """
    dist_rows = []
    count_rows = []
    if engine == "csr":
        from repro.kernels.bfs import bfs_count_csr

        for source in graph.vertices():
            dist, count = bfs_count_csr(graph, source)
            dist_rows.append([d if d >= 0 else INF for d in dist.tolist()])
            count_rows.append(count.tolist())
        return dist_rows, count_rows
    if engine != "python":
        raise ValueError(f"unknown BFS engine {engine!r}; "
                         "expected 'python' or 'csr'")
    for source in graph.vertices():
        dist, count = bfs_count_from(graph, source)
        dist_rows.append(dist)
        count_rows.append(count)
    return dist_rows, count_rows
