"""Online BFS counting — the paper's query-time baseline (Table 3).

No index: every query runs a counting BFS from the source. Also provides
the all-pairs ground truth the test suite validates every labeling
against. Both the oracle and the all-pairs sweep can run on the scalar
deque BFS (``engine="python"``, arbitrary-precision counts) or on the
vectorized CSR kernels of :mod:`repro.kernels.bfs` (``engine="csr"``,
int64 counts, one full level-synchronous sweep per source).
"""

from repro.graph.traversal import bfs_count_from, spc_bfs

INF = float("inf")


def _spc_csr(graph, s, t):
    """``(distance, count)`` via one vectorized full sweep from ``s``."""
    from repro.kernels.bfs import bfs_count_csr

    if s == t:
        return 0, 1
    dist, count = bfs_count_csr(graph, s)
    if count[t]:
        return int(dist[t]), int(count[t])
    return INF, 0


class BFSCountingOracle:
    """Adapter giving online BFS the same query surface as the indexes.

    ``count`` / ``distance`` / ``count_with_distance`` each run one BFS;
    there is no construction cost (the paper's "BFS Time" column measures
    exactly this per-query work). The scalar engine stops early at the
    target's level; the csr engine always sweeps the whole component but
    expands each level in a handful of numpy passes.
    """

    def __init__(self, graph, engine="python"):
        if engine not in ("python", "csr"):
            raise ValueError(f"unknown BFS engine {engine!r}; "
                             "expected 'python' or 'csr'")
        self._graph = graph
        self._engine = engine

    @classmethod
    def build(cls, graph, engine="python", **_ignored):
        return cls(graph, engine=engine)

    def count(self, s, t):
        return self.count_with_distance(s, t)[1]

    def distance(self, s, t):
        return self.count_with_distance(s, t)[0]

    def count_with_distance(self, s, t):
        if self._engine == "csr":
            return _spc_csr(self._graph, s, t)
        return spc_bfs(self._graph, s, t)

    def __repr__(self):
        return f"BFSCountingOracle(n={self._graph.n}, engine={self._engine!r})"


def spc_all_pairs(graph, engine="python"):
    """All-pairs ``(dist, count)`` matrices by n counting BFS runs.

    Returns ``(dist, count)`` as lists of per-source lists. The canonical
    ground truth for property tests; O(n·m) time, O(n²) space.
    ``engine="csr"`` runs each source through
    :func:`repro.kernels.bfs.bfs_count_csr` and converts back to the
    scalar convention (``inf`` distance, count 0 for unreachable pairs).
    """
    dist_rows = []
    count_rows = []
    if engine == "csr":
        from repro.kernels.bfs import bfs_count_csr

        for source in graph.vertices():
            dist, count = bfs_count_csr(graph, source)
            dist_rows.append([d if d >= 0 else INF for d in dist.tolist()])
            count_rows.append(count.tolist())
        return dist_rows, count_rows
    if engine != "python":
        raise ValueError(f"unknown BFS engine {engine!r}; "
                         "expected 'python' or 'csr'")
    for source in graph.vertices():
        dist, count = bfs_count_from(graph, source)
        dist_rows.append(dist)
        count_rows.append(count)
    return dist_rows, count_rows
