"""Baselines: online searches, distance-only PLL, PL-SPC, count matrices."""

from repro.baselines.apsp_matrix import CountMatrixOracle
from repro.baselines.bfs_counting import BFSCountingOracle, spc_all_pairs
from repro.baselines.bidirectional import bidirectional_spc
from repro.baselines.pl_spc import PLSPCIndex
from repro.baselines.pll import PrunedLandmarkLabeling

__all__ = [
    "BFSCountingOracle",
    "spc_all_pairs",
    "bidirectional_spc",
    "PrunedLandmarkLabeling",
    "PLSPCIndex",
    "CountMatrixOracle",
]
