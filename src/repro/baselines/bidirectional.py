"""Bidirectional BFS shortest-path counting.

A stronger online baseline than unidirectional BFS: balls grow from both
endpoints, the smaller frontier expands first, and counting happens across
a fixed cut once the balls are guaranteed to overlap on every shortest
path. Counting across a *vertex cut at a fixed source distance* (rather
than over every doubly-labelled vertex) is what keeps each path counted
exactly once.
"""

from collections import deque

INF = float("inf")


def bidirectional_spc(graph, s, t):
    """``(distance, count)`` between ``s`` and ``t`` by bidirectional BFS."""
    if s == t:
        return 0, 1
    n = graph.n
    dist_s = [INF] * n
    dist_t = [INF] * n
    count_s = [0] * n
    count_t = [0] * n
    dist_s[s] = dist_t[t] = 0
    count_s[s] = count_t[t] = 1
    frontier_s = [s]
    frontier_t = [t]
    level_s = level_t = 0
    meet = INF

    def expand(frontier, dist, count, other_dist, level):
        """Grow one side by a level; report the best meeting distance seen."""
        nxt = []
        best = INF
        for v in frontier:
            cv = count[v]
            for w in graph.neighbors(v):
                dw = dist[w]
                if dw is INF:
                    dist[w] = level + 1
                    count[w] = cv
                    nxt.append(w)
                    if other_dist[w] is not INF:
                        best = min(best, level + 1 + other_dist[w])
                elif dw == level + 1:
                    count[w] += cv
        return nxt, best

    while meet > level_s + level_t:
        if not frontier_s and not frontier_t:
            return INF, 0
        # Expand the smaller live frontier (classic balancing heuristic).
        if frontier_s and (not frontier_t or len(frontier_s) <= len(frontier_t)):
            frontier_s, best = expand(frontier_s, dist_s, count_s, dist_t, level_s)
            level_s += 1
        else:
            frontier_t, best = expand(frontier_t, dist_t, count_t, dist_s, level_t)
            level_t += 1
        meet = min(meet, best)

    # Count across the cut at source-distance a*: every shortest path has
    # exactly one vertex there, and both sides' counts are final at it.
    a_star = max(0, meet - level_t)
    total = 0
    queue = deque([s])
    seen = [False] * n
    seen[s] = True
    while queue:
        v = queue.popleft()
        dv = dist_s[v]
        if dv == a_star:
            if dist_t[v] is not INF and dv + dist_t[v] == meet:
                total += count_s[v] * count_t[v]
            continue
        for w in graph.neighbors(v):
            if not seen[w] and dist_s[w] == dv + 1:
                seen[w] = True
                queue.append(w)
    if total == 0:
        return INF, 0
    return meet, total
