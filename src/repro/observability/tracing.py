"""Lightweight wall-time tracing spans with nesting.

A :class:`Tracer` records a tree of :class:`Span` objects per thread:
``with tracer.span("hp_spc.push", rank=r):`` opens a child of whatever
span is active on the calling thread and closes it with its wall-clock
duration on exit. Hot loops that cannot afford a context manager use the
explicit pair ``span = tracer.begin(...)`` / ``tracer.end(span)`` behind
an ``if tracer.enabled`` guard, which makes the disabled cost one branch.

Span names are dotted ``subsystem.operation`` paths (the conventions are
catalogued in ``docs/OBSERVABILITY.md``): ``build.csr`` > ``hp_spc.push``,
``io.save``, ``serve.request`` and so on. Exports:

* :meth:`Tracer.to_json` — nested ``{name, start, seconds, attrs,
  children}`` dicts (one per root), written by the CLI ``--trace FILE``
  flag;
* :meth:`Tracer.format_tree` — a flamegraph-style text tree where
  repeated siblings (10 000 ``hp_spc.push`` spans...) collapse into one
  aggregate line with call count, total and max duration.

The process default is a disabled tracer (no allocation, no clock
reads); install one with :func:`enable_tracing` or :func:`set_tracer`.
A ``max_spans`` cap bounds memory on long runs — spans beyond it are
counted in ``dropped`` instead of recorded.
"""

import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "scoped_tracer",
]


class Span:
    """One timed operation: name, start, duration, attributes, children."""

    __slots__ = ("name", "attrs", "start", "seconds", "children", "_parent")

    def __init__(self, name, attrs, start, parent=None):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.seconds = None  # filled by Tracer.end
        self.children = []
        self._parent = parent

    def as_dict(self):
        """JSON-able nested form (the ``--trace FILE`` payload)."""
        out = {"name": self.name, "start": self.start, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def __repr__(self):
        seconds = "open" if self.seconds is None else f"{self.seconds:.6f}s"
        return f"Span({self.name}, {seconds}, children={len(self.children)})"


class _SpanContext:
    """Context-manager shim closing ``span`` on ``tracer`` at exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._tracer.end(self._span)
        return False


class _NullContext:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects a per-thread tree of spans; thread-safe at the root list.

    Each thread keeps its own open-span stack (a root opened on thread A
    never adopts a child from thread B), while completed root spans land
    in one shared list for export.
    """

    def __init__(self, enabled=True, max_spans=200_000, clock=time.perf_counter):
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._clock = clock
        self._count = 0
        self._lock = threading.Lock()
        self._roots = []
        self._local = threading.local()

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name, **attrs):
        """Open a span as a child of the thread's current span.

        Returns the open :class:`Span` (pass it to :meth:`end`), or
        ``None`` when the tracer is disabled or the ``max_spans`` cap is
        hit — :meth:`end` accepts ``None``, so callers never branch.
        """
        if not self.enabled:
            return None
        with self._lock:
            if self._count >= self.max_spans:
                self.dropped += 1
                return None
            self._count += 1
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, attrs, self._clock(), parent=parent)
        stack.append(span)
        return span

    def end(self, span):
        """Close ``span``: record its duration and attach it to the tree."""
        if span is None:
            return
        span.seconds = self._clock() - span.start
        stack = self._stack()
        # Close any children left open by an exception unwinding past them
        # (or never ended at all) and attach them to their parent so they
        # still show up in the exported tree.
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.seconds is None:
                dangling.seconds = self._clock() - dangling.start
                if dangling._parent is not None:
                    dangling._parent.children.append(dangling)
        if stack and stack[-1] is span:
            stack.pop()
        if span._parent is not None:
            span._parent.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    def span(self, name, **attrs):
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, self.begin(name, **attrs))

    def roots(self):
        """Completed top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def span_count(self):
        """Number of spans recorded (dropped ones excluded)."""
        return self._count

    def clear(self):
        """Forget all recorded spans (the per-thread stacks stay usable)."""
        with self._lock:
            self._roots = []
            self._count = 0
            self.dropped = 0

    # -- export ------------------------------------------------------------

    def to_json(self):
        """``{"spans": [...], "dropped": n}`` with nested span dicts."""
        return {
            "spans": [root.as_dict() for root in self.roots()],
            "dropped": self.dropped,
        }

    def format_tree(self, max_depth=6, min_seconds=0.0):
        """Flamegraph-style text tree, repeated siblings aggregated.

        Sibling spans sharing a name collapse into one line carrying the
        call count, total and max duration — a 10 000-push build reads as
        one ``hp_spc.push`` line, not 10 000. ``min_seconds`` hides
        aggregates whose total falls below it.
        """
        lines = []

        def emit(spans, depth):
            if depth >= max_depth or not spans:
                return
            groups = {}
            for span in spans:
                groups.setdefault(span.name, []).append(span)
            for name, group in groups.items():
                total = sum(s.seconds or 0.0 for s in group)
                if total < min_seconds:
                    continue
                indent = "  " * depth
                if len(group) == 1:
                    attrs = "".join(
                        f" {k}={v}" for k, v in group[0].attrs.items()
                    )
                    lines.append(f"{indent}{name}{attrs}  {total:.6f}s")
                else:
                    worst = max(s.seconds or 0.0 for s in group)
                    lines.append(
                        f"{indent}{name} x{len(group)}  total={total:.6f}s "
                        f"max={worst:.6f}s"
                    )
                emit([c for s in group for c in s.children], depth + 1)

        emit(self.roots(), 0)
        if self.dropped:
            lines.append(f"({self.dropped} span(s) dropped past the "
                         f"{self.max_spans}-span cap)")
        return "\n".join(lines)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, spans={self._count}, dropped={self.dropped})"


class _NullTracer(Tracer):
    """The process default: records nothing, allocates nothing per call."""

    def __init__(self):
        super().__init__(enabled=False)

    def begin(self, name, **attrs):
        """Always ``None`` (disabled)."""
        return None

    def end(self, span):
        """No-op (disabled)."""

    def span(self, name, **attrs):
        """Always the shared no-op context manager (disabled)."""
        return _NULL_CONTEXT


# -- process-global tracer -------------------------------------------------

_tracer = _NullTracer()
_tracer_lock = threading.Lock()


def get_tracer():
    """The process-global tracer (a disabled one by default)."""
    return _tracer


def set_tracer(tracer):
    """Install ``tracer`` as the process global; returns the old one."""
    global _tracer
    with _tracer_lock:
        previous = _tracer
        _tracer = tracer
    return previous


def enable_tracing(max_spans=200_000):
    """Install and return a fresh enabled :class:`Tracer`."""
    tracer = Tracer(enabled=True, max_spans=max_spans)
    set_tracer(tracer)
    return tracer


def disable_tracing():
    """Restore the disabled default; returns the previous tracer."""
    return set_tracer(_NullTracer())


class scoped_tracer:
    """Context manager installing ``tracer`` for the ``with`` body."""

    def __init__(self, tracer):
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb):
        set_tracer(self._previous)
        return False
