"""Structured event logging with a pluggable sink.

Metrics aggregate; events narrate. An :class:`EventLog` records discrete,
low-rate happenings — ``index.reload``, ``breaker.open``,
``build.checkpoint`` — as flat ``{"event": name, "seq": n, **fields}``
dicts. Every emit goes to the configured *sink* (any callable taking the
dict); the default sink is an in-memory ring buffer readable via
:meth:`EventLog.events`, and :class:`JsonLinesSink` writes one JSON
object per line to a stream for offline ingestion.

Like the metrics registry, the process default is disabled: ``emit`` on
a disabled log is a single branch. Enable with :func:`enable_events` or
install a custom log with :func:`set_event_log`. Sinks must never raise
into the instrumented path — exceptions from a sink are swallowed and
counted in ``sink_errors``.
"""

import collections
import json
import threading

__all__ = [
    "EventLog",
    "JsonLinesSink",
    "get_event_log",
    "set_event_log",
    "enable_events",
    "disable_events",
    "scoped_event_log",
]


class JsonLinesSink:
    """Sink writing one JSON object per line to ``stream``."""

    def __init__(self, stream):
        self._stream = stream
        self._lock = threading.Lock()

    def __call__(self, event):
        """Serialize ``event`` (``default=str`` for exotic fields)."""
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")


class EventLog:
    """Ordered structured-event recorder with a pluggable sink.

    Parameters
    ----------
    sink:
        Callable invoked with each event dict; ``None`` keeps events only
        in the ring buffer.
    capacity:
        Ring-buffer size for :meth:`events` (oldest dropped first).
    enabled:
        Disabled logs make ``emit`` a no-op branch.
    """

    def __init__(self, sink=None, capacity=1024, enabled=True):
        self.enabled = enabled
        self.sink = sink
        self.sink_errors = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._buffer = collections.deque(maxlen=capacity)

    def emit(self, event, **fields):
        """Record one event; returns the event dict (``None`` if disabled)."""
        if not self.enabled:
            return None
        with self._lock:
            self._seq += 1
            record = {"event": event, "seq": self._seq, **fields}
            self._buffer.append(record)
        sink = self.sink
        if sink is not None:
            try:
                sink(record)
            except Exception:  # noqa: BLE001 - a sink must never break the caller
                with self._lock:
                    self.sink_errors += 1
        return record

    def events(self, name=None):
        """Buffered events (newest last), optionally filtered by name."""
        with self._lock:
            records = list(self._buffer)
        if name is None:
            return records
        return [record for record in records if record["event"] == name]

    def clear(self):
        """Drop the buffer (sequence numbers keep counting)."""
        with self._lock:
            self._buffer.clear()

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"EventLog({state}, buffered={len(self._buffer)}, seq={self._seq})"


# -- process-global log ----------------------------------------------------

_event_log = EventLog(enabled=False)
_event_lock = threading.Lock()


def get_event_log():
    """The process-global event log (a disabled one by default)."""
    return _event_log


def set_event_log(log):
    """Install ``log`` as the process global; returns the old one."""
    global _event_log
    with _event_lock:
        previous = _event_log
        _event_log = log
    return previous


def enable_events(sink=None, capacity=1024):
    """Install and return a fresh enabled :class:`EventLog`."""
    log = EventLog(sink=sink, capacity=capacity, enabled=True)
    set_event_log(log)
    return log


def disable_events():
    """Restore the disabled default; returns the previous log."""
    return set_event_log(EventLog(enabled=False))


class scoped_event_log:
    """Context manager installing ``log`` for the ``with`` body."""

    def __init__(self, log):
        self._log = log
        self._previous = None

    def __enter__(self):
        self._previous = set_event_log(self._log)
        return self._log

    def __exit__(self, exc_type, exc, tb):
        set_event_log(self._previous)
        return False
