"""Declarative catalog of every metric the library registers.

The instrumented modules create metrics lazily at their call sites; this
module is the single authoritative list of what can exist — name, type,
label names and meaning. Three consumers keep it honest:

* ``tools/gen_api_docs.py`` renders :func:`catalog_table` into
  ``docs/METRICS.md`` and fails CI when that file is stale;
* ``tools/ci_observability_smoke.py`` exercises build/query/serving and
  fails when a registered family is missing from the catalog (or a
  required catalog entry never materialised);
* the unit suite cross-checks both directions on a small run.

Keep the list alphabetical by metric name; one :class:`MetricSpec` per
family (label *values* are free-form, label *names* are part of the
contract).
"""

from collections import namedtuple

from repro.observability.metrics import MetricsRegistry

__all__ = ["MetricSpec", "METRICS", "apply_help", "catalog_table",
           "register_all", "missing_from_catalog", "spec_for"]

#: One metric family: ``kind`` is ``counter``/``gauge``/``histogram``,
#: ``labels`` the tuple of label *names* every instance carries.
MetricSpec = namedtuple("MetricSpec", ["name", "kind", "labels", "help"])

METRICS = (
    MetricSpec(
        "spc_batch_query_seconds", "histogram", (),
        "Wall time of one vectorized batch-query call "
        "(count_many_arrays), whatever its batch size.",
    ),
    MetricSpec(
        "spc_breaker_short_circuits_total", "counter", (),
        "Fallback attempts rejected fast because the circuit breaker "
        "was open (or half-open past its probe budget).",
    ),
    MetricSpec(
        "spc_breaker_transitions_total", "counter", ("to",),
        "Circuit-breaker state transitions, labelled by the state "
        "entered (open, half_open, closed).",
    ),
    MetricSpec(
        "spc_build_batch_roots", "histogram", (),
        "Roots swept together by each rank-batched frontier pass — how "
        "much same-rank parallelism the batched engine actually found.",
    ),
    MetricSpec(
        "spc_build_batch_seconds", "histogram", (),
        "Wall time of one rank batch in the batched engine (shared "
        "frontier sweep plus its in-order merges).",
    ),
    MetricSpec(
        "spc_build_batches_total", "counter", (),
        "Rank batches completed by the batched construction engine.",
    ),
    MetricSpec(
        "spc_build_entries_per_push", "histogram", ("engine",),
        "Label entries emitted by each hub push — the per-push label "
        "growth distribution (root self-entries excluded, matching "
        "BuildStats.label_entries).",
    ),
    MetricSpec(
        "spc_build_label_entries_total", "counter", ("engine",),
        "Label entries emitted by index construction, including "
        "non-canonical entries.",
    ),
    MetricSpec(
        "spc_build_push_seconds", "histogram", ("engine",),
        "Wall time of each hub push (the rank-restricted BFS plus its "
        "pruning joins) — stragglers show up in the top buckets.",
    ),
    MetricSpec(
        "spc_build_pushes_total", "counter", ("engine",),
        "Hub pushes completed by index construction.",
    ),
    MetricSpec(
        "spc_build_resumed_pushes_total", "counter", ("engine",),
        "Pushes skipped on a checkpoint resume instead of recomputed.",
    ),
    MetricSpec(
        "spc_build_seconds", "histogram", ("engine",),
        "Whole-build wall time per construction run.",
    ),
    MetricSpec(
        "spc_build_sequential_fallbacks_total", "counter", (),
        "Parallel builds that fell back to the sequential engine after "
        "their worker pool kept failing.",
    ),
    MetricSpec(
        "spc_build_worker_failures_total", "counter", (),
        "Parallel worker block tasks that raised.",
    ),
    MetricSpec(
        "spc_build_worker_retries_total", "counter", (),
        "Parallel worker block tasks resubmitted after a failure or "
        "timeout.",
    ),
    MetricSpec(
        "spc_build_worker_timeouts_total", "counter", (),
        "Parallel worker block tasks that exceeded their task timeout.",
    ),
    MetricSpec(
        "spc_checkpoint_saves_total", "counter", (),
        "Build checkpoints persisted (rank-watermark saves).",
    ),
    MetricSpec(
        "spc_checkpoint_seconds", "histogram", ("op",),
        "Wall time of checkpoint I/O, labelled save or load.",
    ),
    MetricSpec(
        "spc_cluster_batch_seconds", "histogram", ("shard",),
        "Router-observed round-trip of one worker batch (send to reply), "
        "labelled by the shard that served it.",
    ),
    MetricSpec(
        "spc_cluster_batch_size", "histogram", (),
        "Pair requests coalesced into one worker round-trip — how much "
        "amortisation the batch window actually bought.",
    ),
    MetricSpec(
        "spc_cluster_batches_total", "counter", ("shard",),
        "Worker batches completed (pair batches and scatter subs), "
        "labelled by shard.",
    ),
    MetricSpec(
        "spc_cluster_degraded_requests_total", "counter", ("shard",),
        "Requests answered off their home shard (peer adoption or BFS "
        "fallback) while that shard was down or respawning, labelled by "
        "the degraded home shard.",
    ),
    MetricSpec(
        "spc_cluster_drains_total", "counter", ("shard",),
        "Graceful worker drains completed (stop admitting, flush "
        "in-flight, swap) — rolling restarts count one per worker.",
    ),
    MetricSpec(
        "spc_cluster_gather_retries_total", "counter", (),
        "Scatter-gather responses discarded and retried whole because "
        "their sub-replies straddled a reload generation swap.",
    ),
    MetricSpec(
        "spc_cluster_generation", "gauge", (),
        "Lowest index generation any live cluster worker is serving "
        "(all workers agree once a rolling reload completes).",
    ),
    MetricSpec(
        "spc_cluster_hedge_wins_total", "counter", (),
        "Hedged duplicates that answered before their primary — tail "
        "latency the sibling replica actually absorbed.",
    ),
    MetricSpec(
        "spc_cluster_hedges_total", "counter", (),
        "Duplicate sub-requests dispatched to a sibling replica because "
        "the primary exceeded its hedge delay.",
    ),
    MetricSpec(
        "spc_cluster_inflight_requests", "gauge", (),
        "Requests admitted to the cluster router and not yet terminal.",
    ),
    MetricSpec(
        "spc_cluster_reloads_total", "counter", ("outcome",),
        "Per-worker arena remaps during rolling reloads, labelled "
        "success or failure (a failed remap keeps the old arena).",
    ),
    MetricSpec(
        "spc_cluster_request_outcomes_total", "counter", ("status",),
        "Cluster requests by terminal status (index, shed, circuit_open, "
        "deadline, invalid, error).",
    ),
    MetricSpec(
        "spc_cluster_request_seconds", "histogram", (),
        "End-to-end latency of one cluster request, admission to "
        "terminal result (includes batching wait).",
    ),
    MetricSpec(
        "spc_cluster_requests_total", "counter", (),
        "Requests entering the cluster front door, whatever their fate.",
    ),
    MetricSpec(
        "spc_cluster_respawn_seconds", "histogram", (),
        "Worker death to replacement HELLO (re-serving its shard), "
        "including the supervisor's backoff wait.",
    ),
    MetricSpec(
        "spc_cluster_respawns_total", "counter", ("shard",),
        "Worker processes respawned by the router's supervisor, by "
        "shard.",
    ),
    MetricSpec(
        "spc_cluster_stalls_total", "counter", ("shard",),
        "Workers declared stalled (missed heartbeat or batch overran "
        "its stall allowance) and SIGKILLed for respawn, by shard.",
    ),
    MetricSpec(
        "spc_cluster_worker_failures_total", "counter", ("shard",),
        "Worker processes lost (died or unreachable pipe), by shard.",
    ),
    MetricSpec(
        "spc_cluster_workers", "gauge", ("shard",),
        "Live worker processes per shard.",
    ),
    MetricSpec(
        "spc_count_overflow_escapes_total", "counter", (),
        "Label columns widened from uint32 to int64 because a "
        "shortest-path count exceeded 2^32-1 — exactness kept, "
        "memory frugality given up.",
    ),
    MetricSpec(
        "spc_dynamic_mutations_total", "counter", ("op",),
        "Edge mutations absorbed by the dynamic facade, labelled insert "
        "or delete (retractions count as the retracting op).",
    ),
    MetricSpec(
        "spc_dynamic_overlay_fallbacks_total", "counter", (),
        "Dynamic-facade queries answered by an exact online BFS because "
        "an overlay term crossed a deleted edge (labels unsound for that "
        "pair until the next rebuild).",
    ),
    MetricSpec(
        "spc_flat_freeze_seconds", "histogram", (),
        "Wall time of freezing a LabelSet into FlatLabels CSR columns.",
    ),
    MetricSpec(
        "spc_index_events_total", "counter", ("kind",),
        "ResilientSPCIndex lifecycle tallies: index_queries, "
        "fallback_queries, load_failures, verify_failures, "
        "query_failures, stale_detections, graph_swaps.",
    ),
    MetricSpec(
        "spc_index_generation", "gauge", (),
        "Monotonic count of successful index (re)loads on the serving "
        "path; bumps make hot swaps visible.",
    ),
    MetricSpec(
        "spc_inflight_requests", "gauge", (),
        "Requests currently executing inside SPCService.",
    ),
    MetricSpec(
        "spc_io_bytes_total", "counter", ("op",),
        "Bytes moved by index (de)serialization, labelled save or load.",
    ),
    MetricSpec(
        "spc_io_seconds", "histogram", ("op",),
        "Wall time of index (de)serialization, labelled save or load.",
    ),
    MetricSpec(
        "spc_label_avg_size", "gauge", ("engine",),
        "Average |L(v)| of the most recently built labeling — the "
        "paper's per-vertex label-size statistic as a live metric.",
    ),
    MetricSpec(
        "spc_label_mmap_bytes_total", "counter", (),
        "Bytes of SPCF flat label files opened memory-mapped instead of "
        "loaded into RAM.",
    ),
    MetricSpec(
        "spc_label_store_bytes_total", "counter", ("backend",),
        "Bytes appended to the streaming label store during batched "
        "construction, labelled ram or spill.",
    ),
    MetricSpec(
        "spc_label_store_finalize_seconds", "histogram", (),
        "Wall time of the label store's counting-sort finalize (emission "
        "chunks into final CSR columns, RAM or memory-mapped).",
    ),
    MetricSpec(
        "spc_label_total_entries", "gauge", ("engine",),
        "Total label entries of the most recently built labeling "
        "(the labeling size in the paper's sense).",
    ),
    MetricSpec(
        "spc_maintenance_pending_mutations", "gauge", (),
        "Edge mutations absorbed but not yet covered by a published "
        "rebuild (the overlay patch size rebuild-behind must bound).",
    ),
    MetricSpec(
        "spc_maintenance_publishes_total", "counter", (),
        "Finished background rebuilds adopted and published for serving "
        "(journal prefix folded, tail replayed).",
    ),
    MetricSpec(
        "spc_maintenance_rebuild_retries_total", "counter", (),
        "Background rebuild attempts resubmitted after a worker crash, "
        "typed failure or timeout kill.",
    ),
    MetricSpec(
        "spc_maintenance_rebuild_seconds", "histogram", (),
        "Wall time of one successful background rebuild cycle, worker "
        "fork to atomic publish (retries included).",
    ),
    MetricSpec(
        "spc_maintenance_rebuilds_total", "counter", ("outcome",),
        "Background rebuild attempts by outcome: success, timeout "
        "(killed past task_timeout), crash (died unreported) or error "
        "(typed worker failure).",
    ),
    MetricSpec(
        "spc_maintenance_slo_breaches_total", "counter", ("kind",),
        "Staleness-SLO excursions (counted once per excursion), labelled "
        "staleness (seconds bound) or pending (mutation-count bound).",
    ),
    MetricSpec(
        "spc_maintenance_staleness_seconds", "gauge", (),
        "Age of the oldest mutation not yet covered by a published "
        "rebuild; 0 while the published index matches the logical graph.",
    ),
    MetricSpec(
        "spc_queries_total", "counter", ("engine", "kind"),
        "Queries answered, labelled by engine (flat) and kind (pair, "
        "single_source, set_to_set).",
    ),
    MetricSpec(
        "spc_query_backends_chosen_total", "counter", ("backend",),
        "Execution backends chosen by the query planner, one increment "
        "per plan node: flat, bfs, matrix, oracle, sampled+<backend>, "
        "brandes or batch.",
    ),
    MetricSpec(
        "spc_query_cache_hits_total", "counter", (),
        "Compiled-query result-cache hits (same index generation and "
        "backend line-up).",
    ),
    MetricSpec(
        "spc_query_cache_misses_total", "counter", (),
        "Compiled-query result-cache misses, including every lookup "
        "after a hot reload or staleness demotion changed the cache "
        "token.",
    ),
    MetricSpec(
        "spc_query_plans_total", "counter", ("operator",),
        "Query plans produced, labelled by the root operator (count, "
        "distance, exists, single_source, set_to_set, relevance, "
        "topk_betweenness, batch).",
    ),
    MetricSpec(
        "spc_query_scan_chunks_total", "counter", (),
        "Label-scan chunks executed by the batched engine (one per "
        "distinct-source scatter group).",
    ),
    MetricSpec(
        "spc_queued_requests", "gauge", (),
        "Requests waiting in SPCService's bounded admission queue.",
    ),
    MetricSpec(
        "spc_reloads_total", "counter", ("outcome",),
        "Hot index reload attempts, labelled success or failure.",
    ),
    MetricSpec(
        "spc_request_outcomes_total", "counter", ("status",),
        "Terminal request outcomes: index, degraded, shed, circuit_open, "
        "deadline, invalid, error.",
    ),
    MetricSpec(
        "spc_request_seconds", "histogram", (),
        "SPCService request execution latency (slot held; admission "
        "wait excluded).",
    ),
    MetricSpec(
        "spc_requests_total", "counter", (),
        "Requests submitted to SPCService, whatever their outcome.",
    ),
    MetricSpec(
        "spc_serving_degraded", "gauge", (),
        "1 while the resilient index answers from the BFS fallback, "
        "0 while it serves from labels.",
    ),
)

_BY_NAME = {spec.name: spec for spec in METRICS}


def spec_for(name):
    """The :class:`MetricSpec` for ``name``, or ``None`` if uncatalogued."""
    return _BY_NAME.get(name)


def register_all(registry=None):
    """Materialise every catalogued family into ``registry`` (zero-valued).

    Labelled families are instantiated with the placeholder value
    ``"..."`` per label so the family metadata (kind, help, label names)
    is live without faking observations. Returns the registry — callers
    wanting "the full catalog as a live registry" (the doc generator)
    pass a fresh enabled one.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for spec in METRICS:
        labels = {label: "..." for label in spec.labels}
        getattr(registry, spec.kind)(spec.name, help=spec.help, **labels)
    return registry


def apply_help(registry):
    """Backfill catalog help text onto ``registry``'s known families.

    Hot-path call sites register metrics without ``help=`` to stay lean;
    calling this before rendering restores the ``# HELP`` lines for every
    catalogued family the workload actually touched. Returns the registry.
    """
    for spec in METRICS:
        registry.describe(spec.name, spec.help)
    return registry


def missing_from_catalog(registry):
    """Names of families registered in ``registry`` but absent here."""
    return sorted(set(registry.families()) - set(_BY_NAME))


def catalog_table():
    """The catalog as a GitHub-markdown table (rendered into docs)."""
    lines = [
        "| Metric | Type | Labels | Meaning |",
        "|---|---|---|---|",
    ]
    for spec in METRICS:
        labels = ", ".join(f"`{label}`" for label in spec.labels) or "—"
        lines.append(
            f"| `{spec.name}` | {spec.kind} | {labels} | {spec.help} |"
        )
    return "\n".join(lines)
