"""Dependency-free metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the process-wide sink every instrumented
module writes into. Metrics are identified by ``(name, labels)`` —
``registry.counter("spc_requests_total", status="shed")`` returns the
same :class:`Counter` on every call — and render into either the
Prometheus text exposition format (:func:`render_prometheus`) or a plain
JSON-able dict (:func:`snapshot`), so bench payloads and dashboards read
the same numbers.

**Zero overhead when disabled.** The process default is a *disabled*
registry: its ``counter``/``gauge``/``histogram`` constructors hand back
one shared no-op metric whose mutators do nothing, so instrumented hot
paths pay one attribute lookup and a no-op call — and the hottest loops
additionally guard their ``perf_counter`` reads behind
``registry.enabled``, making the disabled cost a single branch. Call
:func:`enable_metrics` (or install a registry with
:func:`set_registry`) to start recording; a bit-identity test asserts
labels are unchanged either way, and a CI smoke bounds the overhead.

Thread safety: every metric guards its state with a lock, and the
registry guards its family table, so serving threads and reload threads
can bump concurrently.
"""

import bisect
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "scoped_registry",
    "render_prometheus",
    "snapshot",
]

#: Default histogram boundaries (seconds): 100 µs .. ~100 s, roughly
#: geometric — wide enough for query latencies and build pushes alike.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 100.0,
)

#: Default boundaries for size-like observations (entries, bytes, chunks).
DEFAULT_SIZE_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    100000, 1000000,
)


class Counter:
    """Monotonically increasing counter (Prometheus ``counter``)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "counter"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        """Current total."""
        return self._value

    def as_dict(self):
        """JSON-able snapshot of this counter."""
        return {"value": self._value}

    def __repr__(self):
        return f"Counter({self.name}{dict(self.labels)}={self._value})"


class Gauge:
    """Point-in-time value that can go up and down (Prometheus ``gauge``)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        """Replace the gauge's value."""
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self):
        """Current value."""
        return self._value

    def as_dict(self):
        """JSON-able snapshot of this gauge."""
        return {"value": self._value}

    def __repr__(self):
        return f"Gauge({self.name}{dict(self.labels)}={self._value})"


class Histogram:
    """Fixed-boundary histogram with cumulative bucket counts.

    ``buckets`` is an increasing sequence of upper bounds; an implicit
    ``+Inf`` bucket catches everything beyond the last bound (Prometheus
    ``histogram`` semantics: ``bucket[i]`` counts observations ``<=
    buckets[i]``, cumulatively in the rendered output). ``merge`` folds
    another histogram with identical boundaries into this one — how
    worker-process or per-shard observations aggregate.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    kind = "histogram"

    def __init__(self, name, buckets=DEFAULT_LATENCY_BUCKETS, labels=()):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must increase: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value):
        """Record one observation."""
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def merge(self, other):
        """Fold ``other`` (identical boundaries) into this histogram."""
        if not isinstance(other, Histogram) or other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {getattr(other, 'name', other)!r} "
                f"into {self.name!r}: bucket boundaries differ"
            )
        with other._lock:
            counts = list(other._counts)
            total, count = other._sum, other._count
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += total
            self._count += count

    @property
    def count(self):
        """Total number of observations."""
        return self._count

    @property
    def sum(self):
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self):
        """Non-cumulative per-bucket counts (last entry is ``+Inf``)."""
        with self._lock:
            return list(self._counts)

    def cumulative_counts(self):
        """Cumulative counts as rendered by the Prometheus format."""
        total = 0
        out = []
        for c in self.bucket_counts():
            total += c
            out.append(total)
        return out

    def quantile(self, q):
        """Bucket-resolution quantile estimate (upper bound of the bucket).

        Returns 0.0 with no observations and ``inf`` when the quantile
        lands in the ``+Inf`` bucket — a coarse but dependency-free p50/p95
        for operator summaries; exact percentiles belong to the bench
        harness.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        counts = self.bucket_counts()
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for i, c in enumerate(counts):
            running += c
            if running >= rank and c:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")

    def as_dict(self):
        """JSON-able snapshot: boundaries, raw counts, sum and count."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def __repr__(self):
        return (f"Histogram({self.name}{dict(self.labels)}: "
                f"count={self._count}, sum={self._sum:.6f})")


class _NoopMetric:
    """Shared do-nothing metric handed out by a disabled registry."""

    __slots__ = ()

    kind = "noop"
    name = "<noop>"
    labels = ()
    buckets = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount=1):
        """No-op."""

    def dec(self, amount=1):
        """No-op."""

    def set(self, value):
        """No-op."""

    def observe(self, value):
        """No-op."""

    def merge(self, other):
        """No-op."""

    def as_dict(self):
        """Empty snapshot."""
        return {}


_NOOP = _NoopMetric()


def _label_key(labels):
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Process-wide table of named metrics.

    ``counter(name, help=..., **labels)`` (and ``gauge`` / ``histogram``)
    get-or-create the metric for that exact ``(name, labels)`` pair; the
    first call fixes the metric's type, help text and label *names*, and
    later conflicting calls raise ``ValueError`` — a typo never silently
    forks a metric family. A registry constructed with ``enabled=False``
    returns one shared no-op metric from every constructor and records
    nothing.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics = {}   # (name, label_key) -> metric
        self._families = {}  # name -> (kind, help, label_names)

    def _get(self, cls, name, help, labels, **kwargs):
        if not self.enabled:
            return _NOOP
        key = (name, _label_key(labels))
        # Lock-free hit path: dict reads are atomic under the GIL and keys
        # are never removed outside clear(). Taking the lock here puts the
        # busiest line of every instrumented hot path behind one mutex —
        # a preempted holder then convoys every serving thread.
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if metric.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}"
                    )
                return metric
            family = self._families.get(name)
            label_names = tuple(sorted(labels))
            if family is None:
                self._families[name] = (cls.kind, help, label_names)
            else:
                kind, known_help, known_labels = family
                if kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {kind}"
                    )
                if known_labels != label_names:
                    raise ValueError(
                        f"metric {name!r} uses labels {list(known_labels)}, "
                        f"got {list(label_names)}"
                    )
                if help and not known_help:
                    self._families[name] = (kind, help, known_labels)
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name, help="", **labels):
        """Get-or-create the :class:`Counter` for ``(name, labels)``."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name, help="", **labels):
        """Get-or-create the :class:`Gauge` for ``(name, labels)``."""
        return self._get(Gauge, name, help, labels)

    def histogram(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS,
                  **labels):
        """Get-or-create the :class:`Histogram` for ``(name, labels)``."""
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def describe(self, name, help):
        """Attach ``help`` text to an existing family missing one.

        No-op when the family is unknown or already documented; lets the
        metric catalog backfill help text onto registries populated by
        hot-path call sites (which skip ``help=`` to stay lean).
        """
        with self._lock:
            family = self._families.get(name)
            if family is not None and help and not family[1]:
                self._families[name] = (family[0], help, family[2])

    def families(self):
        """``{name: (kind, help, label_names)}`` for every known family."""
        with self._lock:
            return dict(self._families)

    def collect(self):
        """Metrics sorted by ``(name, labels)``, stable for rendering."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [metric for _, metric in items]

    def get(self, name, **labels):
        """The existing metric for ``(name, labels)``, or ``None``."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def sum_values(self, name):
        """Sum of a counter/gauge family's values across all label sets."""
        with self._lock:
            return sum(
                metric.value for (key_name, _), metric in self._metrics.items()
                if key_name == name and metric.kind in ("counter", "gauge")
            )

    def clear(self):
        """Drop every metric and family (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()
            self._families.clear()

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, families={len(self._families)})"


def _format_label_set(labels):
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def render_prometheus(registry=None):
    """Render every metric in the Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    lines = []
    seen_families = set()
    families = registry.families()
    for metric in registry.collect():
        name = metric.name
        if name not in seen_families:
            seen_families.add(name)
            kind, help_text, _ = families.get(name, (metric.kind, "", ()))
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
        labels = _format_label_set(metric.labels)
        if metric.kind == "histogram":
            cumulative = metric.cumulative_counts()
            for bound, total in zip(metric.buckets, cumulative):
                le = list(metric.labels) + [("le", format(bound, "g"))]
                lines.append(f"{name}_bucket{_format_label_set(le)} {total}")
            le = list(metric.labels) + [("le", "+Inf")]
            lines.append(f"{name}_bucket{_format_label_set(le)} {cumulative[-1]}")
            lines.append(f"{name}_sum{labels} {format(metric.sum, 'g')}")
            lines.append(f"{name}_count{labels} {metric.count}")
        else:
            lines.append(f"{name}{labels} {format(metric.value, 'g')}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry=None):
    """JSON-able dump: ``{name: [{labels, type, ...metric fields}]}``.

    This is the form bench payloads embed (``BENCH_*.json["metrics"]``),
    so recorded runs carry the same numbers an operator would scrape.
    """
    registry = registry if registry is not None else get_registry()
    out = {}
    for metric in registry.collect():
        entry = {"labels": dict(metric.labels), "type": metric.kind}
        entry.update(metric.as_dict())
        out.setdefault(metric.name, []).append(entry)
    return out


# -- process-global registry ----------------------------------------------

_registry = MetricsRegistry(enabled=False)
_registry_lock = threading.Lock()


def get_registry():
    """The process-global registry (a disabled no-op one by default)."""
    return _registry


def set_registry(registry):
    """Install ``registry`` as the process-global sink; returns the old one."""
    global _registry
    with _registry_lock:
        previous = _registry
        _registry = registry
    return previous


def enable_metrics():
    """Install and return a fresh enabled registry (idempotent-ish).

    If the current global registry is already enabled it is returned
    unchanged, so library entry points can call this defensively.
    """
    current = get_registry()
    if current.enabled:
        return current
    registry = MetricsRegistry(enabled=True)
    set_registry(registry)
    return registry


def disable_metrics():
    """Restore the disabled no-op default; returns the previous registry."""
    return set_registry(MetricsRegistry(enabled=False))


class scoped_registry:
    """Context manager installing ``registry`` for the ``with`` body.

    >>> with scoped_registry(MetricsRegistry()) as reg:
    ...     reg.counter("example_total").inc()
    """

    def __init__(self, registry):
        self._registry = registry
        self._previous = None

    def __enter__(self):
        self._previous = set_registry(self._registry)
        return self._registry

    def __exit__(self, exc_type, exc, tb):
        set_registry(self._previous)
        return False
