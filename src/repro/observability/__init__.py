"""Dependency-free observability: metrics, tracing spans, structured events.

Three independent instruments share one design rule — *zero overhead when
disabled*. The process-global registry, tracer and event log all start
disabled: a disabled counter increment is one attribute load and one
branch, a disabled span is a shared no-op context manager, and the hot
build/query loops additionally guard their clock reads behind
``registry.enabled`` / ``tracer.enabled`` so instrumentation costs
nothing until someone turns it on (``enable_metrics()``, CLI ``metrics``
subcommand, ``--trace FILE``).

* :mod:`repro.observability.metrics` — counters, gauges, fixed-boundary
  histograms; Prometheus text exposition and JSON snapshots.
* :mod:`repro.observability.tracing` — nested wall-time spans with JSON
  and flamegraph-style text export.
* :mod:`repro.observability.events` — low-rate structured events with a
  pluggable sink.
* :mod:`repro.observability.catalog` — the authoritative list of every
  metric family; rendered into ``docs/METRICS.md`` and checked by CI.
"""

from repro.observability.catalog import (
    METRICS,
    MetricSpec,
    apply_help,
    catalog_table,
    missing_from_catalog,
    register_all,
    spec_for,
)
from repro.observability.events import (
    EventLog,
    JsonLinesSink,
    disable_events,
    enable_events,
    get_event_log,
    scoped_event_log,
    set_event_log,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    render_prometheus,
    scoped_registry,
    set_registry,
    snapshot,
)
from repro.observability.tracing import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    scoped_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "render_prometheus",
    "snapshot",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "scoped_registry",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "scoped_tracer",
    "EventLog",
    "JsonLinesSink",
    "get_event_log",
    "set_event_log",
    "enable_events",
    "disable_events",
    "scoped_event_log",
    "MetricSpec",
    "METRICS",
    "apply_help",
    "catalog_table",
    "register_all",
    "missing_from_catalog",
    "spec_for",
]
