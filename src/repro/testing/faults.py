"""Deterministic fault injection for the chaos test-suite.

Every fault here models a concrete production failure and is fully
deterministic, so the chaos tests can assert the *exact* recovery path:

* :func:`truncate_file` / :func:`flip_bit` / :func:`corrupt_bytes` —
  on-disk damage (partial write, storage bit-rot). The checksummed v3
  loader must answer with a typed
  :class:`~repro.exceptions.SerializationError`.
* :class:`TransientIOErrors` — a flaky filesystem: the first ``failures``
  reads raise ``OSError``, then reads succeed. Loaders with ``retries``
  must recover; :class:`~repro.resilience.ResilientSPCIndex` must degrade.
* :class:`WorkerFault` — a crashing / hanging pool worker for
  :func:`~repro.parallel.builder.build_labels_parallel`'s ``_fault`` hook.
  Firing is counted in marker files so a retried block behaves on its next
  attempt — exactly the transient-failure shape supervision must absorb.
* :class:`CrashingCheckpoint` — SIGKILL between checkpoints: the save
  succeeds, then :class:`SimulatedKill` (a ``BaseException``, so no
  library ``except ReproError`` can swallow it) tears the build down.
* :class:`KillDuringRebuild` — the rebuild-behind worker process dying
  (or wedging) right after a checkpoint save, for
  :class:`~repro.dynamic.maintenance.MaintenanceController`'s ``_fault``
  hook: supervision must retry, resume from the surviving checkpoint,
  and never publish a partial index.
* :class:`SlowFallback` — a pathologically slow degraded path: every
  BFS-fallback query stalls for a fixed delay before running, so
  deadline enforcement and the serving circuit breaker can be exercised
  deterministically.
* :class:`FlappingFile` — an index file that alternates between corrupt
  and pristine states under test control, driving the hot-reload watcher
  and degradation/recovery transitions.
* :class:`StalledWorker` — a cluster worker that SIGSTOPs itself just
  before replying (a wedged-but-alive process), for
  :class:`~repro.serving.cluster.ClusterService`'s ``_fault`` hook: the
  router's hedging must cover the in-flight batch and its stall
  supervision must SIGKILL + respawn the worker.
* :class:`TornPipeWrite` — a cluster worker that dies mid-frame while
  replying (a torn pipe write): the router's frame decoder must treat
  the short read as *that worker's* death, replay its in-flight keys,
  and keep every other shard serving.
"""

import os
import pickle
import signal
import struct
import time

from repro.baselines import bfs_counting as _bfs_counting
from repro.io import serialize as _serialize
from repro.io.checkpoint import BuildCheckpoint


class SimulatedKill(BaseException):
    """Simulates the process dying mid-build (SIGKILL / power loss).

    Deliberately *not* a :class:`~repro.exceptions.ReproError` — not even
    an ``Exception`` — so no error handling inside the library can catch
    it; only the test harness does.
    """


def truncate_file(path, drop_bytes):
    """Cut the last ``drop_bytes`` bytes off ``path`` (a torn write)."""
    blob = _read(path)
    if drop_bytes <= 0 or drop_bytes > len(blob):
        raise ValueError(f"cannot drop {drop_bytes} of {len(blob)} bytes")
    _write(path, blob[: len(blob) - drop_bytes])


def flip_bit(path, byte_offset, bit=0):
    """Flip one bit of ``path`` in place (storage bit-rot)."""
    blob = bytearray(_read(path))
    blob[byte_offset] ^= 1 << bit
    _write(path, bytes(blob))


def corrupt_bytes(path, offset, replacement):
    """Overwrite ``path`` at ``offset`` with ``replacement`` bytes."""
    blob = bytearray(_read(path))
    blob[offset : offset + len(replacement)] = replacement
    _write(path, bytes(blob))


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


def _write(path, blob):
    # Plain write on purpose: faults *simulate* the non-atomic damage the
    # library's own atomic writer prevents.
    with open(path, "wb") as handle:
        handle.write(blob)


class TransientIOErrors:
    """Context manager making the next ``failures`` label-file reads raise.

    Wraps :func:`repro.io.serialize._read_bytes`, the single choke point
    every loader goes through, so both direct ``load_labels`` calls and
    :class:`~repro.resilience.ResilientSPCIndex` reloads feel the fault.
    """

    def __init__(self, failures=1, error_factory=None):
        self.failures = failures
        self.raised = 0
        self._error_factory = error_factory or (
            lambda path: OSError(5, "injected transient I/O error", str(path))
        )
        self._original = None

    def __enter__(self):
        self._original = _serialize._read_bytes

        def flaky_read(path):
            if self.raised < self.failures:
                self.raised += 1
                raise self._error_factory(path)
            return self._original(path)

        _serialize._read_bytes = flaky_read
        return self

    def __exit__(self, *exc_info):
        _serialize._read_bytes = self._original
        return False


class WorkerFault:
    """Picklable worker fault for ``build_labels_parallel(_fault=...)``.

    ``kind``:

    * ``"exception"`` — the worker raises (an ordinary task failure);
    * ``"exit"`` — the worker dies with ``os._exit`` (a hard crash: the
      pool never hears back, so only a ``task_timeout`` catches it);
    * ``"hang"`` — the worker sleeps ``hang_seconds`` (a wedged task).

    Each block in ``blocks`` fires ``times`` times, counted via exclusive
    marker-file creation in ``marker_dir`` — atomic across processes, so
    retried blocks deterministically misbehave exactly ``times`` times and
    then succeed.
    """

    def __init__(self, kind, blocks, marker_dir, times=1, hang_seconds=30.0):
        if kind not in ("exception", "exit", "hang"):
            raise ValueError(f"unknown worker fault kind {kind!r}")
        self.kind = kind
        self.blocks = tuple(blocks)
        self.marker_dir = os.fspath(marker_dir)
        self.times = times
        self.hang_seconds = hang_seconds

    def trigger(self, block_index):
        """Called by the pool worker at the start of a block task."""
        if block_index not in self.blocks:
            return
        for attempt in range(self.times):
            marker = os.path.join(
                self.marker_dir, f"fault-{self.kind}-{block_index}-{attempt}"
            )
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue  # this firing already happened on an earlier attempt
            if self.kind == "exception":
                raise RuntimeError(
                    f"injected worker fault on block {block_index} "
                    f"(firing {attempt + 1}/{self.times})"
                )
            if self.kind == "exit":
                os._exit(17)
            time.sleep(self.hang_seconds)
            return


class SlowFallback:
    """Context manager stalling every BFS-fallback query by ``seconds``.

    Patches :meth:`BFSCountingOracle.count_with_distance`, the single
    entry point of the degraded query path, to sleep before delegating.
    With a per-request deadline shorter than the stall, the delegated
    sweep's *first* cooperative checkpoint raises
    :class:`~repro.exceptions.DeadlineExceeded` — exactly the
    slow-degraded-path shape the serving circuit breaker must absorb.
    Calls are counted in ``calls`` for assertions.
    """

    def __init__(self, seconds=0.02):
        self.seconds = seconds
        self.calls = 0
        self._original = None

    def __enter__(self):
        self._original = _bfs_counting.BFSCountingOracle.count_with_distance
        original = self._original
        injector = self

        def slow(oracle, s, t, deadline=None):
            injector.calls += 1
            time.sleep(injector.seconds)
            return original(oracle, s, t, deadline=deadline)

        _bfs_counting.BFSCountingOracle.count_with_distance = slow
        return self

    def __exit__(self, *exc_info):
        _bfs_counting.BFSCountingOracle.count_with_distance = self._original
        return False


class FlappingFile:
    """An index file flapping between corrupt and pristine under test control.

    Captures the pristine bytes at construction; :meth:`corrupt` damages
    the file in place (``"flip"`` one bit, ``"truncate"`` the tail, or
    ``"garbage"`` the whole file) and :meth:`restore` puts the original
    bytes back. Every transition rewrites the file, so mtime-based
    watchers (:class:`repro.serving.reload.IndexWatcher`) observe each
    flap. ``flaps`` counts transitions for assertions.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._pristine = _read(self.path)
        self.flaps = 0

    def corrupt(self, mode="flip", offset=100, bit=3, drop_bytes=25):
        if mode == "flip":
            flip_bit(self.path, offset, bit)
        elif mode == "truncate":
            truncate_file(self.path, drop_bytes)
        elif mode == "garbage":
            _write(self.path, b"not an index" * 4)
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
        self.flaps += 1

    def restore(self):
        _write(self.path, self._pristine)
        self.flaps += 1


class KillDuringRebuild:
    """Picklable fault killing (or wedging) a rebuild worker mid-build.

    Wired into :class:`repro.dynamic.maintenance.MaintenanceController`
    via its ``_fault`` test hook: the rebuild worker process calls
    :meth:`trigger` after every *completed* checkpoint save. Once
    ``after_saves`` saves have landed the fault fires ``times`` times —
    counted via exclusive marker files in ``marker_dir`` exactly like
    :class:`WorkerFault`, atomic across the supervised retries, so the
    worker deterministically misbehaves ``times`` times and then builds
    cleanly. ``kind="kill"`` dies with ``os._exit`` (SIGKILL between
    checkpoints: the save survives on disk and the next attempt must
    resume from it); ``kind="hang"`` sleeps ``hang_seconds`` so only the
    controller's task timeout can reap the worker.
    """

    def __init__(self, marker_dir, after_saves=1, times=1, kind="kill",
                 hang_seconds=60.0):
        if kind not in ("kill", "hang"):
            raise ValueError(f"unknown rebuild fault kind {kind!r}")
        self.marker_dir = os.fspath(marker_dir)
        self.after_saves = after_saves
        self.times = times
        self.kind = kind
        self.hang_seconds = hang_seconds

    def trigger(self, saves):
        """Called by the rebuild worker after checkpoint save number ``saves``."""
        if saves < self.after_saves:
            return
        for attempt in range(self.times):
            marker = os.path.join(
                self.marker_dir, f"rebuild-{self.kind}-{attempt}"
            )
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue  # this firing already happened on an earlier attempt
            if self.kind == "kill":
                os._exit(23)
            time.sleep(self.hang_seconds)
            return


class StalledWorker:
    """Picklable cluster fault: SIGSTOP yourself just before replying.

    Wired into :class:`repro.serving.cluster.ClusterService` via its
    ``_fault`` hook; the worker process calls :meth:`before_reply` right
    before sending each successful batch reply. From ``after_replies``
    replies on, the fault fires ``times`` times — counted via exclusive
    marker files in ``marker_dir`` (atomic across respawned worker
    incarnations, the :class:`WorkerFault` idiom) — and the process
    stops itself with ``SIGSTOP``. A stopped process is alive but
    silent: its pipe stays open, so only heartbeat/stall supervision
    (not EOF) can detect it, and ``SIGKILL`` still reaps it. Call
    :meth:`resume` to ``SIGCONT`` a stopped pid instead of letting the
    supervisor kill it — the held-back reply is then sent normally.
    """

    def __init__(self, marker_dir, after_replies=1, times=1):
        self.marker_dir = os.fspath(marker_dir)
        self.after_replies = after_replies
        self.times = times
        self._replies = 0

    def before_reply(self, conn, reply):
        """Worker-side hook: maybe stop the process; never consumes."""
        self._replies += 1
        if self._replies < self.after_replies:
            return False
        for attempt in range(self.times):
            marker = os.path.join(self.marker_dir, f"stall-{attempt}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue  # this firing already happened
            os.kill(os.getpid(), signal.SIGSTOP)
            break
        return False

    @staticmethod
    def resume(pid):
        """SIGCONT a stopped worker so it finishes its held-back reply."""
        os.kill(pid, signal.SIGCONT)


class TornPipeWrite:
    """Picklable cluster fault: die mid-frame while replying.

    From ``after_replies`` successful replies on (marker-file counted
    like :class:`StalledWorker`), the worker writes only the first
    ``keep_bytes`` bytes of a correctly-framed reply — a truncated
    length-prefixed pickle, exactly what a process crashing inside
    ``write(2)`` leaves on the pipe — then dies with ``os._exit``. The
    router's incremental frame decoder must fail *this worker only*:
    short read ⇒ worker death ⇒ replay, never a router crash.
    """

    def __init__(self, marker_dir, after_replies=1, times=1, keep_bytes=6):
        if keep_bytes < 1:
            raise ValueError("keep_bytes must be >= 1")
        self.marker_dir = os.fspath(marker_dir)
        self.after_replies = after_replies
        self.times = times
        self.keep_bytes = keep_bytes
        self._replies = 0

    def before_reply(self, conn, reply):
        """Worker-side hook: maybe write a torn frame and die."""
        self._replies += 1
        if self._replies < self.after_replies:
            return False
        for attempt in range(self.times):
            marker = os.path.join(self.marker_dir, f"torn-{attempt}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue  # this firing already happened
            blob = pickle.dumps(reply)
            # The Connection wire format: 4-byte big-endian length, then
            # the pickled payload — truncated mid-frame on purpose.
            frame = struct.pack("!i", len(blob)) + blob
            os.write(conn.fileno(), frame[:self.keep_bytes])
            os._exit(21)
        return False


class CrashingCheckpoint(BuildCheckpoint):
    """A checkpoint that kills the build after ``crash_after`` saves.

    The save itself completes (atomically) before :class:`SimulatedKill`
    fires, modelling a process killed *between* checkpoints; a subsequent
    build with a plain :class:`BuildCheckpoint` at the same path must
    resume and produce labels entry-for-entry identical to an
    uninterrupted build.
    """

    def __init__(self, path, every=200, crash_after=1, keep=False):
        super().__init__(path, every=every, keep=keep)
        self.crash_after = crash_after

    def save(self, order, watermark, canonical, noncanonical, fingerprint=None):
        super().save(order, watermark, canonical, noncanonical, fingerprint)
        if self.saves >= self.crash_after:
            raise SimulatedKill(
                f"simulated kill after checkpoint save at watermark {watermark}"
            )
