"""Test-support utilities shipped with the library (fault injection)."""

from repro.testing.faults import (
    CrashingCheckpoint,
    SimulatedKill,
    TransientIOErrors,
    WorkerFault,
    corrupt_bytes,
    flip_bit,
    truncate_file,
)

__all__ = [
    "CrashingCheckpoint",
    "SimulatedKill",
    "TransientIOErrors",
    "WorkerFault",
    "corrupt_bytes",
    "flip_bit",
    "truncate_file",
]
