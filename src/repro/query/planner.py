"""Cost-based planning: pick the cheapest backend for every AST node.

The cost model is deliberately coarse — label scans, BFS sweeps and
cached matrix rows differ by orders of magnitude, so rough work-unit
estimates pick the right backend without calibration:

=============  ============================================================
backend        estimated cost per pair query
=============  ============================================================
``flat``       ``2 x avg |L(v)|`` (two label rows scanned)
``bfs``        ``n + m`` (one counting BFS)
``matrix``     ``component_size(s)`` on first touch, then ``1`` (row cache)
``oracle``     a flat-ish constant (usually the only backend available)
=============  ============================================================

Selection rules that fall out of it (and are asserted by the planner
tests): the flat engine wins whenever an index generation is loaded and
fresh; a stale or absent index falls back to BFS; the apsp-matrix row
cache wins over BFS only inside *tiny* components (``matrix_max``
vertices, default 32), where its first-touch sweep is cheap and repeat
queries are O(1). :class:`~repro.query.ast.TopKBetweenness` is a
strategy choice instead: exact Brandes when ``samples is None`` and a
graph is attached, otherwise sampled estimation over the cheapest pair
backend. Plans are explainable (:meth:`Plan.explain`) and cheap enough
to rebuild per run; the engine re-plans whenever the index generation or
backend availability changes.

Every produced plan bumps ``spc_query_plans_total{operator=...}`` and
``spc_query_backends_chosen_total{backend=...}`` when metrics are on.
"""

from repro.exceptions import PlanError
from repro.observability.metrics import get_registry
from repro.query.ast import Batch, PAIR_OPS, Relevance, SetToSet, SingleSource, TopKBetweenness

__all__ = ["PlanNode", "Plan", "QueryPlanner", "DEFAULT_MATRIX_MAX",
           "DEFAULT_SAMPLES"]

#: Largest component the planner will serve from the matrix row cache.
DEFAULT_MATRIX_MAX = 32

#: Pair samples for a TopKBetweenness that pinned none but must sample.
DEFAULT_SAMPLES = 400


class PlanNode:
    """One node's execution decision: backend, strategy, estimated cost."""

    __slots__ = ("node", "backend", "backend_name", "strategy", "cost",
                 "children", "pair_groups")

    def __init__(self, node, backend, backend_name, cost, strategy=None,
                 children=()):
        self.node = node
        self.backend = backend
        self.backend_name = backend_name
        self.strategy = strategy
        self.cost = cost
        self.children = tuple(children)
        # Lazily memoised by the engine for Batch nodes: the per-backend
        # pair grouping is a pure function of the (immutable) children,
        # so a CompiledQuery pays for it once, not on every run.
        self.pair_groups = None

    def describe(self):
        """One human line: ``operator -> backend (cost ~N)``."""
        strategy = f" [{self.strategy}]" if self.strategy else ""
        return (f"{self.node.op} -> {self.backend_name}{strategy} "
                f"(cost ~{self.cost:.0f})")


class Plan:
    """A planned query tree, ready for the engine to execute."""

    __slots__ = ("root",)

    def __init__(self, root):
        self.root = root

    def explain(self):
        """The plan as an indented text tree (CLI ``--explain`` output)."""
        lines = []

        def walk(plan_node, depth):
            lines.append("  " * depth + plan_node.describe())
            for child in plan_node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def walk(self):
        """Every :class:`PlanNode` of the tree, preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


class QueryPlanner:
    """Chooses backends for AST nodes from a fixed candidate list.

    ``backends`` is the engine's ordered backend list; ``graph`` (when
    attached) unlocks the exact-Brandes strategy; ``only`` restricts
    candidates by name (the conformance suite forces one backend at a
    time through it).
    """

    def __init__(self, backends, graph=None, matrix_max=DEFAULT_MATRIX_MAX,
                 default_samples=DEFAULT_SAMPLES, only=None):
        self._backends = tuple(backends)
        self._graph = graph
        self.matrix_max = matrix_max
        self.default_samples = default_samples
        self._only = None if only is None else frozenset(only)

    def _candidates(self, node=None):
        """Backends eligible right now (availability + ``only`` filter).

        ``node`` scopes the matrix backend's tiny-component rule to the
        node's source vertex when it has one.
        """
        out = []
        for backend in self._backends:
            if not backend.available():
                continue
            if self._only is not None and backend.name not in self._only:
                continue
            if backend.name == "matrix" and not self._matrix_eligible(
                    backend, node):
                continue
            out.append(backend)
        return out

    def _matrix_eligible(self, backend, node):
        source = getattr(node, "s", None)
        if source is None:
            source = getattr(node, "source", None)
        if source is None:
            # No anchoring source (set-to-set, topk): bound by graph size.
            return backend.n is not None and backend.n <= self.matrix_max
        return backend.component_size(source) <= self.matrix_max

    def _pair_cost(self, backend, node):
        if backend.name != "matrix":
            return backend.pair_cost()
        source = getattr(node, "s", getattr(node, "source", None))
        if source is not None and not backend.row_cached(source):
            return float(backend.component_size(source))
        return backend.pair_cost()

    def _cheapest_pair(self, node):
        candidates = self._candidates(node)
        if not candidates:
            raise PlanError(
                f"no backend available for operator {node.op!r} "
                "(engine built without an index, graph or oracle?)"
            )
        return min(candidates, key=lambda b: self._pair_cost(b, node))

    def plan(self, node):
        """Produce a :class:`Plan` for ``node`` and record plan metrics."""
        root = self._plan_node(node)
        plan = Plan(root)
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_query_plans_total", operator=node.op).inc()
            for plan_node in plan.walk():
                registry.counter("spc_query_backends_chosen_total",
                                 backend=plan_node.backend_name).inc()
        return plan

    def _plan_node(self, node):
        if isinstance(node, Batch):
            children = [self._plan_node(child) for child in node.queries]
            cost = sum(child.cost for child in children)
            return PlanNode(node, None, "batch", cost, children=children)
        if isinstance(node, PAIR_OPS):
            backend = self._cheapest_pair(node)
            return PlanNode(node, backend, backend.name,
                            self._pair_cost(backend, node))
        if isinstance(node, SingleSource):
            backend = self._cheapest_pair(node)
            return PlanNode(node, backend, backend.name,
                            self._sweep_cost(backend, node.s))
        if isinstance(node, SetToSet):
            backend = self._cheapest_pair(node)
            cost = len(node.sources) * self._sweep_cost(backend, None)
            return PlanNode(node, backend, backend.name, cost)
        if isinstance(node, Relevance):
            backend = self._cheapest_pair(node)
            cost = max(1, len(node.candidates)) * self._pair_cost(backend, node)
            return PlanNode(node, backend, backend.name, cost)
        if isinstance(node, TopKBetweenness):
            return self._plan_topk(node)
        raise PlanError(f"unknown query node {type(node).__name__}")

    def _sweep_cost(self, backend, source):
        """Cost of one full single-source sweep on ``backend``."""
        n = backend.n or 1
        if backend.name == "flat":
            return float(n)  # one pass over all label entries, amortised
        if backend.name == "matrix":
            if source is not None and backend.row_cached(source):
                return float(n)  # read the cached row back out
            return 2.0 * n
        return backend.pair_cost()  # bfs/oracle: one sweep ~ one pair query

    def _plan_topk(self, node):
        graph = self._graph
        if node.samples is None and graph is not None and self._only is None:
            # Exact Brandes: one dependency accumulation per source.
            cost = float(graph.n) * (graph.n + graph.m)
            return PlanNode(node, None, "brandes", cost, strategy="exact")
        backend = self._cheapest_pair(node)
        samples = node.samples or self.default_samples
        targets = (len(node.vertices) if node.vertices is not None
                   else (backend.n or 1))
        cost = 3.0 * samples * targets * self._pair_cost(backend, node)
        return PlanNode(node, backend, f"sampled+{backend.name}", cost,
                        strategy="sampled")
