"""The declarative query AST: one immutable node per operator.

Every workload this repository serves — pair counting, distances,
single-source sweeps, set-to-set aggregation, relevance ranking,
betweenness estimation, path existence — is expressed as a small tree of
value objects. Nodes carry *what* is asked, never *how* it is answered:
the :mod:`~repro.query.planner` picks an execution backend per node and
the :mod:`~repro.query.engine` runs the plan, so the same tree evaluates
identically over the flat/batched engine, the BFS oracle, the
apsp-matrix baseline, or a duck-typed ``count_with_distance`` oracle.

Nodes are hashable and comparable by value; ``node.key()`` is the
canonical tuple used both for equality and as the result-cache key
(combined with the engine's index generation). Results are normalised to
plain Python values — ``(dist, count)`` tuples with ``int`` distances
(``inf`` for disconnected), ``int`` counts, tuples instead of arrays —
so answers compare equal across backends and cache safely.
"""

from repro.exceptions import VertexError

INF = float("inf")

__all__ = [
    "Query", "Count", "Distance", "PathExists", "SingleSource",
    "SetToSet", "Relevance", "TopKBetweenness", "Batch", "PAIR_OPS",
]


def _check_vertex(v, n):
    """Raise :class:`VertexError` unless ``v`` is an int inside ``[0, n)``."""
    if isinstance(v, bool) or not isinstance(v, int) or not 0 <= v < n:
        raise VertexError(v, n)


def _vertex_tuple(vertices):
    """Freeze an id iterable into a tuple (the only mutation-proof form)."""
    return tuple(vertices)


class Query:
    """Base class for all AST nodes.

    Subclasses set ``op`` (the operator name used in plans, metrics and
    the textual form) and implement :meth:`key` and :meth:`validate`.
    """

    op = "?"
    __slots__ = ()

    def key(self):
        """Canonical hashable identity: ``(op, field, field, ...)``."""
        raise NotImplementedError

    def validate(self, n):
        """Raise :class:`VertexError` for any id outside ``[0, n)``."""
        raise NotImplementedError

    def children(self):
        """Child nodes (non-empty only for :class:`Batch`)."""
        return ()

    def __eq__(self, other):
        return type(other) is type(self) and other.key() == self.key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        fields = ", ".join(repr(field) for field in self.key()[1:])
        return f"{type(self).__name__}({fields})"


class _PairQuery(Query):
    """Shared shape of the three pair operators: fields ``s`` and ``t``.

    Each subclass projects the backend's ``(dist, count)`` answer through
    :meth:`from_pair`, which is also how the engine splices one batched
    ``count_many`` call back into per-node results.
    """

    __slots__ = ("s", "t")

    def __init__(self, s, t):
        self.s = s
        self.t = t

    def key(self):
        return (self.op, self.s, self.t)

    def validate(self, n):
        _check_vertex(self.s, n)
        _check_vertex(self.t, n)

    def from_pair(self, dist, count):
        """Project a normalised ``(dist, count)`` pair into this node's answer."""
        raise NotImplementedError


class Count(_PairQuery):
    """``(sd(s,t), spc(s,t))`` — distance and shortest-path count.

    Answers ``(0, 1)`` on the diagonal and ``(inf, 0)`` when
    disconnected, matching every engine in the repository.
    """

    op = "count"
    __slots__ = ()

    def from_pair(self, dist, count):
        return (dist, count)


class Distance(_PairQuery):
    """``sd(s, t)``; ``inf`` when disconnected."""

    op = "distance"
    __slots__ = ()

    def from_pair(self, dist, count):
        return dist


class PathExists(_PairQuery):
    """True when any path connects ``s`` and ``t`` (``spc > 0``)."""

    op = "exists"
    __slots__ = ()

    def from_pair(self, dist, count):
        return count > 0


class SingleSource(Query):
    """``(dist, count)`` over every target from one source.

    The answer is a pair of length-``n`` tuples — ``dist[t]`` an ``int``
    (``inf`` unreachable), ``count[t]`` an ``int`` — normalised from
    whichever array/list convention the chosen backend uses.
    """

    op = "single_source"
    __slots__ = ("s",)

    def __init__(self, s):
        self.s = s

    def key(self):
        return (self.op, self.s)

    def validate(self, n):
        _check_vertex(self.s, n)


class SetToSet(Query):
    """``(sd(S, T), spc(S, T))``: min distance over all pairs, counts
    summed over exactly the pairs achieving it. Empty sides answer
    ``(inf, 0)``."""

    op = "set_to_set"
    __slots__ = ("sources", "targets")

    def __init__(self, sources, targets):
        self.sources = _vertex_tuple(sources)
        self.targets = _vertex_tuple(targets)

    def key(self):
        return (self.op, self.sources, self.targets)

    def validate(self, n):
        for v in self.sources:
            _check_vertex(v, n)
        for v in self.targets:
            _check_vertex(v, n)


class Relevance(Query):
    """Rank ``candidates`` from ``source`` by (distance asc, count desc).

    The paper's Figure 1 workload: among equally-distant candidates the
    one reached by more shortest paths ranks first. The answer is a tuple
    of ``(vertex, dist, count)`` rows, best first; unreachable candidates
    sort last; ties break on the smaller id.
    """

    op = "relevance"
    __slots__ = ("source", "candidates")

    def __init__(self, source, candidates):
        self.source = source
        self.candidates = _vertex_tuple(candidates)

    def key(self):
        return (self.op, self.source, self.candidates)

    def validate(self, n):
        _check_vertex(self.source, n)
        for v in self.candidates:
            _check_vertex(v, n)


class TopKBetweenness(Query):
    """Top-``k`` betweenness scores (unordered-pair convention).

    With ``samples=None`` the planner prefers the exact Brandes sweep
    when a graph is attached; otherwise (or with ``samples`` pinned) it
    estimates by uniform pair sampling over the cheapest pair backend —
    the sampling loop consumes only ``(dist, count)`` pair answers, so a
    pinned ``(samples, seed)`` yields bit-identical estimates on every
    exact backend. The answer is a tuple of ``(vertex, score)`` rows,
    highest score first (ties on the smaller id), restricted to
    ``vertices`` when given and truncated to ``k`` when not ``None``.
    """

    op = "topk_betweenness"
    __slots__ = ("k", "samples", "seed", "vertices")

    def __init__(self, k=None, samples=None, seed=0, vertices=None):
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative or None, got {k!r}")
        if samples is not None and samples <= 0:
            raise ValueError(f"samples must be positive or None, got {samples!r}")
        self.k = k
        self.samples = samples
        self.seed = seed
        self.vertices = None if vertices is None else _vertex_tuple(vertices)

    def key(self):
        return (self.op, self.k, self.samples, self.seed, self.vertices)

    def validate(self, n):
        if self.vertices is not None:
            for v in self.vertices:
                _check_vertex(v, n)


class Batch(Query):
    """Evaluate child queries together; the answer tuple aligns with them.

    Consecutive pair-operator children assigned to the same backend are
    coalesced into one batched ``count_many`` call by the engine, so a
    ``Batch`` of thousands of :class:`Count` nodes costs a handful of
    vectorized passes instead of per-node dispatch.
    """

    op = "batch"
    __slots__ = ("queries",)

    def __init__(self, queries):
        self.queries = tuple(queries)
        for child in self.queries:
            if not isinstance(child, Query):
                raise TypeError(
                    f"Batch children must be Query nodes, got {child!r}"
                )
            if isinstance(child, Batch):
                raise TypeError("Batch nodes do not nest")

    def key(self):
        return (self.op,) + tuple(child.key() for child in self.queries)

    def validate(self, n):
        for child in self.queries:
            child.validate(n)

    def children(self):
        return self.queries


#: The operator classes the engine may coalesce into one pair batch.
PAIR_OPS = (Count, Distance, PathExists)
