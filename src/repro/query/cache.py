"""Generation-keyed LRU result cache for compiled queries.

Entries are keyed by ``(token, node.key())`` where ``token`` is the
engine's cache token — the index generation plus the live backend
line-up. A hot reload bumps the generation, a staleness demotion flips
the backend set; either way the token changes and every previously
cached answer silently misses (mixed-generation hits are impossible by
construction). Stale-token entries are not proactively purged — they age
out of the LRU like any other cold entry.

Results stored here are the engine's normalised value tuples, which are
immutable — a hit can be handed straight back to the caller.

``spc_query_cache_hits_total`` / ``spc_query_cache_misses_total`` mirror
the hit/miss counters into the metrics registry when it is enabled.
"""

import threading
from collections import OrderedDict

from repro.observability.metrics import get_registry

__all__ = ["ResultCache", "DEFAULT_MAX_ENTRIES"]

#: Default cache capacity (entries, whatever their size).
DEFAULT_MAX_ENTRIES = 4096


class ResultCache:
    """A small thread-safe LRU keyed by ``(token, query key)``."""

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lookup(self, token, key):
        """``(True, value)`` on a same-token hit, else ``(False, None)``."""
        cache_key = (token, key)
        with self._lock:
            if cache_key in self._entries:
                self._entries.move_to_end(cache_key)
                self.hits += 1
                hit = True
                value = self._entries[cache_key]
            else:
                self.misses += 1
                hit = False
                value = None
        registry = get_registry()
        if registry.enabled:
            name = ("spc_query_cache_hits_total" if hit
                    else "spc_query_cache_misses_total")
            registry.counter(name).inc()
        return hit, value

    def store(self, token, key, value):
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        cache_key = (token, key)
        with self._lock:
            self._entries[cache_key] = value
            self._entries.move_to_end(cache_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self):
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats(self):
        """``{"hits", "misses", "entries", "max_entries"}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
