"""Compact textual form of the query AST.

The grammar is one statement per line (or ``;``-separated), each mapping
onto exactly one AST node::

    count S T                     -> Count(S, T)
    distance S T                  -> Distance(S, T)
    exists S T                    -> PathExists(S, T)
    single-source S               -> SingleSource(S)
    set S1,S2 -> T1,T2            -> SetToSet((S1, S2), (T1, T2))
    relevance S C1,C2,...         -> Relevance(S, (C1, C2, ...))
    topk K [samples=N] [seed=N] [vertices=a,b,...]
                                  -> TopKBetweenness(...); K may be "all"

Multiple statements compile into one :class:`~repro.query.ast.Batch`
(executed in order, answers aligned); a single statement parses to its
bare node. Errors raise :class:`~repro.exceptions.QuerySyntaxError`
carrying the 1-based statement index, which the CLI maps to a usage
exit.
"""

from repro.exceptions import QuerySyntaxError
from repro.query.ast import (
    Batch,
    Count,
    Distance,
    PathExists,
    Relevance,
    SetToSet,
    SingleSource,
    TopKBetweenness,
)

__all__ = ["parse_query", "parse_statement"]


def parse_query(text):
    """Parse a compact query program into a single AST node.

    One statement returns its node directly; several return a
    :class:`Batch` preserving statement order.
    """
    statements = []
    for chunk in text.replace("\n", ";").split(";"):
        chunk = chunk.strip()
        if chunk:
            statements.append(chunk)
    if not statements:
        raise QuerySyntaxError("empty query")
    nodes = [parse_statement(stmt, index + 1)
             for index, stmt in enumerate(statements)]
    if len(nodes) == 1:
        return nodes[0]
    return Batch(tuple(nodes))


def parse_statement(text, index=None):
    """Parse one statement (``index`` is the 1-based position for errors)."""
    tokens = text.split()
    op = tokens[0].lower()
    rest = tokens[1:]
    if op == "count":
        s, t = _two_vertices(rest, op, index)
        return Count(s, t)
    if op == "distance":
        s, t = _two_vertices(rest, op, index)
        return Distance(s, t)
    if op == "exists":
        s, t = _two_vertices(rest, op, index)
        return PathExists(s, t)
    if op == "single-source":
        if len(rest) != 1:
            raise QuerySyntaxError(
                f"single-source takes one vertex, got {len(rest)} args",
                statement=index,
            )
        return SingleSource(_vertex(rest[0], index))
    if op == "set":
        return _parse_set(rest, index)
    if op == "relevance":
        if len(rest) != 2:
            raise QuerySyntaxError(
                "relevance takes a source and a candidate list "
                "(relevance S C1,C2,...)",
                statement=index,
            )
        source = _vertex(rest[0], index)
        candidates = _vertex_list(rest[1], index)
        return Relevance(source, candidates)
    if op == "topk":
        return _parse_topk(rest, index)
    raise QuerySyntaxError(f"unknown operator {op!r}", statement=index)


def _parse_set(rest, index):
    parts = " ".join(rest).split("->")
    if len(parts) != 2:
        raise QuerySyntaxError(
            "set needs 'S1,S2 -> T1,T2' (one '->' between the lists)",
            statement=index,
        )
    sources = _vertex_list(parts[0].strip(), index)
    targets = _vertex_list(parts[1].strip(), index)
    return SetToSet(sources, targets)


def _parse_topk(rest, index):
    if not rest:
        raise QuerySyntaxError(
            "topk needs K (a count, or 'all' for every vertex)",
            statement=index,
        )
    k_token = rest[0].lower()
    if k_token == "all":
        k = None
    else:
        try:
            k = int(rest[0])
        except ValueError:
            raise QuerySyntaxError(
                f"topk K must be an integer or 'all', got {rest[0]!r}",
                statement=index,
            ) from None
        if k < 0:
            raise QuerySyntaxError("topk K must be >= 0", statement=index)
    samples = None
    seed = 0
    vertices = None
    for token in rest[1:]:
        key, sep, value = token.partition("=")
        if not sep:
            raise QuerySyntaxError(
                f"topk options look like key=value, got {token!r}",
                statement=index,
            )
        if key == "samples":
            samples = _int_option(key, value, index)
        elif key == "seed":
            seed = _int_option(key, value, index)
        elif key == "vertices":
            vertices = _vertex_list(value, index)
        else:
            raise QuerySyntaxError(
                f"unknown topk option {key!r} "
                "(expected samples=, seed= or vertices=)",
                statement=index,
            )
    return TopKBetweenness(k=k, samples=samples, seed=seed, vertices=vertices)


def _two_vertices(rest, op, index):
    if len(rest) != 2:
        raise QuerySyntaxError(
            f"{op} takes two vertices, got {len(rest)} args",
            statement=index,
        )
    return _vertex(rest[0], index), _vertex(rest[1], index)


def _vertex(token, index):
    try:
        return int(token)
    except ValueError:
        raise QuerySyntaxError(
            f"expected a vertex id, got {token!r}", statement=index
        ) from None


def _vertex_list(text, index):
    tokens = [t for t in text.split(",") if t.strip()]
    if not tokens:
        raise QuerySyntaxError(
            "expected a comma-separated vertex list", statement=index
        )
    return tuple(_vertex(t.strip(), index) for t in tokens)


def _int_option(key, value, index):
    try:
        return int(value)
    except ValueError:
        raise QuerySyntaxError(
            f"topk option {key}= needs an integer, got {value!r}",
            statement=index,
        ) from None
