"""Uniform execution backends the planner chooses between.

Each backend adapts one of the repository's engines to a single small
surface — ``pair`` / ``pairs`` / ``single_source`` / ``set_to_set`` plus
a ``pair_cost()`` estimate — and normalises every answer to the AST
conventions (``int`` distances with ``inf`` for disconnected, ``int``
counts, tuples instead of arrays). The planner never needs to know what
lives behind a backend; conformance tests exploit the same property to
assert operator-by-operator agreement across all of them.

* :class:`FlatBackend` — the vectorized flat/batched engine over a
  built :class:`~repro.core.index.SPCIndex` (label-scan cost).
* :class:`BFSBackend` — the online counting BFS oracle (``O(n + m)``
  per query, no index needed, always exact).
* :class:`MatrixBackend` — the apsp-matrix strawman, realised lazily as
  per-source BFS rows cached forever: the first query from a source pays
  one component sweep, every later query from it is O(1). The planner
  only offers it for tiny components, where the cache actually fits.
* :class:`OracleBackend` — any duck-typed ``count_with_distance``
  object (an index facade, a dynamic overlay, a cluster adapter); used
  by the ``applications/`` drivers so they stay engine-agnostic.
* :class:`ResilientBackend` — a :class:`~repro.resilience
  .ResilientSPCIndex`; its ``name`` mirrors the live serving path
  (``flat`` while the index generation is loaded, ``bfs`` once
  degraded), which is how serving plans reflect reality.
"""

import numpy as np

INF = float("inf")

__all__ = [
    "Backend", "FlatBackend", "BFSBackend", "MatrixBackend",
    "OracleBackend", "ResilientBackend", "normalize_pair",
    "normalize_single_source",
]


def normalize_pair(dist, count):
    """Coerce any engine's ``(dist, count)`` into the AST convention."""
    count = int(count)
    if count == 0:
        return (INF, 0)
    return (int(dist), count)


def normalize_single_source(dist, count):
    """Coerce array/list single-source columns into value tuples."""
    if isinstance(dist, np.ndarray):
        dist = dist.tolist()
    if isinstance(count, np.ndarray):
        count = count.tolist()
    out_dist = []
    out_count = []
    for d, c in zip(dist, count):
        c = int(c)
        if c == 0:
            out_dist.append(INF)
            out_count.append(0)
        else:
            out_dist.append(int(d))
            out_count.append(c)
    return (tuple(out_dist), tuple(out_count))


class Backend:
    """Shared fallbacks: everything reduces to :meth:`pair` if needed."""

    name = "?"

    @property
    def n(self):
        """Vertex count, or ``None`` when the backend cannot know it."""
        return None

    def available(self):
        """False drops the backend from planning (e.g. stale labels)."""
        return True

    def pair(self, s, t, deadline=None):
        """Normalised ``(dist, count)`` for one pair."""
        raise NotImplementedError

    def pairs(self, pairs, deadline=None):
        """Normalised ``(dist, count)`` list aligned with ``pairs``."""
        return [self.pair(s, t, deadline=deadline) for s, t in pairs]

    def single_source(self, s, deadline=None):
        """Normalised ``(dist, count)`` tuples over every target."""
        n = self.n
        if n is None:
            raise NotImplementedError(
                f"{self.name} backend cannot enumerate targets (unknown n)"
            )
        answers = self.pairs([(s, t) for t in range(n)], deadline=deadline)
        return (tuple(d for d, _ in answers), tuple(c for _, c in answers))

    def set_to_set(self, sources, targets, deadline=None):
        """Min distance over S x T with counts summed at the minimum."""
        if not sources or not targets:
            return (INF, 0)
        best, sigma = INF, 0
        for s in sources:
            for d, c in self.pairs([(s, t) for t in targets],
                                   deadline=deadline):
                if c == 0:
                    continue
                if d < best:
                    best, sigma = d, c
                elif d == best:
                    sigma += c
        return (best, sigma) if sigma else (INF, 0)

    def pair_cost(self):
        """Estimated work units for one pair query (planner input)."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r}, n={self.n})"


class FlatBackend(Backend):
    """The vectorized flat/batched engine over a built index."""

    name = "flat"

    def __init__(self, index):
        self.index = index

    @property
    def n(self):
        return self.index.n

    def available(self):
        return not self.index.stale

    def pair(self, s, t, deadline=None):
        return self.pairs([(s, t)], deadline=deadline)[0]

    def pairs(self, pairs, deadline=None):
        # count_many already speaks the AST convention — python ints,
        # (inf, 0) disconnected, (0, 1) diagonal — so no per-item
        # renormalization on the hot batch path.
        return self.index.count_many(pairs, deadline=deadline)

    def single_source(self, s, deadline=None):
        from repro.core.batch_query import single_source

        if deadline is not None:
            deadline.check()
        return normalize_single_source(*single_source(self.index.to_flat(), s))

    def set_to_set(self, sources, targets, deadline=None):
        if not sources or not targets:
            return (INF, 0)
        if deadline is not None:
            deadline.check()
        return normalize_pair(*self.index.set_to_set(sources, targets))

    def pair_cost(self):
        # One query scans L(s) and L(t): ~2 average label rows of work.
        return 2.0 * self.index.total_entries() / max(1, self.index.n)


class BFSBackend(Backend):
    """Online counting BFS — exact with no index, ``O(n + m)`` a query."""

    name = "bfs"

    def __init__(self, graph, engine="python"):
        from repro.baselines.bfs_counting import BFSCountingOracle

        self.graph = graph
        self._oracle = BFSCountingOracle(graph, engine=engine)

    @property
    def n(self):
        return self.graph.n

    def pair(self, s, t, deadline=None):
        return normalize_pair(
            *self._oracle.count_with_distance(s, t, deadline=deadline)
        )

    def single_source(self, s, deadline=None):
        return normalize_single_source(
            *self._oracle.single_source(s, deadline=deadline)
        )

    def pair_cost(self):
        return float(self.graph.n + self.graph.m)


class MatrixBackend(Backend):
    """The apsp-matrix baseline, materialised one source row at a time.

    :class:`~repro.baselines.apsp_matrix.CountMatrixOracle` precomputes
    all n rows up front; for planner use that cost profile is kept but
    paid lazily — ``row(s)`` runs one counting BFS on first touch and is
    cached for the engine's lifetime, so repeated queries out of a tiny
    component amortise to O(1) like the dense matrix would.
    """

    name = "matrix"

    def __init__(self, graph):
        self.graph = graph
        self._rows = {}
        self._component_size = None

    @property
    def n(self):
        return self.graph.n

    def row(self, s, deadline=None):
        """The cached ``(dist, count)`` lists of source ``s``."""
        from repro.graph.traversal import bfs_count_from

        cached = self._rows.get(s)
        if cached is None:
            cached = bfs_count_from(self.graph, s, deadline=deadline)
            self._rows[s] = cached
        return cached

    def row_cached(self, s):
        return s in self._rows

    def component_size(self, v):
        """Size of ``v``'s connected component (computed once, lazily)."""
        if self._component_size is None:
            from collections import Counter

            from repro.graph.components import component_ids

            ids = component_ids(self.graph)
            sizes = Counter(ids)
            self._component_size = [sizes[ids[v]] for v in range(self.graph.n)]
        return self._component_size[v]

    def pair(self, s, t, deadline=None):
        if s == t:
            return (0, 1)
        dist, count = self.row(s, deadline=deadline)
        return normalize_pair(dist[t], count[t])

    def single_source(self, s, deadline=None):
        return normalize_single_source(*self.row(s, deadline=deadline))

    def pair_cost(self):
        # Amortised: a cached row answers in O(1); the planner adds the
        # first-touch sweep via component_size() when the row is cold.
        return 1.0


class OracleBackend(Backend):
    """Any ``count_with_distance`` object, e.g. an index facade.

    ``count_many`` and ``single_source`` methods are used when the
    wrapped object has them (so a batching-capable oracle — a cluster
    adapter, an inverted index — keeps its amortisation); everything
    else falls back to per-pair queries.
    """

    name = "oracle"

    def __init__(self, oracle, n=None):
        self.oracle = oracle
        self._n = n

    @property
    def n(self):
        # Only an explicit n or the oracle's own n counts: inferring the
        # id space from label stores is wrong for reduced/renumbered
        # oracles that answer queries outside their internal store.
        if self._n is not None:
            return self._n
        n = getattr(self.oracle, "n", None)
        return n if isinstance(n, int) else None

    def pair(self, s, t, deadline=None):
        return normalize_pair(*_call_pair(self.oracle, s, t, deadline))

    def pairs(self, pairs, deadline=None):
        count_many = getattr(self.oracle, "count_many", None)
        if count_many is not None:
            try:
                answers = count_many(pairs, deadline=deadline)
            except TypeError:
                answers = count_many(pairs)
            return [normalize_pair(d, c) for d, c in answers]
        return super().pairs(pairs, deadline=deadline)

    def single_source(self, s, deadline=None):
        sweep = getattr(self.oracle, "single_source", None)
        if sweep is not None:
            try:
                answer = sweep(s, deadline=deadline)
            except TypeError:
                answer = sweep(s)
            return normalize_single_source(*answer)
        return super().single_source(s, deadline=deadline)

    def pair_cost(self):
        # Opaque: assume label-scan-ish work. The oracle backend is
        # usually the only one available, so the constant rarely matters.
        return 16.0


def _call_pair(oracle, s, t, deadline):
    """``count_with_distance`` with or without deadline support."""
    if deadline is None:
        return oracle.count_with_distance(s, t)
    try:
        return oracle.count_with_distance(s, t, deadline=deadline)
    except TypeError:
        deadline.check()
        return oracle.count_with_distance(s, t)


class ResilientBackend(Backend):
    """A serving-tier :class:`~repro.resilience.ResilientSPCIndex`.

    The backend's ``name`` tracks the facade's live serving path, so
    plans (and the backend-chosen metric) say ``flat`` while an index
    generation is loaded and ``bfs`` once the facade degrades — the
    planner itself never second-guesses the facade's own fallback
    machinery.
    """

    def __init__(self, resilient):
        self.resilient = resilient

    @property
    def name(self):
        return "flat" if self.resilient.status == "index" else "bfs"

    @property
    def n(self):
        return self.resilient.n

    def pair(self, s, t, deadline=None):
        return normalize_pair(
            *self.resilient.count_with_distance(s, t, deadline=deadline)
        )

    def pairs(self, pairs, deadline=None):
        return [normalize_pair(d, c)
                for d, c in self.resilient.count_many(pairs, deadline=deadline)]

    def single_source(self, s, deadline=None):
        return normalize_single_source(
            *self.resilient.single_source(s, deadline=deadline)
        )

    def set_to_set(self, sources, targets, deadline=None):
        if not sources or not targets:
            return (INF, 0)
        return normalize_pair(
            *self.resilient.set_to_set(sources, targets, deadline=deadline)
        )

    def pair_cost(self):
        return 16.0 if self.resilient.status == "index" else float(
            self.resilient.n
        )
