"""The query engine: validate, cache-check, plan, execute.

:class:`QueryEngine` owns a set of execution backends (built from
whatever the caller attaches — an index, a graph, a duck-typed oracle, a
serving-tier resilient facade), a :class:`~repro.query.planner
.QueryPlanner` over them, and a generation-keyed
:class:`~repro.query.cache.ResultCache`. ``run(node)`` is the whole
pipeline; ``compile(node)`` keeps the plan around for repeated
execution; ``explain(node)`` shows the planner's choices.

Execution guarantees:

* answers are normalised value tuples — identical across backends, safe
  to cache and to compare in the conformance suite;
* :class:`~repro.query.ast.Batch` children that are pair operators and
  share a backend are coalesced into one batched ``pairs`` call (one
  vectorized ``count_many`` for a thousand ``Count`` nodes);
* ``deadline`` (duck-typed ``check()``) threads into every backend call,
  so serving-tier budgets bound compiled queries exactly like direct
  ones;
* the cache token couples the index generation with the live backend
  line-up, so a hot reload or a staleness demotion invalidates every
  cached answer at once (see :mod:`repro.query.cache`).
"""

from repro.exceptions import PlanError
from repro.query.ast import (
    Batch,
    Count,
    PAIR_OPS,
    Relevance,
    SetToSet,
    SingleSource,
    TopKBetweenness,
)
from repro.query.backends import (
    BFSBackend,
    FlatBackend,
    MatrixBackend,
    OracleBackend,
    ResilientBackend,
)
from repro.query.cache import ResultCache
from repro.query.planner import (
    DEFAULT_MATRIX_MAX,
    DEFAULT_SAMPLES,
    QueryPlanner,
)

INF = float("inf")

__all__ = ["QueryEngine", "CompiledQuery"]


class CompiledQuery:
    """A query bound to an engine with its plan cached across runs.

    The plan is recomputed only when the engine's cache token moves (hot
    reload, staleness demotion) — repeated ``run()`` calls on a stable
    engine pay planning once, which is what the CI query-layer leg
    measures against raw ``count_many``.
    """

    __slots__ = ("engine", "node", "_plan", "_token", "_validated_n")

    def __init__(self, engine, node):
        self.engine = engine
        self.node = node
        self._plan = None
        self._token = None
        self._validated_n = None

    @property
    def plan(self):
        """The current :class:`~repro.query.planner.Plan` (re-planned
        whenever the engine's generation or backend line-up changed)."""
        token = self.engine.cache_token()
        if self._plan is None or token != self._token:
            self._plan = self.engine.plan(self.node)
            self._token = token
        return self._plan

    def run(self, deadline=None):
        """Execute with the cached plan (engine result cache still applies).

        Validation is memoised per id space: the node is immutable, so
        re-checking its vertex ids on every run of a hot compiled batch
        would be pure overhead.
        """
        plan = self.plan
        n = self.engine.n
        if n is not None and n != self._validated_n:
            self.node.validate(n)
            self._validated_n = n
        return self.engine.run(self.node, deadline=deadline, plan=plan,
                               validated=True)

    def explain(self):
        """The cached plan as an indented text tree."""
        return self.plan.explain()

    def __repr__(self):
        return f"CompiledQuery({self.node!r})"


class QueryEngine:
    """Plan and execute AST queries over the attached backends.

    Parameters
    ----------
    graph:
        The live graph; unlocks the BFS and matrix backends and the
        exact-Brandes top-k strategy.
    index:
        A built :class:`~repro.core.index.SPCIndex`; unlocks the flat
        backend (dropped automatically while ``index.stale``).
    oracle:
        Any duck-typed ``count_with_distance`` object; the engine the
        ``applications/`` drivers run on.
    resilient:
        A :class:`~repro.resilience.ResilientSPCIndex`; used exclusively
        when given (the facade already owns index-vs-BFS fallback).
    n:
        Vertex count override for oracle-only engines that cannot infer
        it; queries are validated against it when known.
    generation:
        Int or callable for the cache token. Defaults to the resilient
        facade's generation when one is attached, else 0; bump it (or
        assign ``engine.generation``) after mutating the underlying
        data in place.
    cache:
        ``True`` (default) for a fresh :class:`ResultCache`, ``None`` /
        ``False`` to disable caching, or a ready cache instance.
    backends:
        Optional backend-name filter (conformance harness), forwarded to
        the planner's ``only``.
    """

    def __init__(self, graph=None, index=None, oracle=None, resilient=None,
                 n=None, bfs_engine="python", cache=True, generation=None,
                 backends=None, matrix_max=DEFAULT_MATRIX_MAX,
                 default_samples=DEFAULT_SAMPLES):
        self.graph = graph
        self.index = index
        self._backends = []
        if resilient is not None:
            self._backends.append(ResilientBackend(resilient))
            if generation is None:
                def generation():
                    return resilient.generation
        else:
            if index is not None:
                self._backends.append(FlatBackend(index))
            if graph is not None:
                self._backends.append(MatrixBackend(graph))
                self._backends.append(BFSBackend(graph, engine=bfs_engine))
            if oracle is not None:
                self._backends.append(OracleBackend(oracle, n=n))
        if not self._backends:
            raise ValueError(
                "QueryEngine needs at least one of graph/index/oracle/resilient"
            )
        self._generation = generation if generation is not None else 0
        if cache is True:
            self._cache = ResultCache()
        elif cache in (None, False):
            self._cache = None
        else:
            self._cache = cache
        self._n_override = n
        self._planner = QueryPlanner(
            self._backends, graph=graph, matrix_max=matrix_max,
            default_samples=default_samples, only=backends,
        )

    # -- introspection --------------------------------------------------------

    @property
    def n(self):
        """The query id space ``[0, n)``, or ``None`` when unknowable."""
        if self._n_override is not None:
            return self._n_override
        if self.graph is not None:
            return self.graph.n
        for backend in self._backends:
            if backend.n is not None:
                return backend.n
        return None

    @property
    def generation(self):
        """The cache-token generation (int, or live value of the callable)."""
        return self._generation() if callable(self._generation) else self._generation

    @generation.setter
    def generation(self, value):
        self._generation = value

    def cache_token(self):
        """Generation + live backend line-up; cache keys and plans hang off it."""
        names = tuple(b.name for b in self._backends if b.available())
        return (self.generation, names)

    def cache_stats(self):
        """The result cache's counters (all zero when caching is off)."""
        if self._cache is None:
            return {"hits": 0, "misses": 0, "entries": 0, "max_entries": 0}
        return self._cache.stats()

    # -- the pipeline ---------------------------------------------------------

    def plan(self, node):
        """Plan ``node`` without executing it."""
        return self._planner.plan(node)

    def explain(self, node):
        """The plan for ``node`` as an indented text tree."""
        return self.plan(node).explain()

    def compile(self, node):
        """Bind ``node`` to this engine with a plan cached across runs."""
        return CompiledQuery(self, node)

    def run(self, node, deadline=None, plan=None, validated=False):
        """Validate, consult the cache, plan if needed, execute, store.

        ``validated=True`` skips id validation — only
        :class:`CompiledQuery` passes it, after memoising its own check.
        """
        if not validated:
            n = self.n
            if n is not None:
                node.validate(n)
        if self._cache is not None:
            token = self.cache_token()
            hit, value = self._cache.lookup(token, node.key())
            if hit:
                return value
        if plan is None:
            plan = self._planner.plan(node)
        result = self._execute(plan.root, deadline)
        if self._cache is not None:
            self._cache.store(token, node.key(), result)
        return result

    # -- execution ------------------------------------------------------------

    def _execute(self, plan_node, deadline):
        node = plan_node.node
        if isinstance(node, Batch):
            return self._execute_batch(plan_node, deadline)
        backend = plan_node.backend
        if isinstance(node, PAIR_OPS):
            return node.from_pair(*backend.pair(node.s, node.t,
                                                deadline=deadline))
        if isinstance(node, SingleSource):
            return backend.single_source(node.s, deadline=deadline)
        if isinstance(node, SetToSet):
            return backend.set_to_set(list(node.sources), list(node.targets),
                                      deadline=deadline)
        if isinstance(node, Relevance):
            return self._execute_relevance(node, backend, deadline)
        if isinstance(node, TopKBetweenness):
            return self._execute_topk(node, plan_node, deadline)
        raise PlanError(f"unknown query node {type(node).__name__}")

    def _execute_batch(self, plan_node, deadline):
        """Children grouped per backend: one ``pairs`` call per group.

        Grouping preserves child order in the answer tuple; only pair
        operators coalesce — other children run through their own plan
        nodes one by one. The grouping is a pure function of the plan's
        (immutable) children, so it is computed once and memoised on the
        plan node; a compiled all-``Count`` batch reduces to a single
        ``pairs`` call with no per-child work at all.
        """
        if plan_node.pair_groups is None:
            plan_node.pair_groups = self._group_batch(plan_node.children)
        singles, groups = plan_node.pair_groups
        children = plan_node.children
        if not singles and len(groups) == 1 and groups[0][3] is None:
            backend, _, pairs, _ = groups[0]
            return tuple(backend.pairs(pairs, deadline=deadline))
        results = [None] * len(children)
        for i, child in singles:
            results[i] = self._execute(child, deadline)
        for backend, indexes, pairs, splicers in groups:
            answers = backend.pairs(pairs, deadline=deadline)
            if splicers is None:  # all-Count group: answers pass through
                for i, answer in zip(indexes, answers):
                    results[i] = answer
            else:
                for i, splice, answer in zip(indexes, splicers, answers):
                    results[i] = answer if splice is None else splice(*answer)
        return tuple(results)

    @staticmethod
    def _group_batch(children):
        """Split batch children into non-pair singles and pair groups.

        Returns ``(singles, groups)``: ``singles`` is ``(index, plan
        child)`` rows executed individually; each group is ``(backend,
        indexes, pairs, splicers)`` with ``splicers`` ``None`` when every
        member is a plain :class:`Count` (whose answer needs no
        projection), else per-index ``from_pair`` methods.
        """
        singles = []
        grouped = {}
        for i, child in enumerate(children):
            if isinstance(child.node, PAIR_OPS):
                grouped.setdefault(id(child.backend),
                                   (child.backend, []))[1].append(i)
            else:
                singles.append((i, child))
        groups = []
        for backend, indexes in grouped.values():
            pairs = [(children[i].node.s, children[i].node.t)
                     for i in indexes]
            splicers = tuple(
                None if type(children[i].node) is Count
                else children[i].node.from_pair
                for i in indexes
            )
            if not any(splicers):
                splicers = None
            groups.append((backend, tuple(indexes), pairs, splicers))
        return tuple(singles), tuple(groups)

    def _execute_relevance(self, node, backend, deadline):
        answers = backend.pairs([(node.source, v) for v in node.candidates],
                                deadline=deadline)
        scored = [(v, dist, count)
                  for v, (dist, count) in zip(node.candidates, answers)]
        scored.sort(key=lambda row: (row[1], -row[2], row[0]))
        return tuple(scored)

    def _execute_topk(self, node, plan_node, deadline):
        if plan_node.strategy == "exact":
            scores = self._topk_exact(deadline)
        else:
            scores = self._topk_sampled(node, plan_node.backend, deadline)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if node.k is not None:
            ranked = ranked[:node.k]
        return tuple(ranked)

    def _topk_exact(self, deadline):
        from repro.applications.betweenness import brandes_betweenness

        if deadline is not None:
            deadline.check()
        centrality = brandes_betweenness(self.graph)
        return dict(enumerate(centrality))

    def _topk_sampled(self, node, backend, deadline):
        """The uniform pair-sampling estimator, driven by pair queries.

        Matches :func:`repro.applications.betweenness.sampled_betweenness`
        call for call — same rng sequence, same accumulation order — so a
        pinned ``(samples, seed)`` reproduces the pre-query-layer numbers
        exactly, on every exact backend.
        """
        from repro.utils.rng import ensure_rng

        n = self.n
        if n is None:
            raise PlanError(
                "sampled top-k betweenness needs a known vertex count; "
                "pass n= to QueryEngine"
            )
        targets = (list(node.vertices) if node.vertices is not None
                   else list(range(n)))
        totals = {v: 0.0 for v in targets}
        if n < 2:
            return totals
        samples = node.samples or self._planner.default_samples
        rng = ensure_rng(node.seed)
        for _ in range(samples):
            s = rng.randrange(n)
            t = rng.randrange(n)
            while t == s:
                t = rng.randrange(n)
            for v in targets:
                totals[v] += _pair_dependency(backend, s, t, v, deadline)
        scale = (n * (n - 1) / 2.0) / samples
        return {v: total * scale for v, total in totals.items()}


def _pair_dependency(backend, s, t, v, deadline):
    """``δ_st(v)`` from at most three backend pair queries.

    The short-circuit order mirrors
    :func:`repro.applications.betweenness.pair_dependency` exactly.
    """
    if v == s or v == t:
        return 0.0
    dist_st, sigma_st = backend.pair(s, t, deadline=deadline)
    if sigma_st == 0:
        return 0.0
    dist_sv, sigma_sv = backend.pair(s, v, deadline=deadline)
    if sigma_sv == 0 or dist_sv >= dist_st:
        return 0.0
    dist_vt, sigma_vt = backend.pair(v, t, deadline=deadline)
    if sigma_vt == 0 or dist_sv + dist_vt != dist_st:
        return 0.0
    return (sigma_sv * sigma_vt) / sigma_st
