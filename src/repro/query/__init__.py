"""Declarative query compilation over the SPC engines.

Queries are small immutable AST nodes (:class:`Count`,
:class:`Distance`, :class:`PathExists`, :class:`SingleSource`,
:class:`SetToSet`, :class:`Relevance`, :class:`TopKBetweenness`,
composed with :class:`Batch`); a cost-based planner
(:class:`QueryPlanner`) picks the cheapest capable backend per node —
the flat/batched engine when an index generation is loaded, counting BFS
for degraded or index-less graphs, the lazy apsp-matrix row cache inside
tiny components, sampled estimation for large betweenness asks — and
:class:`QueryEngine` executes the plan with a generation-keyed result
cache that invalidates on hot reload. ``parse_query`` turns the compact
textual form (``"count 0 4; distance 1 3"``) into the same AST the
``applications/`` drivers and the serving tier compile to.

See ``docs/QUERYLANG.md`` for the full reference.
"""

from repro.query.ast import (
    Batch,
    Count,
    Distance,
    PAIR_OPS,
    PathExists,
    Query,
    Relevance,
    SetToSet,
    SingleSource,
    TopKBetweenness,
)
from repro.query.backends import (
    Backend,
    BFSBackend,
    FlatBackend,
    MatrixBackend,
    OracleBackend,
    ResilientBackend,
)
from repro.query.cache import ResultCache
from repro.query.engine import CompiledQuery, QueryEngine
from repro.query.parser import parse_query, parse_statement
from repro.query.planner import (
    DEFAULT_MATRIX_MAX,
    DEFAULT_SAMPLES,
    Plan,
    PlanNode,
    QueryPlanner,
)

__all__ = [
    # AST
    "Query", "Count", "Distance", "PathExists", "SingleSource", "SetToSet",
    "Relevance", "TopKBetweenness", "Batch", "PAIR_OPS",
    # engine + planning
    "QueryEngine", "CompiledQuery", "QueryPlanner", "Plan", "PlanNode",
    "ResultCache", "DEFAULT_MATRIX_MAX", "DEFAULT_SAMPLES",
    # backends
    "Backend", "FlatBackend", "BFSBackend", "MatrixBackend", "OracleBackend",
    "ResilientBackend",
    # textual form
    "parse_query", "parse_statement",
]
