"""Balanced vertex separators and recursive separator trees (§5.1).

The paper implements the planar separator theorem following [35, 41]; we
provide two practical separator finders with the same contract — return a
vertex set whose removal splits the graph into balanced halves:

* :func:`bfs_level_separator` — pick a small BFS level (works on any
  graph; on planar graphs levels are O(√n)-ish in practice);
* :func:`geometric_separator` — for point-embedded graphs (Delaunay,
  grids): cut at the median coordinate, alternating axes, and take the
  boundary vertices of the smaller side. On random Delaunay instances the
  boundary of a halfplane is O(√n).

:func:`build_separator_tree` recurses either finder into the tree 𝒯 whose
preorder is the HP-SPC_P / PL-SPC vertex order.
"""

from collections import deque

from repro.exceptions import GraphError


class SeparatorNode:
    """A node of the separator tree: a separator and its sub-trees.

    ``vertices`` are *original* graph ids. Leaves hold whole small regions
    with no children.
    """

    __slots__ = ("vertices", "children")

    def __init__(self, vertices, children=()):
        self.vertices = list(vertices)
        self.children = list(children)

    def depth(self):
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def node_count(self):
        return 1 + sum(child.node_count() for child in self.children)

    def __repr__(self):
        return f"SeparatorNode(|S|={len(self.vertices)}, children={len(self.children)})"


def bfs_level_separator(graph, vertex_ids=None):
    """Split by a small, balanced BFS level.

    Returns ``(separator, part_a, part_b)`` in the graph's own ids. The
    level is chosen to minimise its size among levels keeping both sides
    at most ~2/3 of the (largest-component) vertices; falls back to the
    most balanced level when none qualifies. Disconnected inputs put the
    other components into the larger side.
    """
    n = graph.n
    if n == 0:
        return [], [], []
    # Double sweep for an approximately peripheral root: deep BFS trees
    # give many small levels to choose from.
    root = max(graph.vertices(), key=graph.degree)
    for _ in range(2):
        dist = _bfs(graph, root)
        far = max((v for v in graph.vertices() if dist[v] >= 0), key=lambda v: dist[v])
        root = far
    dist = _bfs(graph, root)
    reachable = [v for v in graph.vertices() if dist[v] >= 0]
    max_level = max(dist[v] for v in reachable)
    levels = [[] for _ in range(max_level + 1)]
    for v in reachable:
        levels[dist[v]].append(v)
    total = len(reachable)
    best = None
    best_key = None
    below = 0
    for level_index in range(max_level + 1):
        level = levels[level_index]
        above = total - below - len(level)
        balanced = max(below, above) <= (2 * total) / 3.0
        key = (0 if balanced else 1, len(level) if balanced else max(below, above))
        if best_key is None or key < best_key:
            best_key = key
            best = level_index
        below += len(level)
    separator = list(levels[best])
    part_a = [v for idx in range(best) for v in levels[idx]]
    part_b = [v for idx in range(best + 1, max_level + 1) for v in levels[idx]]
    part_b.extend(v for v in graph.vertices() if dist[v] < 0)  # other components
    if not separator:  # single-level / degenerate cases
        separator = part_a or part_b
        part_a = []
    return separator, part_a, part_b


def geometric_separator(graph, points, axis=0):
    """Split at the median coordinate; separator = boundary of side A.

    ``points[v] = (x, y)``. Vertices at or below the median on ``axis``
    form side A; the subset of A adjacent to B is the separator. Returns
    ``(separator, part_a, part_b)``.
    """
    n = graph.n
    if len(points) != n:
        raise GraphError("one coordinate pair per vertex required")
    if n == 0:
        return [], [], []
    order = sorted(graph.vertices(), key=lambda v: (points[v][axis], v))
    half = n // 2
    side_a = set(order[:half]) if half else {order[0]}
    separator = []
    part_a = []
    for v in side_a:
        if any(w not in side_a for w in graph.neighbors(v)):
            separator.append(v)
        else:
            part_a.append(v)
    part_b = [v for v in graph.vertices() if v not in side_a]
    return sorted(separator), sorted(part_a), part_b


def build_separator_tree(graph, points=None, leaf_size=8, _ids=None, _axis=0):
    """Recursively separate ``graph`` into a :class:`SeparatorNode` tree.

    Uses the geometric separator when ``points`` are given (alternating
    the axis each level, a k-d-tree-style recursion), otherwise BFS
    levels. Regions of at most ``leaf_size`` vertices become leaves.
    """
    ids = list(graph.vertices()) if _ids is None else _ids
    if graph.n <= leaf_size:
        return SeparatorNode(ids)
    if points is not None:
        separator, part_a, part_b = geometric_separator(graph, points, axis=_axis)
    else:
        separator, part_a, part_b = bfs_level_separator(graph)
    if not part_a and not part_b:
        return SeparatorNode(ids)
    children = []
    for part in (part_a, part_b):
        if not part:
            continue
        subgraph, old_to_new = graph.induced_subgraph(part)
        child_ids = [None] * subgraph.n
        child_points = [None] * subgraph.n if points is not None else None
        for old, new in old_to_new.items():
            child_ids[new] = ids[old]
            if points is not None:
                child_points[new] = points[old]
        children.append(
            build_separator_tree(
                subgraph,
                points=child_points,
                leaf_size=leaf_size,
                _ids=child_ids,
                _axis=1 - _axis,
            )
        )
    return SeparatorNode([ids[v] for v in separator], children)


def preorder_vertices(node):
    """Preorder traversal of a separator tree — the §5.1 vertex order."""
    order = []
    stack = [node]
    while stack:
        current = stack.pop()
        order.extend(current.vertices)
        stack.extend(reversed(current.children))
    return order


def _bfs(graph, root):
    dist = [-1] * graph.n
    dist[root] = 0
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist
