"""Highway-dimension orders via greedy (r, k)-shortest-path covers (§5.3).

An (r, k)-SPC hits every shortest path of length in (r, 2r] while meeting
any ball of radius 2r in at most k vertices; the highway dimension h is
the smallest k making one exist for every r. Computing optimal SPCs is
intractable, so — like Abraham et al. [3] in practice — we build greedy
hitting sets over (a sample of) the shortest paths at each scale
r = 2^i, then rank vertices by the highest scale that selected them
(Theorem 5.3's layering L_i).
"""

import math
from collections import deque

from repro.graph.traversal import approximate_diameter
from repro.utils.rng import ensure_rng

INF = float("inf")


def sample_scale_paths(graph, r, samples, rng):
    """Sample shortest paths with length in ``(r, 2r]``.

    BFS from random roots; for each root, one path per reached vertex at
    an in-range distance (capped to keep sampling linear). Paths are
    vertex tuples.
    """
    n = graph.n
    paths = []
    attempts = 0
    while len(paths) < samples and attempts < samples * 3:
        attempts += 1
        root = rng.randrange(n)
        parent = [-1] * n
        dist = [INF] * n
        dist[root] = 0
        parent[root] = root
        queue = deque([root])
        in_range = []
        while queue:
            v = queue.popleft()
            if dist[v] >= 2 * r:
                continue
            for w in graph.neighbors(v):
                if dist[w] is INF:
                    dist[w] = dist[v] + 1
                    parent[w] = v
                    if r < dist[w] <= 2 * r:
                        in_range.append(w)
                    queue.append(w)
        rng.shuffle(in_range)
        for target in in_range[: max(1, samples // 8)]:
            path = [target]
            while path[-1] != root:
                path.append(parent[path[-1]])
            paths.append(tuple(path))
            if len(paths) >= samples:
                break
    return paths


def greedy_spc_cover(paths):
    """Greedy hitting set: repeatedly take the vertex on most uncovered paths."""
    uncovered = {index: set(path) for index, path in enumerate(paths)}
    hits = {}
    for index, members in uncovered.items():
        for v in members:
            hits.setdefault(v, set()).add(index)
    cover = []
    while uncovered:
        best = max(hits, key=lambda v: (len(hits[v]), -v))
        covered_now = list(hits[best])
        cover.append(best)
        for index in covered_now:
            for v in uncovered.pop(index):
                bucket = hits.get(v)
                if bucket is not None:
                    bucket.discard(index)
                    if not bucket:
                        del hits[v]
    return cover


def highway_order(graph, samples_per_scale=200, seed=0, return_layers=False):
    """The §5.3 order: high scales outrank low scales.

    ``C_i`` is a greedy cover of sampled paths at scale ``2^i``;
    ``L_i = C_i \\ ∪_{j>i} C_j``; vertices in higher layers come first,
    ties within a layer broken by descending degree. Leftover vertices
    (the paper's ``L_{-2} = V``) fill the tail.
    """
    rng = ensure_rng(seed)
    n = graph.n
    if n == 0:
        return ([], []) if return_layers else []
    diameter = max(1, approximate_diameter(graph))
    top = max(0, int(math.ceil(math.log2(diameter))))
    covers = {}
    for i in range(top, -1, -1):
        r = 2**i
        paths = sample_scale_paths(graph, r, samples_per_scale, rng)
        covers[i] = greedy_spc_cover(paths) if paths else []
    assigned = {}
    for i in range(top, -1, -1):  # higher scales claim vertices first
        for v in covers[i]:
            if v not in assigned:
                assigned[v] = i
    layers = [[] for _ in range(top + 2)]  # +1 slot for the leftover layer
    for v in range(n):
        scale = assigned.get(v, -1)
        layers[top - scale].append(v)
    order = []
    for layer in layers:
        order.extend(sorted(layer, key=lambda v: (-graph.degree(v), v)))
    if return_layers:
        return order, layers
    return order
