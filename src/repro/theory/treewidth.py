"""Tree decompositions and the §5.2 treewidth order.

Theorem 5.2: given a width-ω tree decomposition, rank vertices by the
depth of the *centroid decomposition* node that owns them (each vertex is
owned by its highest node after ancestor de-duplication); HP-SPC then
produces an (ω n log n, ω log n)-bounded labeling.

Exact treewidth is NP-hard; we build decompositions with the classic
min-degree elimination heuristic, which is exact on trees and chordal
graphs and near-optimal on the sparse graphs used here.
"""

import heapq

from repro.exceptions import GraphError


def min_degree_decomposition(graph):
    """Tree decomposition via min-degree elimination.

    Returns ``(bags, tree_edges, elimination_order, width)``: ``bags[i]``
    is a sorted vertex list (the bag created when eliminating
    ``elimination_order[i]``); ``tree_edges`` connect bag indexes;
    ``width`` is ``max |bag| - 1``.
    """
    n = graph.n
    if n == 0:
        return [], [], [], 0
    # Working adjacency as sets; fill edges are added during elimination.
    work = [set(graph.neighbors(v)) for v in range(n)]
    eliminated = [False] * n
    heap = [(len(work[v]), v) for v in range(n)]
    heapq.heapify(heap)
    bags = []
    bag_of = [None] * n  # vertex -> index of the bag created at its elimination
    elimination_order = []
    tree_edges = []
    while heap:
        degree, v = heapq.heappop(heap)
        if eliminated[v] or degree != len(work[v]):
            continue  # stale heap entry
        eliminated[v] = True
        elimination_order.append(v)
        neighbors = sorted(work[v])
        bag_index = len(bags)
        bags.append([v] + neighbors)
        bag_of[v] = bag_index
        # Connect v's bag to the bag of the next-eliminated bag member.
        for u in neighbors:
            work[u].discard(v)
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1 :]:
                if b not in work[a]:
                    work[a].add(b)
                    work[b].add(a)
        for u in neighbors:
            heapq.heappush(heap, (len(work[u]), u))
    # Tree edges: bag of v attaches to the bag of the earliest-eliminated
    # vertex among v's bag-mates eliminated after v.
    position = [0] * n
    for index, v in enumerate(elimination_order):
        position[v] = index
    for bag_index, bag in enumerate(bags):
        v = bag[0]
        later = [u for u in bag[1:] if position[u] > position[v]]
        if later:
            attach = min(later, key=lambda u: position[u])
            tree_edges.append((bag_index, bag_of[attach]))
    width = max((len(bag) - 1 for bag in bags), default=0)
    return bags, tree_edges, elimination_order, width


def verify_tree_decomposition(graph, bags, tree_edges):
    """Check the three tree-decomposition axioms (§5.2); raise on failure."""
    n = graph.n
    covered = set()
    for bag in bags:
        covered.update(bag)
    if covered != set(range(n)):
        raise GraphError("decomposition does not cover every vertex")
    bag_sets = [set(bag) for bag in bags]
    for u, v in graph.edges():
        if not any(u in bag and v in bag for bag in bag_sets):
            raise GraphError(f"edge ({u}, {v}) is in no bag")
    # Connectivity of each vertex's bag set within the tree.
    adjacency = [[] for _ in bags]
    for a, b in tree_edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    for v in range(n):
        nodes = [i for i, bag in enumerate(bag_sets) if v in bag]
        if not nodes:
            raise GraphError(f"vertex {v} missing from every bag")
        seen = {nodes[0]}
        stack = [nodes[0]]
        member = set(nodes)
        while stack:
            node = stack.pop()
            for other in adjacency[node]:
                if other in member and other not in seen:
                    seen.add(other)
                    stack.append(other)
        if seen != member:
            raise GraphError(f"bags containing vertex {v} are not connected")
    return True


def _centroid_levels(node_count, adjacency):
    """Centroid decomposition levels of a tree (or forest) on bag nodes."""
    level = [-1] * node_count
    removed = [False] * node_count

    def component_sizes(start):
        """DFS order (node, parent) plus subtree sizes rooted at ``start``."""
        order = []
        stack = [(start, -1)]
        while stack:
            node, parent = stack.pop()
            order.append((node, parent))
            for other in adjacency[node]:
                if other != parent and not removed[other]:
                    stack.append((other, node))
        size = {node: 1 for node, _ in order}
        for node, parent in reversed(order):
            if parent != -1:
                size[parent] += size[node]
        return order, size

    def find_centroid(start, size, total):
        node, parent = start, -1
        while True:
            heavy = None
            for other in adjacency[node]:
                if other != parent and not removed[other] and size[other] > total // 2:
                    heavy = other
                    break
            if heavy is None:
                # No child side is heavy; the parent side is light by the
                # walk invariant (we only ever step into a heavy child).
                return node
            parent, node = node, heavy

    pending = []
    for root in range(node_count):
        if level[root] < 0:
            pending.append((root, 0))
            while pending:
                start, depth = pending.pop()
                if removed[start]:
                    continue
                _, size = component_sizes(start)
                centroid = find_centroid(start, size, size[start])
                level[centroid] = depth
                removed[centroid] = True
                for other in adjacency[centroid]:
                    if not removed[other]:
                        pending.append((other, depth + 1))
    return level


def centroid_order(graph, decomposition=None):
    """The §5.2 vertex order from a (heuristic) tree decomposition.

    Each vertex is owned by its minimum-centroid-level bag; vertices are
    ranked by owner level (ancestors first), ties by bag then id. Returns
    ``(order, width)`` so callers can report the realised width.
    """
    if decomposition is None:
        decomposition = min_degree_decomposition(graph)
    bags, tree_edges, _, width = decomposition
    if not bags:
        return [], 0
    adjacency = [[] for _ in bags]
    for a, b in tree_edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    levels = _centroid_levels(len(bags), adjacency)
    owner_level = [None] * graph.n
    for bag_index, bag in enumerate(bags):
        bag_level = levels[bag_index]
        for v in bag:
            if owner_level[v] is None or bag_level < owner_level[v]:
                owner_level[v] = bag_level
    order = sorted(graph.vertices(), key=lambda v: (owner_level[v], v))
    return order, width


def treewidth_order(graph):
    """Convenience wrapper: just the §5.2 order (drops the width)."""
    return centroid_order(graph)[0]
