"""(α, β)-boundedness checks for the §5 theorems.

A labeling is (α, β) bounded when its total size is O(α) and its largest
label is O(β). Theorems 5.1-5.3 predict, for suitable orders:

* planar graphs            — (n^1.5, √n)
* treewidth-ω graphs       — (ω n log n, ω log n)
* highway-dimension-h      — (n h log D, h log D)

These helpers measure a labeling against a bound with an explicit
constant factor, so tests and the theory benchmark can assert the
predicted scaling on concrete inputs.
"""

import math


def boundedness(labels):
    """Measured ``(total, maximum)`` label sizes of a labeling."""
    sizes = labels.size_histogram()
    return sum(sizes), max(sizes, default=0)


def check_bounded(labels, alpha, beta, factor=4.0):
    """Whether the labeling is within ``factor`` of an (α, β) bound.

    Returns a report dict with both measured and allowed values; the
    ``ok`` flag is what tests assert.
    """
    total, biggest = boundedness(labels)
    allowed_total = factor * alpha
    allowed_max = factor * beta
    return {
        "total": total,
        "max": biggest,
        "alpha": alpha,
        "beta": beta,
        "allowed_total": allowed_total,
        "allowed_max": allowed_max,
        "ok": total <= allowed_total and biggest <= allowed_max,
    }


def planar_bound(n):
    """Theorem 5.1's (α, β) for an n-vertex planar graph."""
    return n**1.5, math.sqrt(n)


def treewidth_bound(n, width):
    """Theorem 5.2's (α, β) for treewidth ``width``."""
    log_n = max(1.0, math.log2(max(2, n)))
    return (width + 1) * n * log_n, (width + 1) * log_n


def highway_bound(n, h, diameter):
    """Theorem 5.3's (α, β) for highway dimension ``h`` and diameter D."""
    log_d = max(1.0, math.log2(max(2, diameter)))
    return n * h * log_d, h * log_d
