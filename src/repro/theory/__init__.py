"""§5 theory: orders that exploit planarity, treewidth and highway dimension."""

from repro.theory.bounds import boundedness, check_bounded
from repro.theory.highway import greedy_spc_cover, highway_order
from repro.theory.planar_order import planar_separator_order
from repro.theory.separators import (
    SeparatorNode,
    bfs_level_separator,
    build_separator_tree,
    geometric_separator,
    preorder_vertices,
)
from repro.theory.treewidth import (
    centroid_order,
    min_degree_decomposition,
    treewidth_order,
    verify_tree_decomposition,
)

__all__ = [
    "SeparatorNode",
    "bfs_level_separator",
    "geometric_separator",
    "build_separator_tree",
    "preorder_vertices",
    "planar_separator_order",
    "min_degree_decomposition",
    "centroid_order",
    "treewidth_order",
    "verify_tree_decomposition",
    "greedy_spc_cover",
    "highway_order",
    "boundedness",
    "check_bounded",
]
