"""HP-SPC_P: the separator-tree vertex order for planar graphs (§5.1).

Theorem 5.1: feeding HP-SPC the preorder of a recursive balanced-separator
tree yields a labeling that is (n^1.5, √n)-bounded on planar graphs —
for a vertex in node t, only vertices of t and its ancestors can be hubs.
"""

from repro.theory.separators import build_separator_tree, preorder_vertices


def planar_separator_order(graph, points=None, leaf_size=8, return_tree=False):
    """The §5.1 order: preorder over the recursive separator tree.

    ``points`` enables the geometric separator (use for Delaunay/grid
    inputs); otherwise BFS-level separators are used. With
    ``return_tree=True`` returns ``(order, tree)`` so PL-SPC and the
    boundedness checks can share the exact same decomposition.
    """
    tree = build_separator_tree(graph, points=points, leaf_size=leaf_size)
    order = preorder_vertices(tree)
    if sorted(order) != list(range(graph.n)):
        raise AssertionError("separator tree lost or duplicated vertices")
    return (order, tree) if return_tree else order
