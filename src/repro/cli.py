"""Command-line interface: build, query, inspect and verify indexes.

Usage (also available as ``python -m repro``):

    repro-spc info   graph.txt
    repro-spc build  graph.txt index.bin --ordering significant-path
    repro-spc build  graph.txt index.bin --workers 4
    repro-spc query  index.bin 12 9075
    repro-spc query  index.bin --random 5 --graph graph.txt --engine flat
    repro-spc stats  index.bin
    repro-spc verify index.bin graph.txt --samples 500
    repro-spc bench  index.bin --queries 2000 --engine both
    repro-spc serve-smoke index.bin graph.txt --random 500 --deadline-ms 20
    repro-spc build  graph.txt index.bin --engine csr --trace build-trace.json
    repro-spc build  graph.txt index.spcf --engine csr-batch --format flat
    repro-spc query  index.spcf --random 5 --engine flat --mmap
    repro-spc churn-smoke --vertices 800 --duration 5 --rate 8
    repro-spc metrics --vertices 500 --format prom

Graphs are whitespace edge lists (SNAP/KONECT style; ``#``/``%``
comments). ``build`` writes the paper's packed 64-bit binary format, so
indexes built here load anywhere the library runs. The CLI wraps the
plain HP-SPC index; the reduced variants are library-level APIs (their
query path needs reduction state that the binary format does not carry).

Failures exit with *distinct* codes so scripts can branch on the cause:
``1`` unexpected library/I/O error, ``2`` usage, ``3`` graph parse error,
``4`` index serialization/corruption, ``5`` invalid vertex id, ``6``
serving flow-control (deadline/overload/circuit).
"""

import argparse
import contextlib
import sys
import time

from repro.core.diagnostics import (
    label_statistics,
    validate_against_bfs,
    validate_structure,
)
from repro.core.index import SPCIndex
from repro.exceptions import (
    GraphParseError,
    QuerySyntaxError,
    ReproError,
    SerializationError,
    ServingError,
    VertexError,
)
from repro.graph.io import read_edge_list
from repro.io.serialize import load_index, save_index
from repro.query import Batch, QueryEngine, parse_query
from repro.utils.rng import random_pairs

EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PARSE = 3
EXIT_SERIALIZATION = 4
EXIT_VERTEX = 5
EXIT_SERVING = 6


@contextlib.contextmanager
def _maybe_trace(trace_path):
    """Install a fresh tracer for the body; dump JSON + text tree on exit.

    With ``trace_path`` falsy this is a no-op, keeping the disabled
    process-default tracer (zero overhead). On success the nested span
    tree is written to ``trace_path`` as JSON and printed as a
    flamegraph-style text tree; on failure no trace file is left behind.
    """
    if not trace_path:
        yield None
        return
    import json

    from repro.observability.tracing import Tracer, scoped_tracer

    tracer = Tracer()
    with scoped_tracer(tracer):
        yield tracer
    with open(trace_path, "w") as handle:
        json.dump(tracer.to_json(), handle, indent=2)
        handle.write("\n")
    print(f"trace: {tracer.span_count()} span(s) written to {trace_path}")
    tree = tracer.format_tree()
    if tree:
        print(tree)


def _cmd_info(args):
    from repro.graph.metrics import graph_summary

    graph, id_map = read_edge_list(args.graph)
    print(f"graph                : {args.graph}")
    print(f"vertices             : {graph.n} (ids compacted from {len(id_map)} originals)")
    for key, value in graph_summary(graph).items():
        if key in ("n",):
            continue
        if isinstance(value, float):
            print(f"{key:21s}: {value:.4f}")
        else:
            print(f"{key:21s}: {value}")
    return 0


def _cmd_build(args):
    import os

    from repro.io.serialize import WIDE_BITS, save_labels

    if args.resume and args.weighted:
        print("--resume is not supported for weighted builds", file=sys.stderr)
        return 2
    if args.resume and args.workers > 1:
        print("--resume needs a sequential build (--workers 1); the parallel "
              "builder retries failed tasks on its own", file=sys.stderr)
        return 2
    if args.engine == "csr-batch":
        if args.workers > 1:
            print("--engine csr-batch is single-process (its parallelism is "
                  "in-process rank batching); drop --workers", file=sys.stderr)
            return 2
        if args.resume:
            print("--resume is not supported for --engine csr-batch; its "
                  "builds stream to --spill instead", file=sys.stderr)
            return 2
    elif args.batch_size is not None or args.spill is not None:
        print("--batch-size/--spill require --engine csr-batch",
              file=sys.stderr)
        return 2
    if args.format != "packed" and args.weighted:
        print("--format flat needs an unweighted build (flat columns store "
              "integer distances)", file=sys.stderr)
        return 2

    with _maybe_trace(args.trace):
        # On failure, never leave a partial/stale artifact behind — but only
        # remove what *this* run created; a pre-existing index stays untouched
        # (saves are atomic, so it is still the old consistent bytes).
        preexisting = os.path.exists(args.index)
        try:
            if args.weighted:
                from repro.graph.io import read_weighted_edge_list
                from repro.weighted.labeling import build_weighted_labels

                graph, _ = read_weighted_edge_list(args.graph)
                print(f"building weighted HP-SPC over {graph.n} vertices / {graph.m} edges...")
                started = time.perf_counter()
                labels = build_weighted_labels(graph, ordering="degree")
                elapsed = time.perf_counter() - started
                # Weighted distances can exceed the 10-bit field: use the wide packing.
                written = save_labels(labels, args.index, bits=WIDE_BITS, strict=args.strict)
                entries = labels.total_entries()
            else:
                graph, _ = read_edge_list(args.graph)
                checkpoint = None
                if args.resume:
                    from repro.io.checkpoint import BuildCheckpoint

                    checkpoint = BuildCheckpoint(args.index + ".ckpt",
                                                 every=args.checkpoint_every)
                    if os.path.exists(checkpoint.path):
                        print(f"resuming from checkpoint {checkpoint.path}")
                parallel_note = f", workers: {args.workers}" if args.workers > 1 else ""
                print(f"building HP-SPC over {graph.n} vertices / {graph.m} edges "
                      f"(ordering: {args.ordering}, engine: {args.engine}{parallel_note})...")
                index = SPCIndex.build(graph, ordering=args.ordering, workers=args.workers,
                                       engine=args.engine, checkpoint=checkpoint,
                                       batch_size=args.batch_size,
                                       spill_dir=args.spill)
                if args.format == "packed":
                    written = save_index(index, args.index, strict=args.strict,
                                         graph=graph)
                else:
                    from repro.io.flat_store import save_flat_labels

                    encoding = "delta" if args.format == "flat-delta" else "raw"
                    written = save_flat_labels(index.to_flat(), args.index,
                                               graph=graph, encoding=encoding)
                elapsed = index.build_seconds
                entries = index.total_entries()
        except BaseException:
            # Covers ReproError, OSError, and hard interrupts (Ctrl-C) alike; a
            # checkpoint file, if any, survives for a later --resume.
            if not preexisting and os.path.exists(args.index):
                with contextlib.suppress(OSError):
                    os.remove(args.index)
                print(f"build failed: removed partial output {args.index}",
                      file=sys.stderr)
            raise
        print(f"built in {elapsed:.2f}s; {entries} entries; "
              f"wrote {written} bytes to {args.index}")
    return 0


def _cmd_query(args):
    index = load_index(args.index, mmap=args.mmap)
    if args.expr is not None:
        return _run_query_expr(args, index)
    pairs = []
    if args.random:
        if not args.graph:
            n = index.n
        else:
            n = read_edge_list(args.graph)[0].n
        pairs = list(random_pairs(n, args.random, rng=args.seed))
    elif args.s is not None and args.t is not None:
        pairs = [(args.s, args.t)]
    else:
        print("query needs either S and T or --random N", file=sys.stderr)
        return 2
    if args.engine == "flat":
        answers = index.count_many(pairs)
    else:
        answers = [index.count_with_distance(s, t) for s, t in pairs]
    print("     s       t    dist  #shortest-paths")
    for (s, t), (dist, count) in zip(pairs, answers):
        dist_text = str(dist) if count else "inf"
        print(f"{s:6d}  {t:6d}  {dist_text:>6}  {count}")
    return 0


def _run_query_expr(args, index):
    """``repro-spc query INDEX --expr '...'``: the compiled-query front end.

    Parses the compact textual form (docs/QUERYLANG.md), plans it over
    the index (plus the graph's BFS/matrix backends when ``--graph`` is
    given), optionally prints the plan, and prints one
    ``statement = answer`` line per statement.
    """
    try:
        node = parse_query(args.expr)
    except QuerySyntaxError as exc:
        print(f"query syntax error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    graph = read_edge_list(args.graph)[0] if args.graph else None
    engine = QueryEngine(index=index, graph=graph)
    if args.explain:
        print(engine.explain(node))
    answer = engine.run(node)
    if isinstance(node, Batch):
        statements, answers = node.queries, answer
    else:
        statements, answers = (node,), (answer,)
    for statement, value in zip(statements, answers):
        print(f"{statement!r} = {value!r}")
    return 0


def _cmd_stats(args):
    index = load_index(args.index)
    for key, value in label_statistics(index.labels).items():
        if isinstance(value, float):
            print(f"{key:22s} {value:.3f}")
        else:
            print(f"{key:22s} {value}")
    return 0


def _cmd_verify(args):
    index = load_index(args.index)
    graph, _ = read_edge_list(args.graph)
    if graph.n != index.labels.n:
        print(f"vertex count mismatch: index {index.labels.n}, graph {graph.n}",
              file=sys.stderr)
        return 1
    validate_structure(index.labels, graph)
    checked = validate_against_bfs(index.labels, graph, samples=args.samples,
                                   seed=args.seed)
    print(f"ok: structure valid; {checked} random queries match BFS")
    return 0


def _cmd_bench(args):
    from repro.bench.harness import time_batched_queries, time_queries

    index = load_index(args.index, mmap=args.mmap)
    n = index.n
    pairs = list(random_pairs(n, args.queries, rng=args.seed))
    engines = ("python", "flat") if args.engine == "both" else (args.engine,)
    for engine in engines:
        if engine == "flat":
            started = time.perf_counter()
            flat = index.to_flat()
            freeze = time.perf_counter() - started
            timing = time_batched_queries(flat, pairs, repeat=args.repeat)
            print(f"flat   engine: {timing.queries} queries, "
                  f"{timing.seconds_per_query * 1e6:.2f} us/query "
                  f"(freeze {freeze * 1e3:.1f} ms)")
        else:
            timing = time_queries(index, pairs, repeat=args.repeat)
            print(f"python engine: {timing.queries} queries, "
                  f"{timing.seconds_per_query * 1e6:.2f} us/query "
                  f"(p50 {timing.p50_seconds * 1e6:.2f}, "
                  f"p95 {timing.p95_seconds * 1e6:.2f})")
    return 0


def _cmd_serve_smoke(args):
    """Drive a request burst through :class:`SPCService` and report stats.

    Requests come from ``--script`` (lines ``S T``; directives
    ``!corrupt``, ``!restore``, ``!reload``, ``!sleep MS`` drive the
    chaos) or from ``--random N``. Exits 0 when every request ended in a
    terminal status and none hit an unexpected library error.
    """
    with _maybe_trace(args.trace):
        return _run_serve_smoke(args)


def _run_serve_smoke(args):
    """The ``serve-smoke`` body, run under an optional ``--trace`` tracer."""
    from repro.serving import ERROR, SPCService, TERMINAL_STATUSES

    graph, _ = read_edge_list(args.graph)
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    service = SPCService(
        graph, index_path=args.index, capacity=args.capacity,
        queue_limit=args.queue, default_deadline=deadline,
        failure_threshold=args.breaker_threshold,
        reset_timeout=args.breaker_reset_ms / 1000.0,
        reload_check_every=1, bfs_engine=args.bfs_engine,
    )

    flapper = None
    results = []

    def run_request(s, t):
        result = service.submit(s, t)
        if result.status not in TERMINAL_STATUSES:
            raise AssertionError(f"non-terminal status {result.status!r}")
        results.append(result)

    if args.script:
        from repro.testing.faults import FlappingFile

        with open(args.script) as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                if line.startswith("!"):
                    directive = line[1:].split()
                    if directive[0] == "corrupt":
                        if flapper is None:
                            flapper = FlappingFile(args.index)
                        flapper.corrupt(*directive[1:2])
                    elif directive[0] == "restore":
                        if flapper is None:
                            print(f"{args.script}:{line_no}: !restore before "
                                  "!corrupt", file=sys.stderr)
                            return EXIT_USAGE
                        flapper.restore()
                    elif directive[0] == "reload":
                        service.check_reload()
                    elif directive[0] == "sleep":
                        time.sleep(float(directive[1]) / 1000.0)
                    else:
                        print(f"{args.script}:{line_no}: unknown directive "
                              f"{line!r}", file=sys.stderr)
                        return EXIT_USAGE
                    continue
                parts = line.split()
                if len(parts) < 2:
                    print(f"{args.script}:{line_no}: expected 'S T'",
                          file=sys.stderr)
                    return EXIT_USAGE
                run_request(int(parts[0]), int(parts[1]))
    else:
        pairs = list(random_pairs(graph.n, args.random, rng=args.seed))
        if args.threads > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=args.threads) as pool:
                list(pool.map(lambda p: run_request(*p), pairs))
        else:
            for s, t in pairs:
                run_request(s, t)

    stats = service.stats()
    health = service.health()
    print(f"requests      : {len(results)}")
    for status in ("index", "degraded", "shed", "circuit_open", "deadline",
                   "invalid", "error"):
        print(f"{status:14s}: {stats['counters'][status]}")
    print(f"generation    : {stats['generation']}")
    print(f"reloads       : {stats['counters']['reloads']}")
    print(f"serving status: {health['status']}")
    if "breaker" in health:
        print(f"breaker state : {health['breaker']['state']}")
    if results:
        latencies = sorted(r.elapsed for r in results)
        p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        print(f"p95 latency   : {p95 * 1e3:.2f} ms")
    return 0 if stats["counters"][ERROR] == 0 else EXIT_ERROR


def _run_cluster_drill(service, script, out=sys.stdout):
    """Execute a fault-drill script against a live :class:`ClusterService`.

    Lines are either ``S T`` pair requests (submitted and gathered
    immediately) or ``!`` directives aimed at a worker slot index:

    ``!kill W``          SIGKILL worker ``W``'s current process
    ``!stall W``         SIGSTOP it (silent stall; heartbeats expose it)
    ``!resume W``        SIGCONT a previously stalled process
    ``!drain W``         graceful drain + respawn, waits for the handoff
    ``!reload``          poll the arena file for a new generation
    ``!sleep MS``        wall-clock pause
    ``!wait-healthy [S]``block until every slot serves again (default 10s)

    Returns the list of terminal results; raises ``ValueError`` on a
    malformed line (the caller maps that to a usage exit).
    """
    import os
    import signal

    results = []

    def pid_of(slot):
        workers = service.stats()["workers"]
        if not 0 <= slot < len(workers):
            raise ValueError(f"no worker slot {slot}")
        return workers[slot]["pid"]

    for line_no, raw in enumerate(script.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if line.startswith("!"):
                directive = line[1:].split()
                name = directive[0]
                if name == "kill":
                    os.kill(pid_of(int(directive[1])), signal.SIGKILL)
                    print(f"drill: killed worker {directive[1]}", file=out)
                elif name == "stall":
                    os.kill(pid_of(int(directive[1])), signal.SIGSTOP)
                    print(f"drill: stalled worker {directive[1]}", file=out)
                elif name == "resume":
                    with contextlib.suppress(ProcessLookupError):
                        os.kill(pid_of(int(directive[1])), signal.SIGCONT)
                    print(f"drill: resumed worker {directive[1]}", file=out)
                elif name == "drain":
                    slot = int(directive[1])
                    ok = service.drain(slot).result(timeout=30)
                    print(f"drill: drained worker {slot} "
                          f"(handoff {'ok' if ok else 'failed'})", file=out)
                elif name == "reload":
                    service.check_reload()
                elif name == "sleep":
                    time.sleep(float(directive[1]) / 1000.0)
                elif name == "wait-healthy":
                    budget = float(directive[1]) if len(directive) > 1 else 10.0
                    deadline = time.monotonic() + budget
                    while time.monotonic() < deadline:
                        workers = service.stats()["workers"]
                        if all(w["alive"] and w["state"] in ("idle", "busy")
                               for w in workers):
                            break
                        time.sleep(0.02)
                    else:
                        raise ValueError(
                            f"cluster not healthy after {budget:.1f}s")
                    print("drill: cluster healthy", file=out)
                else:
                    raise ValueError(f"unknown directive {line!r}")
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"expected 'S T', got {line!r}")
            result = service.submit(int(parts[0]), int(parts[1]))
            note = ""
            if result.degraded_shards:
                note = f" degraded_shards={result.degraded_shards}"
            print(f"{parts[0]} {parts[1]} -> {result.status}{note}", file=out)
            results.append(result)
        except (ValueError, IndexError) as exc:
            raise ValueError(f"line {line_no}: {exc}") from exc
    return results


def _cmd_serve_cluster(args):
    """Drive a request burst through the multiprocess cluster tier.

    Spawns ``--workers`` processes over one shared-memory SPCF arena,
    routes ``--random`` pair requests through the batching router
    (open-loop, then gathers every future), sprinkles in scatter-gather
    ``single_source`` sweeps when asked, and prints the same terminal
    status breakdown as ``serve-smoke`` plus per-worker memory-sharing
    evidence. ``--script`` switches to drill mode: a fault-injection
    script of ``S T`` requests and ``!kill``/``!stall``/``!drain``/...
    directives exercising the self-healing layer interactively. Exits 0
    when no request ended in an unexpected error.
    """
    from repro.serving import ERROR, TERMINAL_STATUSES
    from repro.serving.cluster import ClusterService

    graph = None
    if args.fallback_graph:
        graph, _ = read_edge_list(args.fallback_graph)
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    hedge = "auto" if args.hedge_delay_ms is None else (
        args.hedge_delay_ms / 1000.0 if args.hedge_delay_ms > 0 else None)
    with ClusterService(
        args.index, workers=args.workers, shards=args.shards,
        strategy=args.strategy, batch_window=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch, capacity=args.capacity,
        queue_limit=args.queue, default_deadline=deadline,
        respawn=args.respawn, respawn_backoff=args.respawn_backoff_ms / 1000.0,
        heartbeat_interval=args.heartbeat_ms / 1000.0,
        stall_timeout=args.stall_timeout_ms / 1000.0,
        hedge_delay=hedge, graph=graph,
    ) as service:
        if args.script:
            with open(args.script) as handle:
                script = handle.read()
            try:
                results = _run_cluster_drill(service, script)
            except ValueError as exc:
                print(f"{args.script}: {exc}", file=sys.stderr)
                return EXIT_USAGE
        else:
            pairs = list(random_pairs(service.n, args.random, rng=args.seed))
            futures = [service.submit_nowait(s, t) for s, t in pairs]
            results = [f.result() for f in futures]
        for result in results:
            if result.status not in TERMINAL_STATUSES:
                raise AssertionError(f"non-terminal status {result.status!r}")
        for k in range(args.single_source):
            result = service.single_source(k % service.n)
            results.append(result)
        stats = service.stats()
        print(f"requests      : {len(results)}")
        for status in ("index", "degraded", "shed", "circuit_open",
                       "deadline", "invalid", "error"):
            print(f"{status:14s}: {stats['counters'][status]}")
        print(f"batches       : {stats['counters']['batches']}")
        for counter in ("respawns", "stalls", "hedges", "hedge_wins",
                        "degraded_requests", "drains", "replays"):
            if stats["counters"].get(counter):
                print(f"{counter:14s}: {stats['counters'][counter]}")
        print(f"generation    : {stats['generation']}")
        print(f"workers       : "
              f"{sum(1 for w in stats['workers'] if w['state'] != 'dead')}"
              f"/{len(stats['workers'])} over {stats['shards']} shard(s)")
        if results:
            latencies = sorted(r.elapsed for r in results)
            p95 = latencies[min(len(latencies) - 1,
                                int(0.95 * len(latencies)))]
            print(f"p95 latency   : {p95 * 1e3:.2f} ms")
        try:
            for worker in service.worker_stats():
                print(f"worker pid={worker['pid']} "
                      f"rss={worker['rss_kb']} kB "
                      f"arena_rss={worker['map_rss_kb']} kB "
                      f"arena_private_dirty={worker['map_private_dirty_kb']} "
                      f"kB gen={worker['generation']}")
        except ReproError as exc:  # stats are best-effort evidence
            print(f"worker stats unavailable: {exc}", file=sys.stderr)
        return 0 if stats["counters"][ERROR] == 0 else EXIT_ERROR


def _cmd_churn_smoke(args):
    """Rehearse rebuild-behind maintenance under sustained edge churn.

    Runs :func:`repro.dynamic.streaming.run_streaming_scenario` — a
    mutator applying insert/delete batches through a
    :class:`~repro.dynamic.maintenance.MaintenanceController`, concurrent
    query threads checking every answer against a BFS oracle on the
    logical graph, and (optionally) an :class:`SPCService` fronting the
    published index file. Prints a summary; exits non-zero when any
    served answer was wrong or a harness thread failed. SLO breaches are
    reported but do not fail the command — they mean rebuilds lag the
    churn, not that answers went wrong.
    """
    import os
    import tempfile

    from repro.dynamic import MaintenanceSLO, run_streaming_scenario

    if args.graph:
        graph, _ = read_edge_list(args.graph)
    else:
        from repro.generators.random_graphs import barabasi_albert_graph

        graph = barabasi_albert_graph(args.vertices, 2, seed=args.seed)

    slo = MaintenanceSLO(max_staleness_seconds=args.slo_seconds,
                         max_pending_mutations=args.slo_pending)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = args.workdir or tmp
        os.makedirs(workdir, exist_ok=True)
        report = run_streaming_scenario(
            graph, workdir, duration=args.duration,
            churn_per_second=args.rate, delete_fraction=args.delete_fraction,
            query_threads=args.threads, rebuild_threshold=args.threshold,
            slo=slo, engine=args.engine, seed=args.seed,
            use_service=not args.no_service,
        )

    queries = report["queries"]
    staleness = report["staleness"]
    counters = report["controller"]["counters"]
    print(f"churn: {report['mutations']['inserts']} inserts, "
          f"{report['mutations']['deletes']} deletes over "
          f"{report['elapsed']:.1f}s")
    print(f"queries: {queries['total']} checked "
          f"({queries['qps']:.0f}/s), {len(queries['mismatches'])} wrong, "
          f"{queries['overlay_fallbacks']} BFS fallbacks")
    print(f"rebuilds: {counters['publishes']} published, "
          f"{counters['rebuild_retries']} retries, "
          f"{counters['rebuild_failures']} failures")
    print(f"staleness: p95={staleness['p95']:.2f}s "
          f"max={staleness['max']:.2f}s "
          f"pending_max={staleness['pending_max']} "
          f"(SLO {slo.max_staleness_seconds:.0f}s/"
          f"{slo.max_pending_mutations}; "
          f"{counters['slo_staleness_breaches']}+"
          f"{counters['slo_pending_breaches']} breaches)")
    if report.get("service") is not None:
        svc = report["service"]
        print(f"service: generation {svc['generation']}, "
              f"{svc['checked']} generation-checked answers, "
              f"{len(svc['mismatches'])} wrong, "
              f"{svc['counters']['reload_failures']} reload failures")
    for error in report["errors"]:
        print(f"harness error: {error}", file=sys.stderr)
    wrong = (len(queries["mismatches"])
             + len(report.get("service", {}).get("mismatches", ())))
    if wrong or report["errors"] or report["final_exact"] is False:
        print("churn smoke: FAILED", file=sys.stderr)
        return EXIT_ERROR
    print("churn smoke: every served answer exact")
    return 0


def _cmd_metrics(args):
    """Exercise build/query/serving on a small graph; dump the registry.

    The library's process-default registry is disabled (zero overhead), so
    a plain dump would be empty. This command installs a fresh enabled
    registry, runs a representative workload — index construction, flat
    batch queries, a burst of :class:`SPCService` requests — over
    ``--graph`` (or a generated scale-free graph), then prints every
    collected metric in the Prometheus text format and/or as JSON.
    """
    import json
    import os
    import tempfile

    from repro.observability.catalog import apply_help
    from repro.observability.metrics import (
        MetricsRegistry,
        render_prometheus,
        scoped_registry,
        snapshot,
    )

    if args.graph:
        graph, _ = read_edge_list(args.graph)
    else:
        from repro.generators.random_graphs import barabasi_albert_graph

        graph = barabasi_albert_graph(args.vertices, 3, seed=args.seed)

    registry = MetricsRegistry()
    with scoped_registry(registry):
        index = SPCIndex.build(graph, ordering="degree", engine=args.engine)
        pairs = list(random_pairs(graph.n, args.queries, rng=args.seed))
        index.count_many(pairs)

        from repro.serving import SPCService

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "index.bin")
            save_index(index, path, graph=graph)
            service = SPCService(graph, index_path=path, capacity=4)
            for s, t in pairs[:32]:
                service.submit(s, t)

    apply_help(registry)
    if args.format in ("prom", "both"):
        print(render_prometheus(registry), end="")
    if args.format in ("json", "both"):
        print(json.dumps(snapshot(registry), indent=2))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-spc",
        description="Hub labeling for shortest path counting (SIGMOD 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print statistics of an edge-list graph")
    p.add_argument("graph")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("build", help="build an index from an edge list")
    p.add_argument("graph")
    p.add_argument("index")
    p.add_argument("--ordering", default="degree",
                   choices=["degree", "significant-path"])
    p.add_argument("--strict", action="store_true",
                   help="fail on 31-bit count overflow instead of saturating")
    p.add_argument("--weighted", action="store_true",
                   help="treat the third edge-list column as edge weights")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="parallel construction processes (static orderings only)")
    p.add_argument("--engine", default="python",
                   choices=["python", "csr", "csr-batch"],
                   help="construction engine: scalar python, vectorized csr "
                        "kernels, or the rank-batched large-graph engine "
                        "(static orderings)")
    p.add_argument("--batch-size", type=int, default=None, metavar="B",
                   help="csr-batch: ranks swept per shared frontier pass "
                        "(default: auto-sized from the scratch budget)")
    p.add_argument("--spill", default=None, metavar="DIR",
                   help="csr-batch: stream label emission chunks to DIR "
                        "instead of holding them in RAM")
    p.add_argument("--format", default="packed",
                   choices=["packed", "flat", "flat-delta"],
                   help="output format: the paper's packed 64-bit entries, or "
                        "SPCF flat columns (exact counts, mmap-able; "
                        "flat-delta also delta-compresses the rank column)")
    p.add_argument("--resume", action="store_true",
                   help="checkpoint progress to INDEX.ckpt and resume from it "
                        "if a previous build was interrupted (sequential only)")
    p.add_argument("--checkpoint-every", type=int, default=200, metavar="K",
                   help="with --resume: save a checkpoint every K hub pushes")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record tracing spans during the build; write them as "
                        "JSON to FILE and print the nested span tree")
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("query", help="answer count queries from an index")
    p.add_argument("index")
    p.add_argument("s", nargs="?", type=int, default=None)
    p.add_argument("t", nargs="?", type=int, default=None)
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="answer N random pairs instead")
    p.add_argument("--expr", default=None, metavar="EXPR",
                   help="compiled-query program, e.g. 'count 0 4; distance "
                        "1 3; topk 3 samples=200' (see docs/QUERYLANG.md)")
    p.add_argument("--explain", action="store_true",
                   help="with --expr: print the planner's backend choice "
                        "per statement before the answers")
    p.add_argument("--graph", default=None,
                   help="graph file (for --random ids; with --expr it also "
                        "unlocks the BFS/matrix fallback backends)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", default="python", choices=["python", "flat"],
                   help="tuple-based merge joins or the vectorized flat engine")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map SPCF flat indexes instead of loading "
                        "them into RAM (ignored for packed files)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("stats", help="print label statistics of an index")
    p.add_argument("index")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("verify", help="validate an index against its graph")
    p.add_argument("index")
    p.add_argument("graph")
    p.add_argument("--samples", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("bench", help="time random queries against an index")
    p.add_argument("index")
    p.add_argument("--queries", type=int, default=1000)
    p.add_argument("--repeat", type=int, default=1,
                   help="time the workload this many times, report the best run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", default="python", choices=["python", "flat", "both"],
                   help="which query engine(s) to time")
    p.add_argument("--mmap", action="store_true",
                   help="memory-map SPCF flat indexes instead of loading "
                        "them into RAM (ignored for packed files)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("serve-smoke",
                       help="drive a request burst through SPCService")
    p.add_argument("index")
    p.add_argument("graph")
    p.add_argument("--random", type=int, default=200, metavar="N",
                   help="number of random request pairs (default 200)")
    p.add_argument("--script", default=None,
                   help="request script: 'S T' lines plus !corrupt/!restore/"
                        "!reload/!sleep MS directives")
    p.add_argument("--deadline-ms", type=float, default=50.0,
                   help="per-request deadline budget (0 = unlimited)")
    p.add_argument("--capacity", type=int, default=8,
                   help="max concurrently executing requests")
    p.add_argument("--queue", type=int, default=16,
                   help="admission queue slots before shedding")
    p.add_argument("--threads", type=int, default=1,
                   help="driver threads for --random mode")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive fallback failures before the circuit opens")
    p.add_argument("--breaker-reset-ms", type=float, default=500.0,
                   help="open-state cooldown before a half-open probe")
    p.add_argument("--bfs-engine", default="python", choices=["python", "csr"],
                   help="fallback BFS engine")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record tracing spans for the burst; write them as "
                        "JSON to FILE and print the nested span tree")
    p.set_defaults(func=_cmd_serve_smoke)

    p = sub.add_parser("serve-cluster",
                       help="drive a request burst through the "
                            "multiprocess shared-memory cluster")
    p.add_argument("index", help="SPCF flat label file (raw encoding)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes mapping the shared arena")
    p.add_argument("--shards", type=int, default=1,
                   help="shard pools to split routing across")
    p.add_argument("--strategy", default="range", choices=["range", "hash"],
                   help="vertex-to-shard assignment")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="max time a pair request waits to be coalesced")
    p.add_argument("--max-batch", type=int, default=64,
                   help="max pair requests per worker round-trip")
    p.add_argument("--deadline-ms", type=float, default=50.0,
                   help="per-request deadline budget (0 = unlimited)")
    p.add_argument("--capacity", type=int, default=64,
                   help="admission capacity before the overflow queue")
    p.add_argument("--queue", type=int, default=256,
                   help="admission overflow slots before shedding")
    p.add_argument("--random", type=int, default=500, metavar="N",
                   help="number of random request pairs (default 500)")
    p.add_argument("--single-source", type=int, default=0, metavar="K",
                   help="scatter-gather single-source sweeps to run too")
    p.add_argument("--script", default=None, metavar="FILE",
                   help="fault-drill script: 'S T' requests plus !kill W, "
                        "!stall W, !resume W, !drain W, !reload, !sleep MS "
                        "and !wait-healthy [S] directives (replaces --random)")
    p.add_argument("--no-respawn", dest="respawn", action="store_false",
                   help="fail fast on worker death instead of supervised "
                        "respawn")
    p.add_argument("--respawn-backoff-ms", type=float, default=50.0,
                   help="initial respawn backoff after a worker death")
    p.add_argument("--heartbeat-ms", type=float, default=500.0,
                   help="idle-worker PING interval (0 disables heartbeats)")
    p.add_argument("--stall-timeout-ms", type=float, default=2000.0,
                   help="silence budget before a stalled worker is killed")
    p.add_argument("--hedge-delay-ms", type=float, default=None,
                   help="fixed hedge delay for slow sub-requests "
                        "(default: auto from the p95 latency; 0 disables)")
    p.add_argument("--fallback-graph", default=None, metavar="GRAPH",
                   help="edge-list graph enabling exact BFS answers for "
                        "shards with no live worker (status 'degraded')")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve_cluster)

    p = sub.add_parser("churn-smoke",
                       help="rehearse rebuild-behind maintenance under "
                            "sustained edge churn with checked queries")
    p.add_argument("--graph", default=None,
                   help="edge-list graph to churn (default: generated "
                        "scale-free graph)")
    p.add_argument("--vertices", type=int, default=800, metavar="N",
                   help="size of the generated graph when no --graph is given")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds of sustained churn (default 5)")
    p.add_argument("--rate", type=float, default=8.0,
                   help="target mutations per second (default 8)")
    p.add_argument("--delete-fraction", type=float, default=0.4,
                   help="fraction of mutations that delete an edge")
    p.add_argument("--threads", type=int, default=2,
                   help="concurrent query threads (default 2)")
    p.add_argument("--threshold", type=int, default=16,
                   help="pending mutations triggering a background rebuild")
    p.add_argument("--slo-seconds", type=float, default=30.0,
                   help="max-staleness SLO in seconds")
    p.add_argument("--slo-pending", type=int, default=64,
                   help="max-staleness SLO in pending mutations")
    p.add_argument("--engine", default="csr",
                   choices=["python", "csr", "csr-batch"],
                   help="rebuild construction engine (default csr)")
    p.add_argument("--no-service", action="store_true",
                   help="skip the SPCService front (facade checks only)")
    p.add_argument("--workdir", default=None,
                   help="where to publish index files (default: temp dir)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_churn_smoke)

    p = sub.add_parser("metrics",
                       help="run a small instrumented workload and dump "
                            "build/query/serving metrics")
    p.add_argument("--graph", default=None,
                   help="edge-list graph to exercise (default: generated "
                        "scale-free graph)")
    p.add_argument("--vertices", type=int, default=300, metavar="N",
                   help="size of the generated graph when no --graph is given")
    p.add_argument("--queries", type=int, default=200, metavar="N",
                   help="random query pairs to run through the flat engine")
    p.add_argument("--engine", default="csr", choices=["python", "csr"],
                   help="construction engine to exercise")
    p.add_argument("--format", default="both", choices=["prom", "json", "both"],
                   help="output format: Prometheus text, JSON snapshot, or both")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_metrics)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GraphParseError as exc:
        print(f"graph parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE
    except VertexError as exc:
        print(f"invalid vertex: {exc}", file=sys.stderr)
        return EXIT_VERTEX
    except SerializationError as exc:
        print(f"index error: {exc}", file=sys.stderr)
        return EXIT_SERIALIZATION
    except ServingError as exc:
        print(f"serving error: {exc}", file=sys.stderr)
        return EXIT_SERVING
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
