"""Facade index for weighted directed graphs (§7).

Mirrors the undirected pipeline: optional shell cut, optional equivalence
quotient (λ multiplicities), directed hub pushing, optional
independent-set label dropping, and a query path that unwinds the stack.
Same-class twin queries are the one case §7 leaves unspecified for
weighted graphs (twins can be joined by arbitrarily-shaped shortest
paths); the index answers them exactly with an online Dijkstra on the
pre-quotient graph and documents the fallback.
"""

import time

from repro.core.query import merge_join_rows
from repro.directed.labeling import build_directed_labels, degree_order_directed
from repro.directed.reductions import (
    DirectedEquivalenceReduction,
    DirectedShellReduction,
)
from repro.exceptions import OrderingError
from repro.graph.traversal import spc_dijkstra

INF = float("inf")

VALID_REDUCTIONS = ("shell", "equivalence", "independent-set")


class DirectedSPCIndex:
    """Counting index over a :class:`~repro.graph.digraph.WeightedDigraph`."""

    def __init__(self, digraph, shell, equiv, core, l_in, l_out, in_is, scheme,
                 order, build_seconds=None):
        self._digraph = digraph
        self._shell = shell
        self._equiv = equiv
        self._core = core
        self._l_in = l_in
        self._l_out = l_out
        self._in_is = in_is
        self._scheme = scheme
        self._order = order
        self._mult = equiv.multiplicity if equiv else None
        self._build_seconds = build_seconds

    @classmethod
    def build(cls, digraph, ordering="degree", reductions=(), scheme="filtered"):
        reductions = tuple(reductions)
        for name in reductions:
            if name not in VALID_REDUCTIONS:
                raise ValueError(f"unknown reduction {name!r}; expected {VALID_REDUCTIONS}")
        if scheme not in ("filtered", "direct"):
            raise ValueError(f"unknown query scheme {scheme!r}")
        started = time.perf_counter()
        shell = DirectedShellReduction.compute(digraph) if "shell" in reductions else None
        core = shell.graph_reduced if shell else digraph
        equiv = DirectedEquivalenceReduction.compute(core) if "equivalence" in reductions else None
        if equiv is not None:
            core = equiv.graph_reduced
        multiplicity = equiv.multiplicity if equiv else None

        if ordering == "degree":
            order = degree_order_directed(core)
        else:
            order = list(ordering)
            if sorted(order) != list(range(core.n)):
                raise OrderingError("ordering must be a permutation of the core vertex set")
        in_is = [False] * core.n
        if "independent-set" in reductions:
            rank_of = [0] * core.n
            for rank, v in enumerate(order):
                rank_of[v] = rank
            for v in core.vertices():
                rv = rank_of[v]
                neighbors_outrank = all(
                    rank_of[x] < rv for x, _ in core.out_neighbors(v)
                ) and all(rank_of[x] < rv for x, _ in core.in_neighbors(v))
                in_is[v] = neighbors_outrank
        l_in, l_out = build_directed_labels(
            core, ordering=order, multiplicity=multiplicity, skip=in_is
        )
        elapsed = time.perf_counter() - started
        return cls(digraph, shell, equiv, core, l_in, l_out, in_is, scheme, order,
                   build_seconds=elapsed)

    # -- queries ---------------------------------------------------------------

    def count_with_distance(self, s, t):
        """``(sd(s -> t), spc(s -> t))`` in original vertex ids."""
        if s == t:
            return 0, 1
        offset = 0
        pre_quotient = self._shell.graph_reduced if self._shell else self._digraph
        if self._shell is not None:
            if self._shell.same_representative(s, t):
                return self._shell.tree_answer(s, t)
            up = self._shell.cost_to_representative(s)
            down = self._shell.cost_from_representative(t)
            if up == INF or down == INF:
                return INF, 0
            offset = up + down
            s = self._shell.project(s)
            t = self._shell.project(t)
        if self._equiv is not None:
            rs = self._equiv.eqr(s)
            rt = self._equiv.eqr(t)
            if rs == rt:
                # §7 fallback: twin pairs answered online on the
                # pre-quotient graph (exact; see module docstring).
                dist, cnt = spc_dijkstra(pre_quotient, s, t)
                return (dist + offset, cnt) if cnt else (INF, 0)
            s = self._equiv.old_to_new[rs]
            t = self._equiv.old_to_new[rt]
        dist, cnt = self._core_query(s, t)
        if cnt == 0:
            return INF, 0
        return dist + offset, cnt

    def count(self, s, t):
        """Number of shortest (minimum-weight) paths ``s -> t``."""
        return self.count_with_distance(s, t)[1]

    def distance(self, s, t):
        """Shortest-path weight ``s -> t``; ``inf`` when unreachable."""
        return self.count_with_distance(s, t)[0]

    # -- core-graph query machinery -----------------------------------------------

    def _core_query(self, s, t):
        s_dropped = self._in_is[s]
        t_dropped = self._in_is[t]
        if not s_dropped and not t_dropped:
            return merge_join_rows(
                self._l_out.merged(s), self._l_in.merged(t), s, t, self._mult
            )
        if self._scheme == "direct":
            return self._aggregate_query(s, t, s_dropped, t_dropped, filtered=False)
        return self._aggregate_query(s, t, s_dropped, t_dropped, filtered=True)

    def _sides(self, s, t, s_dropped, t_dropped):
        core = self._core
        if s_dropped:
            side_s = [(x, weight) for x, weight in core.out_neighbors(s)]
        else:
            side_s = [(s, 0)]
        if t_dropped:
            side_t = [(y, weight) for y, weight in core.in_neighbors(t)]
        else:
            side_t = [(t, 0)]
        return side_s, side_t

    def _k_factor(self, u, hub, dropped_side):
        if self._mult is None or not dropped_side or u == hub:
            return 1
        return self._mult[u]

    def _m_factor(self, hub, s, t, s_dropped, t_dropped):
        if self._mult is None:
            return 1
        if (hub == s and not s_dropped) or (hub == t and not t_dropped):
            return 1
        return self._mult[hub]

    def _aggregate_query(self, s, t, s_dropped, t_dropped, filtered):
        side_s, side_t = self._sides(s, t, s_dropped, t_dropped)
        if filtered:
            # Phase 1 on canonical labels: the exact distance plus the
            # on-path members of each side.
            dist_s = self._distance_map(side_s, self._l_out.canonical)
            delta = INF
            keep_t = []
            for u, offset in side_t:
                best = INF
                for _, hub, dist, _ in self._l_in.canonical(u):
                    found = dist_s.get(hub)
                    if found is not None and found + dist < best:
                        best = found + dist
                total = best + offset
                if total < delta:
                    delta = total
                    keep_t = [(u, offset)]
                elif total == delta and total != INF:
                    keep_t.append((u, offset))
            if delta == INF:
                return INF, 0
            if len(side_s) == 1:
                keep_s = side_s  # the endpoint itself is trivially on-path
            else:
                dist_t = self._distance_map(side_t, self._l_in.canonical)
                keep_s = [
                    (u, offset)
                    for u, offset in side_s
                    if self._best_through(u, offset, dist_t, self._l_out.canonical)
                    == delta
                ]
            side_s, side_t = keep_s, keep_t
        agg = {}
        for u, offset in side_s:
            for _, hub, dist, cnt in self._l_out.merged(u):
                total = dist + offset
                term = cnt * self._k_factor(u, hub, s_dropped)
                found = agg.get(hub)
                if found is None or total < found[0]:
                    agg[hub] = (total, term)
                elif total == found[0]:
                    agg[hub] = (total, found[1] + term)
        delta = INF
        sigma = 0
        for u, offset in side_t:
            for _, hub, dist, cnt in self._l_in.merged(u):
                found = agg.get(hub)
                if found is None:
                    continue
                total = found[0] + dist + offset
                if total > delta:
                    continue
                term = (
                    found[1]
                    * cnt
                    * self._k_factor(u, hub, t_dropped)
                    * self._m_factor(hub, s, t, s_dropped, t_dropped)
                )
                if total < delta:
                    delta = total
                    sigma = term
                else:
                    sigma += term
        if sigma == 0:
            return INF, 0
        return delta, sigma

    def _distance_map(self, side, label_of):
        out = {}
        for u, offset in side:
            for _, hub, dist, _ in label_of(u):
                total = dist + offset
                if total < out.get(hub, INF):
                    out[hub] = total
        return out

    @staticmethod
    def _best_through(u, offset, other_map, label_of):
        best = INF
        for _, hub, dist, _ in label_of(u):
            found = other_map.get(hub)
            if found is not None and found + dist < best:
                best = found + dist
        return best + offset

    # -- introspection --------------------------------------------------------------

    @property
    def labels_in(self):
        return self._l_in

    @property
    def labels_out(self):
        return self._l_out

    @property
    def order(self):
        return tuple(self._order)

    @property
    def build_seconds(self):
        return self._build_seconds

    def total_entries(self):
        return self._l_in.total_entries() + self._l_out.total_entries()

    def size_bytes(self, entry_bits=64):
        return self._l_in.packed_size_bytes(entry_bits) + self._l_out.packed_size_bytes(
            entry_bits
        )

    def __repr__(self):
        return f"DirectedSPCIndex(n={self._digraph.n}, entries={self.total_entries()})"
