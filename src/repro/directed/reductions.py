"""Directed/weighted versions of the §4 reductions, as sketched in §7.

* **1-shell** — computed on the undirected view; each shell component is
  still a tree reachable through one undirected access edge, so in-tree
  (and tree-to-core) connectivity reduces to walking the unique tree path
  and checking each arc exists in the needed direction (the §7
  "reachability oracle", trivial for trees).
* **Neighborhood equivalence** — the five-condition relation of §7.
  Non-adjacent twins hash directly on their exact weighted in/out lists;
  adjacent twins are bucketed by a relaxed key (neighbor ids plus self)
  and verified pairwise with :func:`directed_equivalent`.
* **Independent set** — identical to §4.3 with both directions' neighbors
  and per-arc weight offsets; handled by the directed index itself.
"""

from collections import deque

from repro.graph.cores import one_shell_components

INF = float("inf")


class DirectedShellReduction:
    """1-shell cutting for weighted digraphs."""

    def __init__(self, digraph, undirected, shr, depth, parent, reduced, old_to_new):
        self._digraph = digraph
        self._shr = shr
        self._depth = depth
        self._parent = parent
        self.graph_reduced = reduced
        self.old_to_new = old_to_new
        self.new_to_old = [None] * reduced.n
        for old, new in old_to_new.items():
            self.new_to_old[new] = old

    @classmethod
    def compute(cls, digraph):
        from repro.graph.builders import undirect

        undirected = undirect(digraph)
        n = digraph.n
        shr = list(range(n))
        depth = [0] * n
        parent = list(range(n))
        for component, access in one_shell_components(undirected):
            members = set(component)
            queue = deque([access])
            seen_local = {access}
            while queue:
                u = queue.popleft()
                for w in undirected.neighbors(u):
                    if w in members and w not in seen_local:
                        seen_local.add(w)
                        parent[w] = u
                        depth[w] = depth[u] + 1
                        shr[w] = access
                        queue.append(w)
        keep = [v for v in range(n) if shr[v] == v]
        reduced, old_to_new = digraph.induced_subgraph(keep)
        return cls(digraph, undirected, shr, depth, parent, reduced, old_to_new)

    def shr(self, v):
        return self._shr[v]

    @property
    def removed_count(self):
        return self._digraph.n - self.graph_reduced.n

    def same_representative(self, s, t):
        return self._shr[s] == self._shr[t]

    def project(self, v):
        return self.old_to_new[self._shr[v]]

    # -- directed tree-path costs -------------------------------------------------

    def cost_to_representative(self, v):
        """Weight of the directed walk ``v -> shr(v)`` along the tree; inf if an arc is missing."""
        total = 0
        node = v
        while node != self._shr[v]:
            weight = self._digraph.weight(node, self._parent[node])
            if weight is None:
                return INF
            total += weight
            node = self._parent[node]
        return total

    def cost_from_representative(self, v):
        """Weight of the directed walk ``shr(v) -> v`` along the tree; inf if an arc is missing."""
        total = 0
        node = v
        while node != self._shr[v]:
            weight = self._digraph.weight(self._parent[node], node)
            if weight is None:
                return INF
            total += weight
            node = self._parent[node]
        return total

    def tree_answer(self, s, t):
        """``(distance, count)`` for a same-representative pair.

        The unique undirected tree path is walked through the LCA; the
        count is 1 exactly when every arc exists in the travel direction
        (the §7 per-component reachability oracle).
        """
        if self._shr[s] != self._shr[t]:
            raise ValueError("tree_answer requires shr(s) == shr(t)")
        # Lift both endpoints to equal depth, then in lockstep to the LCA,
        # summing arc weights in the direction of travel.
        a, b = s, t
        up_cost = 0
        down_cost = 0
        da, db = self._depth[a], self._depth[b]
        while da > db:
            weight = self._digraph.weight(a, self._parent[a])
            if weight is None:
                return INF, 0
            up_cost += weight
            a = self._parent[a]
            da -= 1
        while db > da:
            weight = self._digraph.weight(self._parent[b], b)
            if weight is None:
                return INF, 0
            down_cost += weight
            b = self._parent[b]
            db -= 1
        while a != b:
            weight_up = self._digraph.weight(a, self._parent[a])
            weight_down = self._digraph.weight(self._parent[b], b)
            if weight_up is None or weight_down is None:
                return INF, 0
            up_cost += weight_up
            down_cost += weight_down
            a = self._parent[a]
            b = self._parent[b]
        return up_cost + down_cost, 1


def directed_equivalent(digraph, u, v):
    """The five-condition neighborhood equivalence of §7."""
    if u == v:
        return True
    w_uv = digraph.weight(u, v)
    w_vu = digraph.weight(v, u)
    if (w_uv is None) != (w_vu is None):
        return False  # condition (1): reciprocity
    if w_uv is not None and w_uv != w_vu:
        return False  # condition (1): equal mutual weights
    in_u = {x: wt for x, wt in digraph.in_neighbors(u) if x != v}
    in_v = {x: wt for x, wt in digraph.in_neighbors(v) if x != u}
    if in_u != in_v:
        return False  # conditions (2) + (3)
    out_u = {x: wt for x, wt in digraph.out_neighbors(u) if x != v}
    out_v = {x: wt for x, wt in digraph.out_neighbors(v) if x != u}
    return out_u == out_v  # conditions (4) + (5)


class DirectedEquivalenceReduction:
    """The §7 equivalence partition and reduced weighted digraph."""

    def __init__(self, digraph, eqr, class_size, adjacent_class, reduced, old_to_new):
        self._digraph = digraph
        self._eqr = eqr
        self._class_size = class_size
        self._adjacent_class = adjacent_class
        self.graph_reduced = reduced
        self.old_to_new = old_to_new
        self.new_to_old = [None] * reduced.n
        for old, new in old_to_new.items():
            self.new_to_old[new] = old
        self.multiplicity = [0] * reduced.n
        for old, new in old_to_new.items():
            self.multiplicity[new] = class_size[old]

    @classmethod
    def compute(cls, digraph):
        n = digraph.n
        eqr = list(range(n))
        class_size = [1] * n
        adjacent_class = [False] * n
        # Pass 1: non-adjacent twins — exact weighted in/out lists match.
        open_groups = {}
        for v in range(n):
            key = (digraph.in_neighbors(v), digraph.out_neighbors(v))
            open_groups.setdefault(key, []).append(v)
        assigned = [False] * n
        for members in open_groups.values():
            if len(members) < 2:
                continue
            rep = members[0]
            for v in members:
                assigned[v] = True
                eqr[v] = rep
                class_size[v] = len(members)
        # Pass 2: adjacent twins — relaxed bucket, pairwise verification.
        buckets = {}
        for v in range(n):
            if assigned[v]:
                continue
            ids = {x for x, _ in digraph.in_neighbors(v)}
            ids.update(x for x, _ in digraph.out_neighbors(v))
            ids.add(v)
            buckets.setdefault(tuple(sorted(ids)), []).append(v)
        for members in buckets.values():
            if len(members) < 2:
                continue
            # ≡ is transitive, so grouping by "equivalent to the first
            # unclaimed member" recovers the classes.
            remaining = list(members)
            while remaining:
                seed_vertex = remaining[0]
                cls_members = [seed_vertex]
                rest = []
                for other in remaining[1:]:
                    if directed_equivalent(digraph, seed_vertex, other):
                        cls_members.append(other)
                    else:
                        rest.append(other)
                remaining = rest
                if len(cls_members) >= 2:
                    rep = min(cls_members)
                    for v in cls_members:
                        eqr[v] = rep
                        class_size[v] = len(cls_members)
                        adjacent_class[v] = True
        keep = [v for v in range(n) if eqr[v] == v]
        reduced, old_to_new = digraph.induced_subgraph(keep)
        return cls(digraph, eqr, class_size, adjacent_class, reduced, old_to_new)

    def eqr(self, v):
        return self._eqr[v]

    def eqc_size(self, v):
        return self._class_size[v]

    def is_adjacent_class(self, v):
        return self._adjacent_class[v]

    @property
    def removed_count(self):
        return self._digraph.n - self.graph_reduced.n

    def project(self, v):
        return self.old_to_new[self._eqr[v]]
