"""Directed hub pushing with Dijkstra (§7).

Each vertex gets two labels: ``w ∈ L^in(v)`` iff a trough shortest path
runs ``w -> v``, and ``w ∈ L^out(v)`` iff one runs ``v -> w``. Pushing hub
``w`` therefore runs a *forward* Dijkstra (filling other vertices'
``L^in``) and a *backward* Dijkstra (filling ``L^out``), both restricted
to not-yet-pushed vertices. The pruning join for the forward direction
asks for the best ``w -> v`` distance through higher-ranked vertices:
``min_h sd(w, h) + sd(h, v)`` over ``h ∈ L^out_c(w) ∩ L^in_c(v)`` —
mirrored for the backward direction.

Strictly positive edge weights make a popped vertex's count final, so the
canonical/non-canonical classification works exactly as in the BFS case.
``multiplicity`` and ``skip`` have the same semantics as the undirected
engine (equivalence λ-weights and the independent-set reduction).
"""

import heapq

from repro.core.labels import LabelSet
from repro.exceptions import OrderingError

INF = float("inf")


def degree_order_directed(digraph):
    """Non-ascending total degree (in + out), ties by id — §7's default."""
    return sorted(
        digraph.vertices(),
        key=lambda v: (-(digraph.in_degree(v) + digraph.out_degree(v)), v),
    )


def build_directed_labels(digraph, ordering="degree", multiplicity=None, skip=None, prune=True):
    """Run directed HP-SPC; returns ``(l_in, l_out)`` finalized label sets."""
    n = digraph.n
    if ordering == "degree":
        order = degree_order_directed(digraph)
    else:
        order = list(ordering)
        if sorted(order) != list(range(n)):
            raise OrderingError("ordering must be a permutation of the vertex set")
    mult = list(multiplicity) if multiplicity is not None else None
    skip_flags = list(skip) if skip is not None else [False] * n

    l_in = LabelSet(n)
    l_out = LabelSet(n)
    dist = [INF] * n
    count = [0] * n
    settled = [False] * n
    hub_dist = [INF] * n
    pushed = [False] * n

    for rank, w in enumerate(order):
        pushed[w] = True
        # Forward: paths w -> v; prune against L^out_c(w) x L^in_c(v).
        _push_direction(
            digraph, w, rank, True, l_out, l_in,
            dist, count, settled, hub_dist, pushed, mult, skip_flags, prune,
        )
        # Backward: paths v -> w; prune against L^in_c(w) x L^out_c(v).
        _push_direction(
            digraph, w, rank, False, l_in, l_out,
            dist, count, settled, hub_dist, pushed, mult, skip_flags, prune,
        )

    l_in.set_order(order)
    l_out.set_order(order)
    l_in.finalize()
    l_out.finalize()
    return l_in, l_out


def _push_direction(
    digraph, w, rank, forward, scatter_labels, target_labels,
    dist, count, settled, hub_dist, pushed, mult, skip_flags, prune,
):
    """One Dijkstra sweep from ``w``; appends into ``target_labels``.

    ``scatter_labels`` provides the hub's side of the pruning join
    (``L^out(w)`` when searching forward, ``L^in(w)`` backward);
    ``target_labels`` receives entries (``L^in`` forward, ``L^out``
    backward) and provides each popped vertex's join side.
    """
    touched_hubs = []
    if prune:
        for _, hub, hub_distance, _ in scatter_labels._canonical[w]:
            hub_dist[hub] = hub_distance
            touched_hubs.append(hub)
    neighbors = digraph.out_neighbors if forward else digraph.in_neighbors
    canonical = target_labels._canonical
    noncanonical = target_labels._noncanonical

    dist[w] = 0
    count[w] = 1
    heap = [(0, w)]
    visited = [w]
    while heap:
        dv, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        if v == w:
            if not skip_flags[w]:
                canonical[w].append((rank, w, 0, 1))
        elif not skip_flags[v]:
            if prune:
                best = min(
                    (hub_dist[hub] + hub_distance
                     for _, hub, hub_distance, _ in canonical[v]),
                    default=INF,
                )
                if best < dv:
                    continue  # pruned: do not relax out of v
                if best == dv:
                    noncanonical[v].append((rank, w, dv, count[v]))
                else:
                    canonical[v].append((rank, w, dv, count[v]))
            else:
                canonical[v].append((rank, w, dv, count[v]))
        forwarded = count[v] if (mult is None or v == w) else count[v] * mult[v]
        for v2, weight in neighbors(v):
            if pushed[v2] and v2 != w:
                continue
            alt = dv + weight
            d2 = dist[v2]
            if alt < d2:
                dist[v2] = alt
                count[v2] = forwarded
                heapq.heappush(heap, (alt, v2))
                if d2 is INF:
                    visited.append(v2)
            elif alt == d2 and not settled[v2]:
                count[v2] += forwarded
    for v in visited:
        dist[v] = INF
        count[v] = 0
        settled[v] = False
    for hub in touched_hubs:
        hub_dist[hub] = INF
