"""§7: hub labeling for counting on weighted directed graphs."""

from repro.directed.index import DirectedSPCIndex
from repro.directed.labeling import build_directed_labels, degree_order_directed
from repro.directed.reductions import (
    DirectedEquivalenceReduction,
    DirectedShellReduction,
    directed_equivalent,
)

__all__ = [
    "DirectedSPCIndex",
    "build_directed_labels",
    "degree_order_directed",
    "DirectedShellReduction",
    "DirectedEquivalenceReduction",
    "directed_equivalent",
]
