"""Graceful query-time degradation: serve from the index when healthy,
fall back to online BFS when not.

A production counting service must answer even when its index file is
missing, truncated, bit-flipped, or built for yesterday's graph. A
:class:`ResilientSPCIndex` wraps that policy:

* **load + verify** — the index file is read through the checksummed v3
  loader and its stored graph fingerprint (n, m, degree hash) is checked
  against the live graph; any failure is recorded and demotes the serving
  path instead of crashing.
* **serve** — healthy indexes answer through :class:`~repro.core.index
  .SPCIndex` (including the vectorized flat engine for batches); degraded
  state answers through the exact online
  :class:`~repro.baselines.bfs_counting.BFSCountingOracle` — slower but
  always correct, never a wrong count.
* **observe** — ``counters`` tallies index hits, fallback hits, load and
  verification failures, so operators can alarm on degradation;
  ``last_error`` keeps the typed reason.

Invalid vertex ids raise :class:`~repro.exceptions.VertexError` on both
paths — degradation never converts a caller bug into a silent answer.
"""

from repro.baselines.bfs_counting import BFSCountingOracle
from repro.core.index import SPCIndex
from repro.exceptions import (
    LabelingError,
    ReproError,
    SerializationError,
    StaleIndexError,
    VertexError,
)
from repro.io.serialize import graph_fingerprint, load_labels_with_meta


class ResilientSPCIndex:
    """Shortest-path-counting facade that degrades instead of failing.

    Parameters
    ----------
    graph:
        The live :class:`~repro.graph.graph.Graph` queries refer to.
    index_path:
        Optional path to a persisted index (:func:`repro.io.serialize
        .save_index`). Missing/corrupt/stale files put the facade in
        degraded (BFS) mode rather than raising.
    index:
        Alternatively, an in-memory :class:`SPCIndex` to adopt (still
        verified against the graph's vertex count).
    bfs_engine:
        Engine for the fallback oracle (``"python"`` or ``"csr"``).
    io_retries:
        Transient-``OSError`` re-reads attempted by the loader.
    require_fingerprint:
        When True, refuse to serve from index files that carry no graph
        fingerprint (legacy v2 saves) instead of trusting a vertex-count
        check.
    """

    def __init__(self, graph, index_path=None, index=None, bfs_engine="python",
                 io_retries=1, require_fingerprint=False):
        self._graph = graph
        self._path = index_path
        self._io_retries = io_retries
        self._require_fingerprint = require_fingerprint
        self._oracle = BFSCountingOracle(graph, engine=bfs_engine)
        self._index = None
        self._last_error = None
        self.counters = {
            "index_queries": 0,
            "fallback_queries": 0,
            "load_failures": 0,
            "verify_failures": 0,
            "query_failures": 0,
        }
        if index is not None:
            if index.labels.n != graph.n:
                self.counters["verify_failures"] += 1
                self._last_error = StaleIndexError(
                    graph_fingerprint(graph), (index.labels.n, None, None),
                    context="in-memory index",
                )
            else:
                self._index = index
        elif index_path is not None:
            self.reload()

    # -- lifecycle -----------------------------------------------------------

    def reload(self):
        """(Re)load and verify the index file; True when now serving from it.

        Every failure mode is recorded (``load_failures`` for I/O and
        format corruption, ``verify_failures`` for fingerprint mismatches)
        and leaves the facade in degraded mode with ``last_error`` set.
        """
        self._index = None
        self._last_error = None
        try:
            labels, meta = load_labels_with_meta(
                self._path, retries=self._io_retries
            )
        except (OSError, ReproError) as exc:
            self.counters["load_failures"] += 1
            self._last_error = exc
            return False
        live = graph_fingerprint(self._graph)
        if meta.fingerprint is not None:
            if meta.fingerprint != live:
                self.counters["verify_failures"] += 1
                self._last_error = StaleIndexError(
                    live, meta.fingerprint, context=str(self._path)
                )
                return False
        elif self._require_fingerprint:
            self.counters["verify_failures"] += 1
            self._last_error = SerializationError(
                f"{self._path}: index carries no graph fingerprint "
                "(require_fingerprint=True)"
            )
            return False
        elif labels.n != self._graph.n:
            self.counters["verify_failures"] += 1
            self._last_error = StaleIndexError(
                live, (labels.n, None, None), context=str(self._path)
            )
            return False
        self._index = SPCIndex(labels)
        return True

    @property
    def status(self):
        """``"index"`` when serving from labels, ``"degraded"`` on BFS."""
        return "index" if self._index is not None else "degraded"

    @property
    def last_error(self):
        """The typed error that caused the last load/verify failure, if any."""
        return self._last_error

    def explain(self):
        """Operator snapshot: serving path, counters, and last error."""
        return {
            "status": self.status,
            "index_path": None if self._path is None else str(self._path),
            "counters": dict(self.counters),
            "last_error": None if self._last_error is None
            else f"{type(self._last_error).__name__}: {self._last_error}",
        }

    # -- queries -------------------------------------------------------------

    def _check_vertex(self, v):
        if not isinstance(v, int) or not 0 <= v < self._graph.n:
            raise VertexError(v, self._graph.n)

    def count_with_distance(self, s, t):
        """``(sd(s,t), spc(s,t))`` — from the index, or BFS when degraded."""
        self._check_vertex(s)
        self._check_vertex(t)
        if self._index is not None:
            try:
                answer = self._index.count_with_distance(s, t)
            except (SerializationError, LabelingError) as exc:
                # The loaded index misbehaved at query time: demote it and
                # keep serving — the BFS answer below is exact.
                self.counters["query_failures"] += 1
                self._last_error = exc
                self._index = None
            else:
                self.counters["index_queries"] += 1
                return answer
        self.counters["fallback_queries"] += 1
        return self._oracle.count_with_distance(s, t)

    def count(self, s, t):
        """``spc(s, t)``: the number of shortest paths (0 if disconnected)."""
        return self.count_with_distance(s, t)[1]

    def distance(self, s, t):
        """``sd(s, t)``; ``inf`` when disconnected."""
        return self.count_with_distance(s, t)[0]

    def count_many(self, pairs):
        """Batched ``(sd, spc)`` tuples; vectorized when the index is healthy."""
        pairs = list(pairs)
        for s, t in pairs:
            self._check_vertex(s)
            self._check_vertex(t)
        if self._index is not None:
            try:
                answers = self._index.count_many(pairs)
            except (SerializationError, LabelingError) as exc:
                self.counters["query_failures"] += 1
                self._last_error = exc
                self._index = None
            else:
                self.counters["index_queries"] += len(pairs)
                return answers
        self.counters["fallback_queries"] += len(pairs)
        return [self._oracle.count_with_distance(s, t) for s, t in pairs]

    def __repr__(self):
        return (
            f"ResilientSPCIndex(n={self._graph.n}, status={self.status!r}, "
            f"fallback_queries={self.counters['fallback_queries']})"
        )
