"""Graceful query-time degradation: serve from the index when healthy,
fall back to online BFS when not.

A production counting service must answer even when its index file is
missing, truncated, bit-flipped, or built for yesterday's graph. A
:class:`ResilientSPCIndex` wraps that policy:

* **load + verify** — the index file is read through the checksummed v3
  loader and its stored graph fingerprint (n, m, degree hash) is checked
  against the live graph; any failure is recorded and demotes the serving
  path instead of crashing.
* **serve** — healthy indexes answer through :class:`~repro.core.index
  .SPCIndex` (including the vectorized flat engine for batches); degraded
  state answers through the exact online
  :class:`~repro.baselines.bfs_counting.BFSCountingOracle` — slower but
  always correct, never a wrong count.
* **observe** — ``counters`` tallies index hits, fallback hits, load,
  verification and staleness failures, so operators can alarm on
  degradation; ``last_error`` keeps the typed reason; ``generation``
  counts successful (re)loads so hot swaps are visible downstream.
* **defend** — every query accepts a ``deadline`` (:class:`repro.serving
  .Deadline`) that the BFS fallback honours between levels, and an
  optional :class:`~repro.serving.breaker.CircuitBreaker` gates the
  fallback path: when the degraded path keeps timing out, queries fail
  fast with :class:`~repro.exceptions.CircuitOpenError` instead of each
  burning a full deadline.

All state transitions (index swap, demotion, counters) happen under one
lock, and queries snapshot the index reference once — concurrent readers
never see a torn swap. Invalid vertex ids raise
:class:`~repro.exceptions.VertexError` on both paths — degradation never
converts a caller bug into a silent answer.
"""

import threading

from repro.baselines.bfs_counting import BFSCountingOracle
from repro.core.index import SPCIndex
from repro.exceptions import (
    DeadlineExceeded,
    LabelingError,
    ReproError,
    SerializationError,
    StaleIndexError,
    VertexError,
)
from repro.io.serialize import graph_fingerprint, load_labels_with_meta
from repro.observability.events import get_event_log
from repro.observability.metrics import get_registry


class ResilientSPCIndex:
    """Shortest-path-counting facade that degrades instead of failing.

    Parameters
    ----------
    graph:
        The live :class:`~repro.graph.graph.Graph` queries refer to.
    index_path:
        Optional path to a persisted index (:func:`repro.io.serialize
        .save_index`). Missing/corrupt/stale files put the facade in
        degraded (BFS) mode rather than raising.
    index:
        Alternatively, an in-memory :class:`SPCIndex` to adopt (still
        verified against the graph's vertex count and its ``stale`` flag).
    bfs_engine:
        Engine for the fallback oracle (``"python"`` or ``"csr"``).
    io_retries:
        Transient-``OSError`` re-reads attempted by the loader.
    require_fingerprint:
        When True, refuse to serve from index files that carry no graph
        fingerprint (legacy v2 saves) instead of trusting a vertex-count
        check.
    breaker:
        Optional :class:`~repro.serving.breaker.CircuitBreaker` guarding
        the BFS fallback path. When open, degraded queries raise
        :class:`~repro.exceptions.CircuitOpenError` immediately.
    """

    def __init__(self, graph, index_path=None, index=None, bfs_engine="python",
                 io_retries=1, require_fingerprint=False, breaker=None):
        self._graph = graph
        self._path = index_path
        self._io_retries = io_retries
        self._require_fingerprint = require_fingerprint
        self._oracle = BFSCountingOracle(graph, engine=bfs_engine)
        self._breaker = breaker
        self._index = None
        self._last_error = None
        self._lock = threading.Lock()
        self.generation = 0
        self.counters = {
            "index_queries": 0,
            "fallback_queries": 0,
            "load_failures": 0,
            "verify_failures": 0,
            "query_failures": 0,
            "stale_detections": 0,
            "graph_swaps": 0,
        }
        if index is not None:
            if index.labels.n != graph.n:
                self._record("verify_failures")
                self._last_error = StaleIndexError(
                    graph_fingerprint(graph), (index.labels.n, None, None),
                    context="in-memory index",
                )
            else:
                self._index = index
                self.generation = 1
            self._publish_state()
        elif index_path is not None:
            self.reload()
        else:
            self._publish_state()

    # -- lifecycle -----------------------------------------------------------

    def _record(self, kind, delta=1):
        """Bump a lifecycle counter (dict + registry mirror).

        The dict stays the stable programmatic surface (``explain()``,
        existing callers); the registry mirror makes the same tallies
        scrapeable as ``spc_index_events_total{kind=...}``.
        """
        self.counters[kind] += delta
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_index_events_total", kind=kind).inc(delta)

    def _publish_state(self):
        """Reflect serving path and generation into registry gauges."""
        registry = get_registry()
        if registry.enabled:
            registry.gauge("spc_serving_degraded").set(
                0 if self._index is not None else 1
            )
            registry.gauge("spc_index_generation").set(self.generation)

    def reload(self):
        """(Re)load and verify the index file; True when now serving from it.

        Every failure mode is recorded (``load_failures`` for I/O and
        format corruption, ``verify_failures`` for fingerprint mismatches)
        and leaves the facade in degraded mode with ``last_error`` set.
        A success atomically swaps the served index and bumps
        ``generation``; readers mid-query keep the snapshot they started
        with, so a swap never tears an in-flight answer.
        """
        try:
            labels, meta = load_labels_with_meta(
                self._path, retries=self._io_retries
            )
        except (OSError, ReproError) as exc:
            with self._lock:
                self._index = None
                self._record("load_failures")
                self._last_error = exc
                self._publish_state()
            get_event_log().emit("index.reload", outcome="failure",
                                 error=str(exc))
            return False
        live = graph_fingerprint(self._graph)
        error = None
        if meta.fingerprint is not None:
            if meta.fingerprint != live:
                error = StaleIndexError(
                    live, meta.fingerprint, context=str(self._path)
                )
        elif self._require_fingerprint:
            error = SerializationError(
                f"{self._path}: index carries no graph fingerprint "
                "(require_fingerprint=True)"
            )
        elif labels.n != self._graph.n:
            error = StaleIndexError(
                live, (labels.n, None, None), context=str(self._path)
            )
        with self._lock:
            if error is not None:
                self._index = None
                self._record("verify_failures")
                self._last_error = error
                self._publish_state()
                get_event_log().emit("index.reload", outcome="failure",
                                     error=str(error))
                return False
            self._index = SPCIndex(labels)
            self._last_error = None
            self.generation += 1
            self._publish_state()
            get_event_log().emit("index.reload", outcome="success",
                                 generation=self.generation)
        if self._breaker is not None:
            # A freshly verified index invalidates the degraded-path failure
            # streak: close the breaker so recovery is immediate rather than
            # waiting out a reset timeout that no longer reflects reality.
            self._breaker.reset()
        return True

    def set_graph(self, graph):
        """Adopt a new live graph (edge churn) and demote the served index.

        Under rebuild-behind maintenance the logical graph moves while the
        on-disk index lags one swap behind. The moment the facade learns
        about the new graph, the currently loaded index — built for the
        *previous* graph — can no longer be trusted, so it is demoted
        here: queries answer exactly from the (new-graph) BFS oracle
        until :meth:`reload` verifies the freshly published file against
        the new fingerprint. Call this *before* ``check_reload()`` from a
        maintenance ``on_publish`` hook and the swap is
        degrade-then-promote, never wrong.
        """
        with self._lock:
            self._graph = graph
            self._oracle = BFSCountingOracle(graph,
                                             engine=self._oracle._engine)
            self._record("graph_swaps")
            if self._index is not None:
                self._index = None
                self._publish_state()
        get_event_log().emit("index.graph_swapped", n=graph.n, m=graph.m)

    @property
    def status(self):
        """``"index"`` when serving from labels, ``"degraded"`` on BFS."""
        return "index" if self._index is not None else "degraded"

    @property
    def n(self):
        """Vertex count of the live graph (the query id space)."""
        return self._graph.n

    @property
    def last_error(self):
        """The typed error that caused the last load/verify failure, if any."""
        return self._last_error

    @property
    def breaker(self):
        """The fallback-path circuit breaker, when one was attached."""
        return self._breaker

    def explain(self):
        """Operator snapshot: serving path, counters, and last error."""
        with self._lock:
            snapshot = {
                "status": "index" if self._index is not None else "degraded",
                "index_path": None if self._path is None else str(self._path),
                "generation": self.generation,
                "counters": dict(self.counters),
                "last_error": None if self._last_error is None
                else f"{type(self._last_error).__name__}: {self._last_error}",
            }
        if self._breaker is not None:
            snapshot["breaker"] = self._breaker.snapshot()
        return snapshot

    # -- queries -------------------------------------------------------------

    def _check_vertex(self, v):
        if not isinstance(v, int) or not 0 <= v < self._graph.n:
            raise VertexError(v, self._graph.n)

    def _snapshot_index(self):
        """One consistent read of the served index, demoting stale labels.

        The staleness flag (:meth:`SPCIndex.mark_stale`, set e.g. by
        :class:`repro.dynamic.incremental.DynamicSPCIndex` after edge
        insertions) is honoured *at query time*: an index that went stale
        mid-serving is demoted here rather than silently answering for
        yesterday's graph.
        """
        with self._lock:
            index = self._index
            if index is not None and index.stale:
                self._record("stale_detections")
                self._last_error = StaleIndexError(
                    graph_fingerprint(self._graph), index.stale_reason,
                    context="stale in-memory index",
                )
                self._index = None
                self._publish_state()
                get_event_log().emit("index.demoted", reason="stale")
                return None
            return index

    def _demote(self, index, exc):
        """The loaded index misbehaved at query time: record and demote."""
        with self._lock:
            self._record("query_failures")
            self._last_error = exc
            if self._index is index:
                self._index = None
                self._publish_state()
        get_event_log().emit("index.demoted", reason=type(exc).__name__)

    def _count_fallback(self, index_hits):
        with self._lock:
            self._record("fallback_queries", index_hits)

    def _fallback_call(self, work, queries, deadline):
        """Run degraded-path ``work()`` behind the breaker and deadline."""
        if deadline is not None:
            deadline.check()
        if self._breaker is not None:
            self._breaker.before_call()  # raises CircuitOpenError when open
        try:
            answer = work()
        except DeadlineExceeded:
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        except (SerializationError, LabelingError):
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        if self._breaker is not None:
            self._breaker.record_success()
        self._count_fallback(queries)
        return answer

    def count_with_distance(self, s, t, deadline=None):
        """``(sd(s,t), spc(s,t))`` — from the index, or BFS when degraded."""
        self._check_vertex(s)
        self._check_vertex(t)
        index = self._snapshot_index()
        if index is not None:
            try:
                answer = index.count_with_distance(s, t)
            except (SerializationError, LabelingError) as exc:
                # The loaded index misbehaved at query time: demote it and
                # keep serving — the BFS answer below is exact.
                self._demote(index, exc)
            else:
                with self._lock:
                    self._record("index_queries")
                return answer
        return self._fallback_call(
            lambda: self._oracle.count_with_distance(s, t, deadline=deadline),
            1, deadline,
        )

    def count(self, s, t, deadline=None):
        """``spc(s, t)``: the number of shortest paths (0 if disconnected)."""
        return self.count_with_distance(s, t, deadline=deadline)[1]

    def distance(self, s, t, deadline=None):
        """``sd(s, t)``; ``inf`` when disconnected."""
        return self.count_with_distance(s, t, deadline=deadline)[0]

    def count_many(self, pairs, deadline=None):
        """Batched ``(sd, spc)`` tuples; vectorized when the index is healthy."""
        pairs = list(pairs)
        for s, t in pairs:
            self._check_vertex(s)
            self._check_vertex(t)
        index = self._snapshot_index()
        if index is not None:
            try:
                answers = index.count_many(pairs, deadline=deadline)
            except DeadlineExceeded:
                raise
            except (SerializationError, LabelingError) as exc:
                self._demote(index, exc)
            else:
                with self._lock:
                    self._record("index_queries", len(pairs))
                return answers

        def sweep():
            oracle = self._oracle.count_with_distance
            return [oracle(s, t, deadline=deadline) for s, t in pairs]

        return self._fallback_call(sweep, len(pairs), deadline)

    def single_source(self, s, deadline=None):
        """``(dist, count)`` numpy arrays from ``s`` over every vertex.

        Served by the vectorized flat engine when healthy, by one online
        counting BFS when degraded — identical conventions either way
        (float64 ``inf`` distances, int64 counts, ``(0, 1)`` diagonal).
        """
        self._check_vertex(s)
        index = self._snapshot_index()
        if index is not None:
            try:
                answer = index.single_source(s)
            except (SerializationError, LabelingError) as exc:
                self._demote(index, exc)
            else:
                with self._lock:
                    self._record("index_queries")
                return answer
        return self._fallback_call(
            lambda: self._oracle.single_source(s, deadline=deadline), 1, deadline,
        )

    def set_to_set(self, sources, targets, deadline=None):
        """``(sd(S, T), spc(S, T))``: min distance over all pairs, counts
        summed at that minimum — vectorized when healthy, one counting
        BFS per source when degraded.

        This is the degraded twin of the cluster's scatter-gather
        ``set_to_set``, so a shard pool that lost every worker can still
        answer exactly from the logical graph.
        """
        sources = [int(v) for v in sources]
        targets = [int(v) for v in targets]
        for v in sources:
            self._check_vertex(v)
        for v in targets:
            self._check_vertex(v)
        if not sources or not targets:
            return (float("inf"), 0)
        index = self._snapshot_index()
        if index is not None:
            try:
                answer = index.set_to_set(sources, targets)
            except DeadlineExceeded:
                raise
            except (SerializationError, LabelingError) as exc:
                self._demote(index, exc)
            else:
                with self._lock:
                    self._record("index_queries")
                return answer

        def sweep():
            best = float("inf")
            sigma = 0
            for s in sources:
                dist, count = self._oracle.single_source(s, deadline=deadline)
                d = dist[targets]
                local = float(d.min())
                if local == float("inf"):
                    continue
                local_sigma = int(count[targets][d == local].sum())
                if local < best:
                    best, sigma = local, local_sigma
                elif local == best:
                    sigma += local_sigma
            return (best, sigma)

        return self._fallback_call(sweep, len(sources), deadline)

    def __repr__(self):
        return (
            f"ResilientSPCIndex(n={self._graph.n}, status={self.status!r}, "
            f"fallback_queries={self.counters['fallback_queries']})"
        )
