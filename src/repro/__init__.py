"""repro — Hub Labeling for Shortest Path Counting (SIGMOD 2020).

Public API
----------
* :class:`repro.core.index.SPCIndex` — plain HP-SPC index (§3).
* :func:`repro.build_index` — one-call builder for HP-SPC / HP-SPC+ /
  HP-SPC* with any ordering (§3-§4); returns an object with ``count``,
  ``distance`` and ``count_with_distance``.
* :mod:`repro.graph` — graph substrate; :mod:`repro.generators` — inputs.
* :mod:`repro.directed` — the weighted/directed extension (§7).
* :mod:`repro.applications` — betweenness-style consumers (§1).
* :class:`repro.resilience.ResilientSPCIndex` — fault-tolerant facade:
  checksummed/fingerprinted index loads with graceful BFS fallback.
* :class:`repro.serving.SPCService` — the serving layer: per-request
  deadlines, admission control with load shedding, a circuit breaker
  around the degraded path, and hot index reload.
"""

from repro.core.index import SPCIndex
from repro.graph.digraph import WeightedDigraph
from repro.graph.graph import Graph
from repro.resilience import ResilientSPCIndex
from repro.serving import SPCService

__version__ = "1.0.0"

#: Paper-name aliases accepted by :func:`build_index`'s ``variant``.
VARIANTS = {
    "HP-SPC": (),
    "HP-SPC+": ("shell", "equivalence"),
    "HP-SPC*": ("shell", "equivalence", "independent-set"),
}


def build_index(graph, ordering="degree", reductions=(), scheme="filtered", variant=None):
    """Build a shortest-path-counting index with optional reductions.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.graph.Graph`.
    ordering:
        ``"degree"``, ``"significant-path"``, an explicit vertex sequence,
        or an :class:`~repro.core.ordering.OrderingStrategy`.
    reductions:
        Iterable drawn from ``{"shell", "equivalence", "independent-set"}``.
        The paper's named variants map to: HP-SPC = ``()``; HP-SPC+ =
        ``("shell", "equivalence")``; HP-SPC* = all three.
    scheme:
        ``"filtered"`` or ``"direct"`` — the §4.3 query scheme, only
        relevant when ``"independent-set"`` is enabled.
    variant:
        Paper-name shorthand (``"HP-SPC"``, ``"HP-SPC+"``, ``"HP-SPC*"``)
        that overrides ``reductions``.

    Returns an index object exposing ``count(s, t)``, ``distance(s, t)``
    and ``count_with_distance(s, t)``.
    """
    if variant is not None:
        try:
            reductions = VARIANTS[variant]
        except KeyError:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {sorted(VARIANTS)}"
            ) from None
    reductions = tuple(reductions)
    if not reductions:
        return SPCIndex.build(graph, ordering=ordering)
    from repro.reductions.pipeline import ReducedSPCIndex

    return ReducedSPCIndex.build(graph, ordering=ordering, reductions=reductions, scheme=scheme)


__all__ = [
    "Graph",
    "WeightedDigraph",
    "SPCIndex",
    "ResilientSPCIndex",
    "SPCService",
    "build_index",
    "VARIANTS",
    "__version__",
]
