"""Facade index for weighted undirected graphs.

Composition mirrors :mod:`repro.reductions.pipeline` with weighted
bookkeeping. Two weighted caveats, both shared with the directed index:

* Lemma 4.3's O(1) twin answers do not transfer (two twins can be joined
  by arbitrary-shaped cheapest paths), so same-class pairs fall back to
  one online Dijkstra on the pre-quotient graph;
* the significant-path ordering is BFS-tree based, so only static orders
  (degree or explicit) are supported.
"""

import time

from repro.core.query import merge_join_rows
from repro.exceptions import OrderingError
from repro.weighted.graph import spc_weighted
from repro.weighted.labeling import build_weighted_labels, degree_order_weighted
from repro.weighted.reductions import (
    WeightedEquivalenceReduction,
    WeightedShellReduction,
)

INF = float("inf")

VALID_REDUCTIONS = ("shell", "equivalence", "independent-set")


class WeightedSPCIndex:
    """Counting index over a :class:`~repro.weighted.graph.WeightedGraph`."""

    def __init__(self, graph, shell, equiv, core, labels, in_is, scheme, order,
                 build_seconds=None):
        self._graph = graph
        self._shell = shell
        self._equiv = equiv
        self._core = core
        self._labels = labels
        self._in_is = in_is
        self._scheme = scheme
        self._order = order
        self._mult = equiv.multiplicity if equiv else None
        self._build_seconds = build_seconds

    @classmethod
    def build(cls, graph, ordering="degree", reductions=(), scheme="filtered"):
        reductions = tuple(reductions)
        for name in reductions:
            if name not in VALID_REDUCTIONS:
                raise ValueError(f"unknown reduction {name!r}; expected {VALID_REDUCTIONS}")
        if scheme not in ("filtered", "direct"):
            raise ValueError(f"unknown query scheme {scheme!r}")
        started = time.perf_counter()
        shell = WeightedShellReduction.compute(graph) if "shell" in reductions else None
        core = shell.graph_reduced if shell else graph
        equiv = (
            WeightedEquivalenceReduction.compute(core)
            if "equivalence" in reductions
            else None
        )
        if equiv is not None:
            core = equiv.graph_reduced
        multiplicity = equiv.multiplicity if equiv else None

        if ordering == "degree":
            order = degree_order_weighted(core)
        else:
            order = list(ordering)
            if sorted(order) != list(range(core.n)):
                raise OrderingError("ordering must be a permutation of the core vertex set")
        in_is = [False] * core.n
        if "independent-set" in reductions:
            rank_of = [0] * core.n
            for rank, v in enumerate(order):
                rank_of[v] = rank
            for v in core.vertices():
                rv = rank_of[v]
                if all(rank_of[x] < rv for x, _ in core.neighbors(v)):
                    in_is[v] = True
        labels = build_weighted_labels(
            core, ordering=order, multiplicity=multiplicity, skip=in_is
        )
        elapsed = time.perf_counter() - started
        return cls(graph, shell, equiv, core, labels, in_is, scheme, order,
                   build_seconds=elapsed)

    # -- queries -------------------------------------------------------------------

    def count_with_distance(self, s, t):
        """``(weighted sd(s,t), spc(s,t))`` in original vertex ids."""
        if s == t:
            return 0, 1
        offset = 0
        pre_quotient = self._shell.graph_reduced if self._shell else self._graph
        if self._shell is not None:
            if self._shell.same_representative(s, t):
                return self._shell.tree_answer(s, t)
            offset = self._shell.cost_to_representative(s) + self._shell.cost_to_representative(t)
            s = self._shell.project(s)
            t = self._shell.project(t)
        if self._equiv is not None:
            rs = self._equiv.eqr(s)
            rt = self._equiv.eqr(t)
            if rs == rt:
                # Weighted Lemma 4.3 fallback (see module docstring).
                dist, cnt = spc_weighted(pre_quotient, s, t)
                return (dist + offset, cnt) if cnt else (INF, 0)
            s = self._equiv.old_to_new[rs]
            t = self._equiv.old_to_new[rt]
        dist, cnt = self._core_query(s, t)
        if cnt == 0:
            return INF, 0
        return dist + offset, cnt

    def count(self, s, t):
        return self.count_with_distance(s, t)[1]

    def distance(self, s, t):
        return self.count_with_distance(s, t)[0]

    # -- core machinery ----------------------------------------------------------------

    def _core_query(self, s, t):
        s_dropped = self._in_is[s]
        t_dropped = self._in_is[t]
        if not s_dropped and not t_dropped:
            return merge_join_rows(
                self._labels.merged(s), self._labels.merged(t), s, t, self._mult
            )
        return self._aggregate_query(
            s, t, s_dropped, t_dropped, filtered=self._scheme == "filtered"
        )

    def _side(self, v, dropped):
        if dropped:
            return list(self._core.neighbors(v))
        return [(v, 0)]

    def _k_factor(self, u, hub, dropped_side):
        if self._mult is None or not dropped_side or u == hub:
            return 1
        return self._mult[u]

    def _m_factor(self, hub, s, t, s_dropped, t_dropped):
        if self._mult is None:
            return 1
        if (hub == s and not s_dropped) or (hub == t and not t_dropped):
            return 1
        return self._mult[hub]

    def _aggregate_query(self, s, t, s_dropped, t_dropped, filtered):
        labels = self._labels
        side_s = self._side(s, s_dropped)
        side_t = self._side(t, t_dropped)
        if filtered:
            dist_s = self._distance_map(side_s)
            delta = INF
            keep_t = []
            for u, offset in side_t:
                best = min(
                    (dist_s.get(hub, INF) + dist for _, hub, dist, _ in labels.canonical(u)),
                    default=INF,
                )
                total = best + offset
                if total < delta:
                    delta = total
                    keep_t = [(u, offset)]
                elif total == delta and total != INF:
                    keep_t.append((u, offset))
            if delta == INF:
                return INF, 0
            if len(side_s) == 1:
                keep_s = side_s
            else:
                dist_t = self._distance_map(side_t)
                keep_s = []
                for u, offset in side_s:
                    best = min(
                        (dist_t.get(hub, INF) + dist
                         for _, hub, dist, _ in labels.canonical(u)),
                        default=INF,
                    )
                    if best + offset == delta:
                        keep_s.append((u, offset))
            side_s, side_t = keep_s, keep_t
        agg = {}
        for u, offset in side_s:
            for _, hub, dist, cnt in labels.merged(u):
                total = dist + offset
                term = cnt * self._k_factor(u, hub, s_dropped)
                found = agg.get(hub)
                if found is None or total < found[0]:
                    agg[hub] = (total, term)
                elif total == found[0]:
                    agg[hub] = (total, found[1] + term)
        delta = INF
        sigma = 0
        for u, offset in side_t:
            for _, hub, dist, cnt in labels.merged(u):
                found = agg.get(hub)
                if found is None:
                    continue
                total = found[0] + dist + offset
                if total > delta:
                    continue
                term = (
                    found[1]
                    * cnt
                    * self._k_factor(u, hub, t_dropped)
                    * self._m_factor(hub, s, t, s_dropped, t_dropped)
                )
                if total < delta:
                    delta = total
                    sigma = term
                else:
                    sigma += term
        if sigma == 0:
            return INF, 0
        return delta, sigma

    def _distance_map(self, side):
        out = {}
        for u, offset in side:
            for _, hub, dist, _ in self._labels.canonical(u):
                total = dist + offset
                if total < out.get(hub, INF):
                    out[hub] = total
        return out

    # -- introspection --------------------------------------------------------------------

    @property
    def labels(self):
        return self._labels

    @property
    def order(self):
        return tuple(self._order)

    @property
    def build_seconds(self):
        return self._build_seconds

    def total_entries(self):
        return self._labels.total_entries()

    def size_bytes(self, entry_bits=64):
        return self._labels.packed_size_bytes(entry_bits)

    def __repr__(self):
        return f"WeightedSPCIndex(n={self._graph.n}, entries={self.total_entries()})"
