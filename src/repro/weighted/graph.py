"""Undirected simple graph with positive edge weights."""

from repro.exceptions import GraphError, VertexError


class WeightedGraph:
    """An immutable weighted undirected graph on vertices ``0..n-1``.

    Adjacency rows hold ``(neighbor, weight)`` pairs sorted by neighbor.
    Weights must be strictly positive (Dijkstra semantics, as in §7).
    """

    __slots__ = ("_adj", "_m")

    def __init__(self, adjacency):
        self._adj = tuple(tuple(row) for row in adjacency)
        self._m = sum(len(row) for row in self._adj) // 2

    @classmethod
    def from_edges(cls, n, edges, dedup=True):
        """Build from ``(u, v, weight)`` triples.

        Duplicates keep the minimum weight under ``dedup`` (the only
        value shortest-path algorithms can observe), else raise.
        """
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        weight_of = [dict() for _ in range(n)]
        for u, v, w in edges:
            if not (isinstance(u, int) and isinstance(v, int)):
                raise GraphError(f"edge endpoints must be ints, got ({u!r}, {v!r})")
            if not (0 <= u < n):
                raise VertexError(u, n)
            if not (0 <= v < n):
                raise VertexError(v, n)
            if u == v:
                raise GraphError(f"self-loop at vertex {u}")
            if w <= 0:
                raise GraphError(f"edge ({u}, {v}) has non-positive weight {w}")
            if v in weight_of[u]:
                if not dedup:
                    raise GraphError(f"duplicate edge ({u}, {v})")
                best = min(weight_of[u][v], w)
                weight_of[u][v] = best
                weight_of[v][u] = best
            else:
                weight_of[u][v] = w
                weight_of[v][u] = w
        return cls(sorted(row.items()) for row in weight_of)

    @classmethod
    def from_unweighted(cls, graph, weight=1):
        """Lift an unweighted :class:`~repro.graph.graph.Graph`."""
        return cls.from_edges(graph.n, ((u, v, weight) for u, v in graph.edges()))

    # -- accessors ---------------------------------------------------------------

    @property
    def n(self):
        return len(self._adj)

    @property
    def m(self):
        return self._m

    def neighbors(self, v):
        """Sorted tuple of ``(neighbor, weight)`` pairs."""
        self._check_vertex(v)
        return self._adj[v]

    def neighbor_ids(self, v):
        """Just the neighbor ids of ``v``."""
        self._check_vertex(v)
        return tuple(x for x, _ in self._adj[v])

    def degree(self, v):
        self._check_vertex(v)
        return len(self._adj[v])

    def vertices(self):
        return range(len(self._adj))

    def edges(self):
        """Yield each edge once as ``(u, v, weight)`` with ``u < v``."""
        for u, row in enumerate(self._adj):
            for v, w in row:
                if u < v:
                    yield u, v, w

    def weight(self, u, v):
        """Weight of edge ``{u, v}``; ``None`` when absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        for x, w in self._adj[u]:
            if x == v:
                return w
            if x > v:
                return None
        return None

    def unweighted(self):
        """Forget the weights (a plain :class:`~repro.graph.graph.Graph`)."""
        from repro.graph.graph import Graph

        return Graph.from_edges(self.n, ((u, v) for u, v, _ in self.edges()))

    def to_digraph(self):
        """The symmetric :class:`~repro.graph.digraph.WeightedDigraph`."""
        from repro.graph.digraph import WeightedDigraph

        edges = []
        for u, v, w in self.edges():
            edges.append((u, v, w))
            edges.append((v, u, w))
        return WeightedDigraph.from_edges(self.n, edges)

    def induced_subgraph(self, keep):
        """Induced subgraph plus the old -> new dense id mapping."""
        keep_sorted = sorted(set(keep))
        for v in keep_sorted:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(keep_sorted)}
        edges = []
        for old in keep_sorted:
            for x, w in self._adj[old]:
                if x in old_to_new and old < x:
                    edges.append((old_to_new[old], old_to_new[x], w))
        return WeightedGraph.from_edges(len(keep_sorted), edges), old_to_new

    def __eq__(self, other):
        return isinstance(other, WeightedGraph) and self._adj == other._adj

    def __hash__(self):
        return hash(self._adj)

    def __repr__(self):
        return f"WeightedGraph(n={self.n}, m={self.m})"

    def _check_vertex(self, v):
        if not (isinstance(v, int) and 0 <= v < len(self._adj)):
            raise VertexError(v, len(self._adj))


def dijkstra_count_weighted(graph, source):
    """``(dist, count)`` arrays from ``source`` on a :class:`WeightedGraph`."""
    import heapq

    INF = float("inf")
    dist = [INF] * graph.n
    count = [0] * graph.n
    dist[source] = 0
    count[source] = 1
    settled = [False] * graph.n
    heap = [(0, source)]
    while heap:
        dv, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        cv = count[v]
        for w, weight in graph.neighbors(v):
            alt = dv + weight
            dw = dist[w]
            if alt < dw:
                dist[w] = alt
                count[w] = cv
                heapq.heappush(heap, (alt, w))
            elif alt == dw and not settled[w]:
                count[w] += cv
    return dist, count


def spc_weighted(graph, s, t):
    """Online ``(distance, count)`` between ``s`` and ``t``."""
    if s == t:
        return 0, 1
    dist, count = dijkstra_count_weighted(graph, s)
    INF = float("inf")
    return (dist[t], count[t]) if count[t] else (INF, 0)
