"""Weighted undirected versions of the §4 reductions.

Structure mirrors §4; only the distance bookkeeping changes:

* **1-shell** — shell trees are found on the unweighted view; tree-path
  distances are weighted sums along the unique paths.
* **Equivalence** — twins must agree on neighbors *and* incident edge
  weights (the §7 conditions, symmetrised); classes then quotient with
  multiplicities exactly as in §4.2, because every member reaches each
  common neighbor at the same cost.
"""

from collections import deque

from repro.graph.cores import one_shell_components

INF = float("inf")


class WeightedShellReduction:
    """1-shell cutting for weighted undirected graphs."""

    def __init__(self, graph, shr, parent, reduced, old_to_new):
        self._graph = graph
        self._shr = shr
        self._parent = parent
        self.graph_reduced = reduced
        self.old_to_new = old_to_new
        self.new_to_old = [None] * reduced.n
        for old, new in old_to_new.items():
            self.new_to_old[new] = old

    @classmethod
    def compute(cls, graph):
        unweighted = graph.unweighted()
        n = graph.n
        shr = list(range(n))
        parent = list(range(n))
        depth = [0] * n
        for component, access in one_shell_components(unweighted):
            members = set(component)
            queue = deque([access])
            seen_local = {access}
            while queue:
                u = queue.popleft()
                for x in unweighted.neighbors(u):
                    if x in members and x not in seen_local:
                        seen_local.add(x)
                        parent[x] = u
                        depth[x] = depth[u] + 1
                        shr[x] = access
                        queue.append(x)
        keep = [v for v in range(n) if shr[v] == v]
        reduced, old_to_new = graph.induced_subgraph(keep)
        out = cls(graph, shr, parent, reduced, old_to_new)
        out._depth = depth
        return out

    def shr(self, v):
        return self._shr[v]

    @property
    def removed_count(self):
        return self._graph.n - self.graph_reduced.n

    def same_representative(self, s, t):
        return self._shr[s] == self._shr[t]

    def project(self, v):
        return self.old_to_new[self._shr[v]]

    def cost_to_representative(self, v):
        """Weighted length of the unique tree path ``v .. shr(v)``."""
        total = 0
        node = v
        while node != self._shr[v]:
            total += self._graph.weight(node, self._parent[node])
            node = self._parent[node]
        return total

    def tree_answer(self, s, t):
        """``(weighted distance, 1)`` for a same-representative pair."""
        if self._shr[s] != self._shr[t]:
            raise ValueError("tree_answer requires shr(s) == shr(t)")
        a, b = s, t
        da, db = self._depth[a], self._depth[b]
        total = 0
        while da > db:
            total += self._graph.weight(a, self._parent[a])
            a = self._parent[a]
            da -= 1
        while db > da:
            total += self._graph.weight(b, self._parent[b])
            b = self._parent[b]
            db -= 1
        while a != b:
            total += self._graph.weight(a, self._parent[a])
            total += self._graph.weight(b, self._parent[b])
            a = self._parent[a]
            b = self._parent[b]
        return total, 1


def weighted_equivalent(graph, u, v):
    """Symmetric twin test: equal weighted neighborhoods apart from each other."""
    if u == v:
        return True
    nbr_u = {x: w for x, w in graph.neighbors(u) if x != v}
    nbr_v = {x: w for x, w in graph.neighbors(v) if x != u}
    return nbr_u == nbr_v


class WeightedEquivalenceReduction:
    """Weighted twin quotient with per-representative multiplicities."""

    def __init__(self, graph, eqr, class_size, adjacent_class, reduced, old_to_new):
        self._graph = graph
        self._eqr = eqr
        self._class_size = class_size
        self._adjacent_class = adjacent_class
        self.graph_reduced = reduced
        self.old_to_new = old_to_new
        self.new_to_old = [None] * reduced.n
        for old, new in old_to_new.items():
            self.new_to_old[new] = old
        self.multiplicity = [0] * reduced.n
        for old, new in old_to_new.items():
            self.multiplicity[new] = class_size[old]

    @classmethod
    def compute(cls, graph):
        n = graph.n
        eqr = list(range(n))
        class_size = [1] * n
        adjacent_class = [False] * n
        # Pass 1: non-adjacent twins — exact weighted neighbor lists.
        open_groups = {}
        for v in range(n):
            open_groups.setdefault(graph.neighbors(v), []).append(v)
        assigned = [False] * n
        for members in open_groups.values():
            if len(members) < 2:
                continue
            rep = members[0]
            for v in members:
                assigned[v] = True
                eqr[v] = rep
                class_size[v] = len(members)
        # Pass 2: adjacent twins — bucket on ids-plus-self, verify pairwise.
        buckets = {}
        for v in range(n):
            if assigned[v]:
                continue
            ids = {x for x, _ in graph.neighbors(v)}
            ids.add(v)
            buckets.setdefault(tuple(sorted(ids)), []).append(v)
        for members in buckets.values():
            if len(members) < 2:
                continue
            remaining = list(members)
            while remaining:
                seed_vertex = remaining[0]
                cls_members = [seed_vertex]
                rest = []
                for other in remaining[1:]:
                    if graph.weight(seed_vertex, other) is not None and weighted_equivalent(
                        graph, seed_vertex, other
                    ):
                        cls_members.append(other)
                    else:
                        rest.append(other)
                remaining = rest
                if len(cls_members) >= 2:
                    rep = min(cls_members)
                    for v in cls_members:
                        eqr[v] = rep
                        class_size[v] = len(cls_members)
                        adjacent_class[v] = True
        keep = [v for v in range(n) if eqr[v] == v]
        reduced, old_to_new = graph.induced_subgraph(keep)
        return cls(graph, eqr, class_size, adjacent_class, reduced, old_to_new)

    def eqr(self, v):
        return self._eqr[v]

    def eqc_size(self, v):
        return self._class_size[v]

    def is_adjacent_class(self, v):
        return self._adjacent_class[v]

    @property
    def removed_count(self):
        return self._graph.n - self.graph_reduced.n

    def project(self, v):
        return self.old_to_new[self._eqr[v]]
