"""Weighted undirected hub pushing: one Dijkstra per hub, one label set.

Identical in structure to Algorithm 1 with the BFS replaced by Dijkstra
(§7's recipe) — but because the graph is undirected the trough-path
relation is symmetric and a single sweep per hub fills a single label,
halving both the construction work and the index of the naive
directed-lift approach. Strictly positive weights keep a popped vertex's
count final, so the canonical / non-canonical split carries over
unchanged.
"""

import heapq

from repro.core.labels import LabelSet
from repro.exceptions import OrderingError

INF = float("inf")


def degree_order_weighted(graph):
    """Non-ascending degree, ties by id (weights carry no rank signal)."""
    return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))


def build_weighted_labels(graph, ordering="degree", multiplicity=None, skip=None, prune=True):
    """Run weighted HP-SPC; returns a finalized :class:`LabelSet`.

    Parameters mirror :func:`repro.core.hp_spc.build_labels`; ``ordering``
    is ``"degree"`` or an explicit vertex sequence (the significant-path
    heuristic is BFS-tree based and does not transfer to weighted
    searches).
    """
    n = graph.n
    if ordering == "degree":
        order = degree_order_weighted(graph)
    else:
        order = list(ordering)
        if sorted(order) != list(range(n)):
            raise OrderingError("ordering must be a permutation of the vertex set")
    mult = list(multiplicity) if multiplicity is not None else None
    if mult is not None and len(mult) != n:
        raise ValueError("multiplicity must have one entry per vertex")
    skip_flags = list(skip) if skip is not None else [False] * n
    if len(skip_flags) != n:
        raise ValueError("skip must have one entry per vertex")

    labels = LabelSet(n)
    canonical = labels._canonical
    noncanonical = labels._noncanonical
    dist = [INF] * n
    count = [0] * n
    settled = [False] * n
    hub_dist = [INF] * n
    pushed = [False] * n

    for rank, w in enumerate(order):
        pushed[w] = True
        touched_hubs = []
        if prune:
            for _, hub, hub_distance, _ in canonical[w]:
                hub_dist[hub] = hub_distance
                touched_hubs.append(hub)
        dist[w] = 0
        count[w] = 1
        heap = [(0, w)]
        visited = [w]
        while heap:
            dv, v = heapq.heappop(heap)
            if settled[v]:
                continue
            settled[v] = True
            if v == w:
                if not skip_flags[w]:
                    canonical[w].append((rank, w, 0, 1))
            elif not skip_flags[v]:
                if prune:
                    best = min(
                        (hub_dist[hub] + hub_distance
                         for _, hub, hub_distance, _ in canonical[v]),
                        default=INF,
                    )
                    if best < dv:
                        continue  # pruned: do not relax out of v
                    if best == dv:
                        noncanonical[v].append((rank, w, dv, count[v]))
                    else:
                        canonical[v].append((rank, w, dv, count[v]))
                else:
                    canonical[v].append((rank, w, dv, count[v]))
            forwarded = count[v] if (mult is None or v == w) else count[v] * mult[v]
            for v2, weight in graph.neighbors(v):
                if pushed[v2] and v2 != w:
                    continue
                alt = dv + weight
                d2 = dist[v2]
                if alt < d2:
                    dist[v2] = alt
                    count[v2] = forwarded
                    heapq.heappush(heap, (alt, v2))
                    if d2 is INF:
                        visited.append(v2)
                elif alt == d2 and not settled[v2]:
                    count[v2] += forwarded
        for v in visited:
            dist[v] = INF
            count[v] = 0
            settled[v] = False
        for hub in touched_hubs:
            hub_dist[hub] = INF

    labels.set_order(order)
    labels.finalize()
    return labels
