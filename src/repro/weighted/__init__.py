"""Weighted undirected graphs: one-label-set Dijkstra hub pushing.

§7 handles weighted *directed* graphs with two labels per vertex; the
undirected weighted case (road networks, §5.3's motivation) only needs
one — paths are symmetric, so a single Dijkstra per hub suffices. This
package provides the graph type, the construction, and the reduction
pipeline mirrored from §4 (with the weighted caveats documented in
:mod:`repro.weighted.index`).
"""

from repro.weighted.graph import WeightedGraph
from repro.weighted.index import WeightedSPCIndex
from repro.weighted.labeling import build_weighted_labels

__all__ = ["WeightedGraph", "WeightedSPCIndex", "build_weighted_labels"]
