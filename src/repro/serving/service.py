"""`SPCService` — the resilient index behind production traffic controls.

:class:`~repro.resilience.ResilientSPCIndex` guarantees *correct* answers
under index failure; this layer guarantees *bounded* answers under load.
Every request passes through four defences:

1. **Admission control** — at most ``capacity`` requests execute
   concurrently; up to ``queue_limit`` more wait (within their deadline).
   Beyond that the request is **shed** with a typed
   :class:`~repro.exceptions.ServiceOverloaded` carrying a retry-after
   hint derived from observed service latency — melting down is the one
   thing a loaded service must never do.
2. **Deadline budget** — ``timeout`` (or ``default_deadline``) becomes a
   :class:`~repro.serving.deadline.Deadline` threaded all the way into the
   label-scan chunks and BFS levels, so even the degraded path returns
   (with :class:`~repro.exceptions.DeadlineExceeded`) within one
   checkpoint interval of the budget.
3. **Circuit breaker** — consecutive degraded-path failures trip a
   :class:`~repro.serving.breaker.CircuitBreaker`; while open, degraded
   queries fail fast with :class:`~repro.exceptions.CircuitOpenError`
   instead of each burning a full deadline (the corrupt-index +
   slow-fallback meltdown).
4. **Hot reload** — an :class:`~repro.serving.reload.IndexWatcher` polls
   the on-disk SPCL file between requests; a rebuilt file is re-verified
   and swapped in atomically, bumping the observable ``generation``
   without dropping in-flight requests.

:meth:`SPCService.submit` never raises for per-request failures: it maps
every outcome onto a :class:`QueryResult` with a terminal ``status`` —
``"index"``, ``"degraded"``, ``"shed"``, ``"circuit_open"``,
``"deadline"``, ``"invalid"`` or ``"error"`` — which is what the chaos
gate asserts over a 1000-query burst. :meth:`SPCService.query` is the
raising variant for callers that prefer exceptions. ``health()`` and
``stats()`` expose generation counters, breaker state, admission depth
and per-outcome tallies for operators.
"""

import threading
import time

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    ServiceOverloaded,
    VertexError,
)
from repro.observability.events import get_event_log
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer
from repro.query.ast import Count
from repro.query.engine import QueryEngine
from repro.resilience import ResilientSPCIndex
from repro.serving.admission import DEFAULT_RETRY_AFTER_CAP, AdmissionQueue
from repro.serving.breaker import CircuitBreaker
from repro.serving.deadline import Deadline
from repro.serving.reload import IndexWatcher

#: Terminal statuses a request can end in (the chaos-gate contract).
SERVED_INDEX = "index"
SERVED_DEGRADED = "degraded"
SHED = "shed"
CIRCUIT_OPEN = "circuit_open"
DEADLINE = "deadline"
INVALID = "invalid"
ERROR = "error"

TERMINAL_STATUSES = frozenset(
    (SERVED_INDEX, SERVED_DEGRADED, SHED, CIRCUIT_OPEN, DEADLINE, INVALID, ERROR)
)


class QueryResult:
    """One request's terminal outcome: status, answer or typed error."""

    __slots__ = ("status", "answer", "error", "elapsed", "generation",
                 "degraded_shards")

    def __init__(self, status, answer=None, error=None, elapsed=0.0, generation=0,
                 degraded_shards=()):
        self.status = status
        self.answer = answer
        self.error = error
        self.elapsed = elapsed
        self.generation = generation
        self.degraded_shards = tuple(degraded_shards)

    @property
    def ok(self):
        """True when an exact answer was produced (index or degraded)."""
        return self.status in (SERVED_INDEX, SERVED_DEGRADED)

    def __repr__(self):
        degraded = (f", degraded_shards={self.degraded_shards}"
                    if self.degraded_shards else "")
        return (
            f"QueryResult(status={self.status!r}, answer={self.answer!r}, "
            f"elapsed={self.elapsed * 1e3:.2f}ms, gen={self.generation}"
            f"{degraded})"
        )


class SPCService:
    """Deadline-bounded, load-shedding, hot-reloading counting service.

    Parameters
    ----------
    graph:
        The live graph queries refer to.
    index_path / index:
        Where the served index comes from (see
        :class:`~repro.resilience.ResilientSPCIndex`).
    capacity:
        Maximum concurrently executing requests.
    queue_limit:
        Maximum requests allowed to wait for a slot; more are shed.
    retry_after_cap:
        Ceiling (seconds) on the retry-after hint attached to shed
        requests; ``None`` disables the clamp (see
        :class:`~repro.serving.admission.AdmissionQueue`).
    default_deadline:
        Per-request budget in seconds when the caller gives none
        (``None`` = unlimited).
    breaker:
        A :class:`CircuitBreaker` for the degraded path, or ``None`` to
        build one from ``failure_threshold`` / ``reset_timeout``.
    reload_check_every:
        Poll the index file for changes every N admissions (0 disables
        polling; ``check_reload()`` stays available).
    bfs_engine / io_retries / require_fingerprint:
        Forwarded to the underlying resilient index.
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, graph, index_path=None, index=None, *,
                 capacity=8, queue_limit=16, default_deadline=None,
                 retry_after_cap=DEFAULT_RETRY_AFTER_CAP,
                 breaker=None, failure_threshold=5, reset_timeout=1.0,
                 reload_check_every=16, bfs_engine="python", io_retries=1,
                 require_fingerprint=False, clock=time.monotonic):
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive or None")
        self._clock = clock
        self._admission = AdmissionQueue(capacity, queue_limit,
                                         retry_after_cap=retry_after_cap,
                                         clock=clock)
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold=failure_threshold,
                                     reset_timeout=reset_timeout, clock=clock)
        self._resilient = ResilientSPCIndex(
            graph, index_path=index_path, index=index, bfs_engine=bfs_engine,
            io_retries=io_retries, require_fingerprint=require_fingerprint,
            breaker=breaker,
        )
        # Compiled queries run over the resilient facade with the result
        # cache OFF: the live graph can mutate in place under churn
        # without bumping the generation, and a cached answer would
        # outlive the data it was computed from.
        self._query_engine = QueryEngine(resilient=self._resilient, cache=None)
        self._watcher = None if index_path is None else IndexWatcher(index_path)
        self._reload_check_every = reload_check_every
        self._reload_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.counters = {
            "requests": 0,
            SERVED_INDEX: 0,
            SERVED_DEGRADED: 0,
            SHED: 0,
            CIRCUIT_OPEN: 0,
            DEADLINE: 0,
            INVALID: 0,
            ERROR: 0,
            "reloads": 0,
            "reload_failures": 0,
        }

    # -- admission control ----------------------------------------------------

    def _admit(self, deadline):
        """Take an execution slot or raise :class:`ServiceOverloaded`.

        Delegates to the shared :class:`~repro.serving.admission
        .AdmissionQueue`: a request waits in the bounded queue only while
        its deadline allows; a full queue (or an exhausted budget while
        queued) sheds the request immediately with a capped retry-after
        hint.
        """
        ordinal = self._admission.admit(deadline)
        poll = (self._reload_check_every
                and ordinal % self._reload_check_every == 0)
        registry = get_registry()
        if registry.enabled:
            registry.gauge("spc_inflight_requests").set(
                self._admission.in_flight
            )
            registry.gauge("spc_queued_requests").set(self._admission.queued)
        if poll:
            self.check_reload()

    def _release(self, elapsed):
        self._admission.release(elapsed)
        registry = get_registry()
        if registry.enabled:
            registry.histogram("spc_request_seconds").observe(elapsed)
            registry.gauge("spc_inflight_requests").set(
                self._admission.in_flight
            )
            registry.gauge("spc_queued_requests").set(self._admission.queued)

    # -- hot reload -----------------------------------------------------------

    def check_reload(self):
        """Poll the index file; swap in a changed one. True when swapped.

        Safe to call from any thread (and from :class:`~repro.serving
        .reload.ReloadThread`); the swap itself is atomic inside
        :meth:`ResilientSPCIndex.reload`, so in-flight requests finish on
        the snapshot they started with.
        """
        if self._watcher is None:
            return False
        with self._reload_lock:
            if not self._watcher.poll():
                return False
            ok = self._resilient.reload()
            self._watcher.mark()
        with self._stats_lock:
            self.counters["reloads" if ok else "reload_failures"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "spc_reloads_total", outcome="success" if ok else "failure"
            ).inc()
        get_event_log().emit("service.reload",
                             outcome="success" if ok else "failure",
                             generation=self._resilient.generation)
        return ok

    def set_graph(self, graph):
        """Adopt a new live graph under edge churn (rebuild-behind swaps).

        Delegates to :meth:`ResilientSPCIndex.set_graph`: the lagging
        index is demoted (exact BFS answers on the *new* graph take over)
        until the next :meth:`check_reload` verifies the freshly
        published file against the new fingerprint. A maintenance
        ``on_publish`` hook should call this then ``check_reload()``.
        """
        self._resilient.set_graph(graph)

    # -- request execution ----------------------------------------------------

    def _bump(self, status):
        with self._stats_lock:
            self.counters[status] += 1
        registry = get_registry()
        if registry.enabled:
            if status == "requests":
                registry.counter("spc_requests_total").inc()
            else:
                registry.counter("spc_request_outcomes_total",
                                 status=status).inc()

    def _execute(self, work, deadline):
        """Admission + deadline + execution; returns ``(answer, status)``."""
        self._bump("requests")
        self._admit(deadline)
        started = self._clock()
        try:
            with get_tracer().span("serve.request"):
                if deadline is not None:
                    deadline.check()
                answer = work(deadline)
            status = (SERVED_INDEX if self._resilient.status == "index"
                      else SERVED_DEGRADED)
            self._bump(status)
            return answer, status
        finally:
            self._release(self._clock() - started)

    def _deadline(self, timeout):
        budget = self.default_deadline if timeout is None else timeout
        return Deadline.of(budget, clock=self._clock)

    def query(self, s, t, timeout=None):
        """``(sd(s,t), spc(s,t))`` under the service's defences.

        Raises the typed serving errors (:class:`ServiceOverloaded`,
        :class:`DeadlineExceeded`, :class:`CircuitOpenError`) and
        :class:`VertexError`; never returns a wrong count.
        """
        deadline = self._deadline(timeout)
        answer, _ = self._execute(
            lambda d: self._resilient.count_with_distance(s, t, deadline=d),
            deadline,
        )
        return answer

    def query_many(self, pairs, timeout=None):
        """Batched ``(sd, spc)`` tuples under one shared deadline budget."""
        pairs = list(pairs)
        deadline = self._deadline(timeout)
        answer, _ = self._execute(
            lambda d: self._resilient.count_many(pairs, deadline=d), deadline,
        )
        return answer

    def single_source(self, s, timeout=None):
        """``(dist, count)`` arrays from ``s`` under the service's defences."""
        deadline = self._deadline(timeout)
        answer, _ = self._execute(
            lambda d: self._resilient.single_source(s, deadline=d), deadline,
        )
        return answer

    def submit(self, s, t, timeout=None):
        """Non-raising :meth:`query`: always a terminal :class:`QueryResult`.

        Per-request failures (shed, open circuit, blown deadline, invalid
        vertex, typed library errors) become statuses; only genuine bugs
        (non-:class:`ReproError` exceptions) propagate. Compiled as a
        :class:`~repro.query.ast.Count` through :meth:`submit_query`.
        """
        return self.submit_query(Count(s, t), timeout=timeout)

    def submit_query(self, node, timeout=None):
        """Run any compiled query AST node under the service's defences.

        The node is planned and executed by the service's
        :class:`~repro.query.engine.QueryEngine` over the resilient
        facade — the plan mirrors the live serving path (``flat`` while
        an index generation is loaded, ``bfs`` once degraded) — inside
        exactly the admission/deadline/breaker envelope of :meth:`submit`,
        with the same terminal :class:`QueryResult` statuses.
        """
        started = self._clock()
        deadline = self._deadline(timeout)
        try:
            answer, status = self._execute(
                lambda d: self._query_engine.run(node, deadline=d), deadline,
            )
        except ServiceOverloaded as exc:
            self._bump(SHED)
            result = QueryResult(SHED, error=exc)
        except CircuitOpenError as exc:
            self._bump(CIRCUIT_OPEN)
            result = QueryResult(CIRCUIT_OPEN, error=exc)
        except DeadlineExceeded as exc:
            self._bump(DEADLINE)
            result = QueryResult(DEADLINE, error=exc)
        except VertexError as exc:
            self._bump(INVALID)
            result = QueryResult(INVALID, error=exc)
        except ReproError as exc:
            self._bump(ERROR)
            result = QueryResult(ERROR, error=exc)
        else:
            result = QueryResult(status, answer=answer)
        result.elapsed = self._clock() - started
        result.generation = self._resilient.generation
        return result

    # -- observability --------------------------------------------------------

    @property
    def generation(self):
        """Monotonic count of successful index (re)loads."""
        return self._resilient.generation

    @property
    def breaker(self):
        """The fallback-path :class:`CircuitBreaker` (operator access)."""
        return self._resilient.breaker

    @property
    def resilient_index(self):
        """The wrapped :class:`ResilientSPCIndex` (operator access)."""
        return self._resilient

    def stats(self):
        """Flat counter snapshot for dashboards and the smoke gates."""
        with self._stats_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "generation": self._resilient.generation,
            "ema_latency": self._admission.ema_latency,
            "admission": self._admission.snapshot(),
        }

    def health(self):
        """Liveness/readiness snapshot: serving path, breaker, admission."""
        snapshot = self.stats()
        index = self._resilient.explain()
        breaker = self._resilient.breaker
        snapshot["index"] = index
        snapshot["status"] = index["status"]
        if breaker is not None:
            snapshot["breaker"] = breaker.snapshot()
        return snapshot

    def __repr__(self):
        return (
            f"SPCService(status={self._resilient.status!r}, "
            f"generation={self._resilient.generation}, "
            f"capacity={self.capacity})"
        )
