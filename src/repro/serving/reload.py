"""Hot index reload: notice a rebuilt SPCL file and swap it in live.

Index rebuilds land on disk through the library's atomic writer (temp
file + fsync + rename), so at any instant the path holds exactly one
consistent byte string. The :class:`IndexWatcher` detects *which* one:
it remembers the last observed signature — ``(mtime_ns, size)`` from
``stat`` plus, when the header parses, the embedded graph fingerprint —
and :meth:`IndexWatcher.poll` reports when the file on disk is no longer
the bytes that were loaded.

:class:`~repro.serving.service.SPCService` polls between requests (every
``reload_check_every`` admissions) and calls
:meth:`~repro.resilience.ResilientSPCIndex.reload`, which swaps the
served index atomically under its lock and bumps its generation counter.
In-flight requests keep the snapshot they started with, so a swap never
drops or torments a running query. :class:`ReloadThread` wraps the same
poll in a daemon thread for deployments that prefer time-based checks
over request-count-based ones.
"""

import os
import threading

from repro.exceptions import SerializationError
from repro.io.serialize import read_label_meta

_MISSING = ("missing",)


class IndexWatcher:
    """Detect on-disk changes of one SPCL index file.

    ``poll()`` is cheap (one ``stat``; the header is only re-read when
    the stat signature moved) and never raises: an unreadable or
    corrupt file is itself a *change* to report — the reloader is the
    one that decides how to react (typically: degrade).
    """

    def __init__(self, path):
        self._path = os.fspath(path)
        self._last = self._signature()

    @property
    def path(self):
        """The watched file path."""
        return self._path

    def _signature(self):
        try:
            stat = os.stat(self._path)
        except OSError:
            return _MISSING
        ident = (stat.st_mtime_ns, stat.st_size)
        try:
            meta = read_label_meta(self._path)
        except (OSError, SerializationError):
            return ident + ("unreadable",)
        return ident + (meta.fingerprint,)

    def poll(self):
        """True when the file changed since the last ``poll``/``mark``."""
        current = self._signature()
        if current == self._last:
            return False
        self._last = current
        return True

    def mark(self):
        """Adopt the current on-disk state as the baseline (after a load)."""
        self._last = self._signature()

    def __repr__(self):
        return f"IndexWatcher({self._path!r})"


class ReloadThread:
    """Daemon thread polling a watcher and firing a reload callback.

    ``callback`` runs on the watcher thread whenever the file changed;
    exceptions from it are swallowed into ``errors`` (a reload must never
    kill the watcher). ``stop()`` joins the thread.
    """

    def __init__(self, watcher, callback, interval=1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._watcher = watcher
        self._callback = callback
        self._interval = interval
        self._stop = threading.Event()
        self._thread = None
        self.fired = 0
        self.errors = []

    def start(self):
        """Launch the daemon poll thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise RuntimeError("reload thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="spc-index-reload")
        self._thread.start()
        return self

    def _run(self):
        while not self._stop.wait(self._interval):
            if self._watcher.poll():
                self.fired += 1
                try:
                    self._callback()
                except Exception as exc:  # noqa: BLE001 - observability only
                    self.errors.append(exc)

    def stop(self):
        """Signal the poll thread to exit and join it (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
