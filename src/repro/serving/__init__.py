"""Resilient query-serving: deadlines, admission control, circuit
breaking, and hot index reload on top of the counting index.

The pieces compose bottom-up:

* :class:`~repro.serving.deadline.Deadline` — per-request time budget,
  checked cooperatively inside label scans and BFS levels.
* :class:`~repro.serving.breaker.CircuitBreaker` — fail-fast guard
  around the slow degraded (BFS fallback) path.
* :class:`~repro.serving.reload.IndexWatcher` /
  :class:`~repro.serving.reload.ReloadThread` — detect a rebuilt index
  file and swap it in atomically between requests.
* :class:`~repro.serving.admission.AdmissionQueue` — bounded
  concurrency with a deadline-aware wait queue and capped retry-after
  hints, shared by both front doors.
* :class:`~repro.serving.service.SPCService` — the in-process front
  door: bounded admission, load shedding, per-request deadlines,
  breaker-protected degradation and observable ``health()``/``stats()``
  snapshots.
* :class:`~repro.serving.shards.ShardPlan` /
  :class:`~repro.serving.cluster.ClusterService` — the multiprocess
  front door: N workers mmap one shared label arena, a selectors-based
  router coalesces pair queries into vectorized batches and
  scatter-gathers ``single_source`` / ``set_to_set`` across shards.

The typed errors (:class:`~repro.exceptions.DeadlineExceeded`,
:class:`~repro.exceptions.ServiceOverloaded`,
:class:`~repro.exceptions.CircuitOpenError`) live in
:mod:`repro.exceptions` under :class:`~repro.exceptions.ServingError`,
so lower layers can raise them without importing this package.
"""

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    ServiceOverloaded,
    ServingError,
)
from repro.serving.admission import DEFAULT_RETRY_AFTER_CAP, AdmissionQueue
from repro.serving.breaker import CircuitBreaker
from repro.serving.cluster import ClusterService
from repro.serving.deadline import Deadline
from repro.serving.reload import IndexWatcher, ReloadThread
from repro.serving.service import (
    CIRCUIT_OPEN,
    DEADLINE,
    ERROR,
    INVALID,
    SERVED_DEGRADED,
    SERVED_INDEX,
    SHED,
    TERMINAL_STATUSES,
    QueryResult,
    SPCService,
)
from repro.serving.shards import STRATEGIES, ShardPlan

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClusterService",
    "Deadline",
    "DEFAULT_RETRY_AFTER_CAP",
    "DeadlineExceeded",
    "IndexWatcher",
    "QueryResult",
    "ReloadThread",
    "SPCService",
    "STRATEGIES",
    "ServiceOverloaded",
    "ServingError",
    "ShardPlan",
    "SERVED_INDEX",
    "SERVED_DEGRADED",
    "SHED",
    "CIRCUIT_OPEN",
    "DEADLINE",
    "INVALID",
    "ERROR",
    "TERMINAL_STATUSES",
]
