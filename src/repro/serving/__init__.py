"""Resilient query-serving: deadlines, admission control, circuit
breaking, and hot index reload on top of the counting index.

The pieces compose bottom-up:

* :class:`~repro.serving.deadline.Deadline` — per-request time budget,
  checked cooperatively inside label scans and BFS levels.
* :class:`~repro.serving.breaker.CircuitBreaker` — fail-fast guard
  around the slow degraded (BFS fallback) path.
* :class:`~repro.serving.reload.IndexWatcher` /
  :class:`~repro.serving.reload.ReloadThread` — detect a rebuilt index
  file and swap it in atomically between requests.
* :class:`~repro.serving.service.SPCService` — the front door: bounded
  admission, load shedding, per-request deadlines, breaker-protected
  degradation and observable ``health()``/``stats()`` snapshots.

The typed errors (:class:`~repro.exceptions.DeadlineExceeded`,
:class:`~repro.exceptions.ServiceOverloaded`,
:class:`~repro.exceptions.CircuitOpenError`) live in
:mod:`repro.exceptions` under :class:`~repro.exceptions.ServingError`,
so lower layers can raise them without importing this package.
"""

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    ServiceOverloaded,
    ServingError,
)
from repro.serving.breaker import CircuitBreaker
from repro.serving.deadline import Deadline
from repro.serving.reload import IndexWatcher, ReloadThread
from repro.serving.service import (
    CIRCUIT_OPEN,
    DEADLINE,
    ERROR,
    INVALID,
    SERVED_DEGRADED,
    SERVED_INDEX,
    SHED,
    TERMINAL_STATUSES,
    QueryResult,
    SPCService,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "IndexWatcher",
    "QueryResult",
    "ReloadThread",
    "SPCService",
    "ServiceOverloaded",
    "ServingError",
    "SERVED_INDEX",
    "SERVED_DEGRADED",
    "SHED",
    "CIRCUIT_OPEN",
    "DEADLINE",
    "INVALID",
    "ERROR",
    "TERMINAL_STATUSES",
]
