"""Shard planning for the multiprocess serving cluster.

A :class:`ShardPlan` partitions the vertex-id space ``[0, n)`` into
``shards`` disjoint pieces and answers the routing questions the
scatter-gather router asks:

* ``shard_of(v)`` — which shard owns vertex ``v`` (pair-count requests
  route by their *source* vertex, so repeated sources land on the same
  worker and its scatter cache);
* ``ranges`` — the contiguous ``[lo, hi)`` slice each shard owns under
  the ``"range"`` strategy, which is what the per-shard
  ``single_source`` partials sweep;
* ``split_targets(targets)`` — per-shard target subsets for set-to-set
  scatter-gather.

Two strategies:

* ``"range"`` — contiguous vertex-id ranges, ``ceil(n / shards)`` wide.
  Required for sharded ``single_source`` (each worker reduces one
  contiguous CSR slice) and the default.
* ``"hash"`` — ``v % shards``. Spreads hot sources across workers when
  vertex ids correlate with popularity; ``single_source`` then runs
  un-sharded on one worker.

Every worker maps the *same* label file (the zero-copy mmap arena), so a
shard owns *routing*, not data: any worker could answer any query, and
the planner's job is purely locality and load spreading. That is also
why reshaping ``shards``/``workers`` needs no data movement — just a
restart with different knobs.
"""

import numpy as np

STRATEGIES = ("range", "hash")


class ShardPlan:
    """Partition of ``[0, n)`` vertex ids into ``shards`` routing shards.

    Parameters
    ----------
    n:
        Vertex count of the served index.
    shards:
        Number of shards (``1 <= shards``; clamped to ``n`` so no shard
        is empty).
    strategy:
        ``"range"`` (contiguous ranges, default) or ``"hash"``
        (``v % shards``).
    """

    __slots__ = ("n", "shards", "strategy", "_bounds")

    def __init__(self, n, shards, strategy="range"):
        if n < 1:
            raise ValueError("n must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown shard strategy {strategy!r}; "
                             f"expected one of {STRATEGIES}")
        self.n = n
        self.shards = min(shards, n)
        self.strategy = strategy
        # Range bounds: shard k owns [bounds[k], bounds[k+1]). Width is
        # ceil(n / shards) so the last shard is the one that runs short.
        width = -(-n // self.shards)
        bounds = [min(k * width, n) for k in range(self.shards + 1)]
        bounds[-1] = n
        self._bounds = bounds

    @property
    def ranges(self):
        """``[(lo, hi), ...]`` per shard — contiguous under ``"range"``.

        Hash plans still report the full ``[0, n)`` split for bookkeeping
        (worker sizing, stats), but their shards do not own contiguous id
        ranges; sharded ``single_source`` requires a range plan.
        """
        return [(self._bounds[k], self._bounds[k + 1])
                for k in range(self.shards)]

    def shard_of(self, v):
        """The shard owning vertex ``v``."""
        if self.strategy == "hash":
            return v % self.shards
        width = self._bounds[1] - self._bounds[0]
        return min(v // width, self.shards - 1) if width else 0

    def shard_of_many(self, vertices):
        """Vectorized :meth:`shard_of` over an int array."""
        vertices = np.asarray(vertices)
        if self.strategy == "hash":
            return vertices % self.shards
        width = self._bounds[1] - self._bounds[0]
        if not width:
            return np.zeros(vertices.shape, dtype=np.int64)
        return np.minimum(vertices // width, self.shards - 1)

    def peer_order(self, shard):
        """Other shards in deterministic rotation order from ``shard``.

        The self-healing router uses this to pick which down shard an
        idle worker adopts (and which pool a hedge can spill into):
        starting the walk at ``shard + 1`` spreads adopted load across
        pools instead of every survivor piling onto shard 0.
        """
        return tuple((shard + step) % self.shards
                     for step in range(1, self.shards))

    def split_targets(self, targets):
        """Per-shard subsets of ``targets`` (list of int lists).

        Set-to-set queries scatter the *target* side: each shard
        aggregates over the targets it owns, the router merges the
        partial ``(delta, sigma)`` answers.
        """
        buckets = [[] for _ in range(self.shards)]
        for t in targets:
            buckets[self.shard_of(t)].append(t)
        return buckets

    def __repr__(self):
        return (f"ShardPlan(n={self.n}, shards={self.shards}, "
                f"strategy={self.strategy!r})")
