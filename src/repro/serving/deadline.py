"""Per-request deadline budgets, checked cooperatively along the query path.

A :class:`Deadline` is a small monotonic-clock stopwatch handed down the
call chain. Long-running stages — the BFS fallback oracle between levels,
the batched flat engine between source groups — call :meth:`Deadline
.check` at natural chunk boundaries, so an expired budget surfaces as a
typed :class:`~repro.exceptions.DeadlineExceeded` within one chunk of
work instead of after an unbounded scan.

The class is deliberately duck-typed: consumers only call ``check()`` /
``expired`` / ``remaining()``, so the traversal and kernel modules never
import :mod:`repro.serving` (no import cycles), and tests can substitute
a fake clock for determinism.
"""

import time

from repro.exceptions import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """A monotonic time budget for one request.

    Parameters
    ----------
    budget:
        Seconds this request may spend, measured from construction (or
        from ``start`` when given). ``None`` means unlimited — every
        method becomes a cheap no-op, so callers can thread one object
        unconditionally.
    clock:
        Callable returning monotonic seconds; injectable for tests.
    """

    __slots__ = ("budget", "_clock", "_started")

    def __init__(self, budget, clock=time.monotonic, start=None):
        if budget is not None and budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget!r}")
        self.budget = budget
        self._clock = clock
        self._started = clock() if start is None else start

    @classmethod
    def of(cls, timeout, clock=time.monotonic):
        """Normalise ``timeout`` into a deadline.

        ``None`` stays ``None`` (no budget at all — cheaper than an
        unlimited Deadline on hot paths); an existing :class:`Deadline`
        passes through; a number becomes a fresh budget starting now.
        """
        if timeout is None or isinstance(timeout, cls):
            return timeout
        return cls(timeout, clock=clock)

    def elapsed(self):
        """Seconds spent since the budget started."""
        return self._clock() - self._started

    def remaining(self):
        """Seconds left; ``inf`` when unlimited, clamped at 0.0."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget - self.elapsed())

    @property
    def expired(self):
        """True when the budget is spent (never for unlimited deadlines)."""
        return self.budget is not None and self.elapsed() >= self.budget

    def check(self):
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.budget is None:
            return
        elapsed = self.elapsed()
        if elapsed >= self.budget:
            raise DeadlineExceeded(self.budget, elapsed)

    def __repr__(self):
        if self.budget is None:
            return "Deadline(unlimited)"
        return (
            f"Deadline(budget={self.budget * 1e3:.1f}ms, "
            f"remaining={self.remaining() * 1e3:.1f}ms)"
        )
