"""Bounded admission control shared by the serving front ends.

:class:`~repro.serving.service.SPCService` (thread pool) and
:class:`~repro.serving.cluster.ClusterService` (multiprocess router) need
identical load-shedding semantics: at most ``capacity`` requests execute
concurrently, up to ``queue_limit`` more wait, and anything beyond that
is shed with a typed :class:`~repro.exceptions.ServiceOverloaded`
carrying a *bounded* retry-after hint. Promoting the logic here (instead
of rewriting it per front end) keeps the contract single-sourced — one
EMA, one backlog formula, one cap.

The retry-after hint is ``ema_latency x backlog depth``, clamped to
``retry_after_cap`` seconds: the raw estimate is unbounded (a 20 ms
deadline burst against a slow fallback once produced ~60 s hints, telling
well-behaved clients to go away for a minute when capacity was back
within one deadline), and an uncapped hint turns a transient spike into
self-inflicted unavailability.

Two admission styles are supported:

* :meth:`AdmissionQueue.admit` — blocking; the caller's thread waits in
  the bounded queue while its deadline allows (the thread-pool service).
* :meth:`AdmissionQueue.offer` — non-blocking; a full house sheds
  immediately (the future-based cluster router, whose "queue" is the set
  of outstanding futures).
"""

import threading
import time

from repro.exceptions import ServiceOverloaded

#: Default ceiling (seconds) for the retry-after hint.
DEFAULT_RETRY_AFTER_CAP = 5.0


class AdmissionQueue:
    """Counting admission gate with load shedding and retry-after hints.

    Parameters
    ----------
    capacity:
        Maximum concurrently admitted requests.
    queue_limit:
        Maximum requests allowed to wait for a slot (blocking
        :meth:`admit`) or to be outstanding beyond ``capacity``
        (non-blocking :meth:`offer`); more are shed.
    retry_after_cap:
        Ceiling, in seconds, on the retry-after hint attached to
        :class:`~repro.exceptions.ServiceOverloaded`. The raw
        latency x backlog estimate is unbounded; the cap keeps a burst
        from quoting minute-long backoffs. ``None`` disables the clamp.
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, capacity, queue_limit, *,
                 retry_after_cap=DEFAULT_RETRY_AFTER_CAP,
                 clock=time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if retry_after_cap is not None and retry_after_cap <= 0:
            raise ValueError("retry_after_cap must be positive or None")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.retry_after_cap = retry_after_cap
        self._clock = clock
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._admissions = 0
        self._ema_latency = 0.001  # optimistic 1 ms seed for retry hints

    # -- hints ----------------------------------------------------------------

    def retry_after(self):
        """Bounded guess (seconds) until a slot is plausibly free.

        ``ema_latency x backlog depth``, clamped to ``retry_after_cap`` —
        never less than 1 ms, never more than the cap.
        """
        backlog = self._in_flight + self._queued + 1 - self.capacity
        hint = max(0.001, self._ema_latency * max(1, backlog))
        if self.retry_after_cap is not None:
            hint = min(hint, self.retry_after_cap)
        return hint

    def _shed(self):
        return ServiceOverloaded(self._in_flight, self._queued,
                                 self.retry_after())

    # -- admission ------------------------------------------------------------

    def admit(self, deadline=None):
        """Take a slot, waiting in the bounded queue; shed when hopeless.

        A request waits only while its ``deadline`` allows; a full queue
        (or an exhausted budget while queued) raises
        :class:`~repro.exceptions.ServiceOverloaded` immediately —
        queueing past the deadline would only burn capacity on answers
        nobody is waiting for. Returns the admission ordinal (a monotonic
        count callers can use for every-N side effects such as reload
        polling).
        """
        with self._cond:
            self._admissions += 1
            ordinal = self._admissions
            if self._in_flight < self.capacity:
                self._in_flight += 1
                return ordinal
            if self._queued >= self.queue_limit:
                raise self._shed()
            self._queued += 1
            try:
                while self._in_flight >= self.capacity:
                    remaining = (None if deadline is None
                                 else deadline.remaining())
                    if remaining is not None and remaining <= 0:
                        raise self._shed()
                    if not self._cond.wait(timeout=remaining):
                        raise self._shed()
            finally:
                self._queued -= 1
            self._in_flight += 1
            return ordinal

    def offer(self):
        """Take a slot without waiting; shed beyond ``capacity + queue_limit``.

        The future-based router admits up to ``capacity + queue_limit``
        outstanding requests (its internal dispatch queue plays the role
        the waiting threads play for :meth:`admit`) and sheds the rest.
        Returns the admission ordinal.
        """
        with self._cond:
            self._admissions += 1
            if self._in_flight >= self.capacity + self.queue_limit:
                raise self._shed()
            self._in_flight += 1
            return self._admissions

    def release(self, elapsed):
        """Give the slot back and fold ``elapsed`` into the latency EMA."""
        with self._cond:
            self._in_flight -= 1
            self._cond.notify()
            # EMA over completed requests drives the retry-after hint.
            self._ema_latency += 0.2 * (elapsed - self._ema_latency)

    # -- observability --------------------------------------------------------

    @property
    def in_flight(self):
        """Requests currently holding a slot."""
        return self._in_flight

    @property
    def queued(self):
        """Requests currently waiting in the blocking queue."""
        return self._queued

    @property
    def ema_latency(self):
        """Exponential moving average of completed-request latency."""
        return self._ema_latency

    def snapshot(self):
        """Flat dict for ``stats()`` surfaces."""
        with self._cond:
            return {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "capacity": self.capacity,
                "queue_limit": self.queue_limit,
            }

    def __repr__(self):
        return (f"AdmissionQueue(in_flight={self._in_flight}, "
                f"queued={self._queued}, capacity={self.capacity}, "
                f"queue_limit={self.queue_limit})")
