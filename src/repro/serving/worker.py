"""Cluster worker process: map the shared label arena, answer batches.

Each worker is a separate OS process that opens the *same* SPCF v4 flat
label file through :func:`repro.io.flat_store.open_shared` — a zero-copy
read-only ``mmap``, so N workers share one physical copy of the label
columns through the page cache instead of N pickled duplicates. The
worker then loops on its pipe: receive one batch, execute it against the
mapped :class:`~repro.core.flat_labels.FlatLabels` with the vectorized
engines of :mod:`repro.core.batch_query`, reply, repeat.

Failure discipline mirrors :class:`~repro.serving.service.SPCService`:
per-request problems (expired deadline, invalid vertex, corrupt arena)
become typed ``ERR`` replies and the worker keeps serving; only a closed
pipe (router gone) or an explicit ``STOP`` ends the process. A reload
command remaps the file in place — the old arena stays valid until the
swap succeeds (mmap pins the old inode even after an atomic replace), so
a corrupt replacement file demotes nothing: the worker reports the
failure and keeps answering from the generation it has.
"""

import os

from repro.core.batch_query import (
    count_many,
    count_set_to_set,
    single_source_range,
)
from repro.exceptions import (
    DeadlineExceeded,
    ReproError,
    SerializationError,
    VertexError,
)
from repro.io.flat_store import open_shared
from repro.serving import protocol
from repro.serving.deadline import Deadline


def _memory_stats(path):
    """RSS and mapping-sharing evidence from ``/proc`` (Linux only).

    Reports the process RSS plus, for the mapping of ``path``, how many
    KiB are resident and how many are *private dirty* — the number that
    must stay ~0 for a read-only shared arena (private dirty pages are
    exactly the "duplicated label memory" the cluster exists to avoid).
    Returns partial data (``supported=False``) where /proc is missing.
    """
    stats = {"pid": os.getpid(), "supported": False, "rss_kb": None,
             "map_rss_kb": 0, "map_private_dirty_kb": 0,
             "map_shared_clean_kb": 0}
    basename = os.path.basename(path)
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    stats["rss_kb"] = int(line.split()[1])
                    break
        with open("/proc/self/smaps") as handle:
            in_mapping = False
            for line in handle:
                if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
                    in_mapping = line.rstrip().endswith(basename)
                    continue
                if not in_mapping:
                    continue
                field = line.split(":", 1)[0]
                if field in ("Rss", "Private_Dirty", "Shared_Clean"):
                    kb = int(line.split()[1])
                    key = {"Rss": "map_rss_kb",
                           "Private_Dirty": "map_private_dirty_kb",
                           "Shared_Clean": "map_shared_clean_kb"}[field]
                    stats[key] += kb
    except OSError:
        return stats
    stats["supported"] = True
    return stats


def _execute(flat, message):
    """Run one batch message against the arena; return the payload."""
    kind = message[0]
    if kind == protocol.PAIRS:
        _, _, sources, targets, budget = message
        deadline = Deadline.of(budget)
        return count_many(flat, list(zip(sources, targets)),
                          deadline=deadline)
    if kind == protocol.SINGLE_SOURCE:
        _, _, s, lo, hi, budget = message
        deadline = Deadline.of(budget)
        dist, count = single_source_range(flat, s, lo, hi, deadline=deadline)
        return dist, count
    if kind == protocol.SET_TO_SET:
        _, _, sources, targets, budget = message
        deadline = Deadline.of(budget)
        if deadline is not None:
            deadline.check()
        return count_set_to_set(flat, sources, targets)
    raise AssertionError(f"unknown batch kind {kind!r}")


def worker_main(conn, path, generation, verify=True, fault=None):
    """Worker process entry point: serve batches from ``conn`` forever.

    ``generation`` is the router-assigned ordinal for the arena mapped at
    spawn; reload commands carry the next ordinal. The first message sent
    is always ``HELLO`` (or an ``ERR`` with batch id ``None`` when the
    initial open fails, letting the router fail fast instead of hanging).

    ``fault`` is the chaos-test hook: a picklable object (e.g.
    :class:`repro.testing.faults.StalledWorker` or
    :class:`~repro.testing.faults.TornPipeWrite`) whose
    ``before_reply(conn, reply)`` runs just before each successful batch
    reply is sent. Returning True means the fault consumed the reply
    (e.g. it wrote a torn frame); marker-file dedup inside the fault
    keeps firing deterministic across supervisor respawns.
    """
    try:
        flat, meta, signature = open_shared(path, verify=verify)
    except (OSError, SerializationError) as exc:
        conn.send((protocol.ERR, None, protocol.ERR_SERIALIZATION, str(exc)))
        conn.close()
        return
    conn.send((protocol.HELLO, generation, meta.n, signature))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == protocol.STOP:
            break
        if kind == protocol.RELOAD:
            next_generation = message[1]
            try:
                flat, meta, signature = open_shared(path, verify=verify)
            except (OSError, SerializationError) as exc:
                conn.send((protocol.RELOADED, generation, False, str(exc)))
            else:
                generation = next_generation
                conn.send((protocol.RELOADED, generation, True, signature))
            continue
        if kind == protocol.PING:
            conn.send((protocol.PONG, generation))
            continue
        if kind == protocol.STATS:
            batch_id = message[1]
            payload = _memory_stats(path)
            payload["generation"] = generation
            payload["signature"] = signature
            payload["entries"] = meta.entries
            payload["arena_bytes"] = meta.total_bytes
            conn.send((protocol.OK, batch_id, generation, payload))
            continue
        batch_id = message[1]
        try:
            payload = _execute(flat, message)
        except DeadlineExceeded as exc:
            conn.send((protocol.ERR, batch_id, protocol.ERR_DEADLINE,
                       str(exc)))
        except VertexError as exc:
            conn.send((protocol.ERR, batch_id, protocol.ERR_VERTEX, str(exc)))
        except SerializationError as exc:
            conn.send((protocol.ERR, batch_id, protocol.ERR_SERIALIZATION,
                       str(exc)))
        except ReproError as exc:
            conn.send((protocol.ERR, batch_id, protocol.ERR_ERROR, str(exc)))
        else:
            reply = (protocol.OK, batch_id, generation, payload)
            if fault is not None and fault.before_reply(conn, reply):
                continue
            conn.send(reply)
    conn.close()
