"""Wire protocol between the cluster router and its worker processes.

Messages travel over :class:`multiprocessing.connection.Connection`
pipes (one duplex pipe per worker), which gives length-prefixed framing,
pickling of numpy payloads, and a ``fileno()`` the selectors-based
router can multiplex — without inventing a socket format. Every message
is a plain tuple whose first element is one of the kind constants below,
so both ends dispatch with a single comparison and the protocol stays
greppable.

Router → worker requests::

    (PAIRS, batch_id, sources, targets, budget)      # count_many batch
    (SINGLE_SOURCE, batch_id, s, lo, hi, budget)     # one shard's slice
    (SET_TO_SET, batch_id, sources, targets, budget) # one shard's targets
    (RELOAD, generation)                             # remap the arena
    (STATS, batch_id)                                # memory/identity probe
    (PING,)                                          # heartbeat probe
    (STOP,)                                          # clean shutdown

Worker → router replies::

    (HELLO, generation, n, signature)                # once, after spawn
    (OK, batch_id, generation, payload)              # request succeeded
    (ERR, batch_id, kind, message)                   # typed request failure
    (RELOADED, generation, ok, detail)               # reload outcome
    (PONG, generation)                               # heartbeat answer

``PING``/``PONG`` is the router's liveness probe for *idle* workers: a
busy worker is supervised through its in-flight batch instead (the
protocol is sequential per worker, so a wedged compute can never answer
a ping anyway). An idle worker that misses its pong within the stall
timeout is declared dead and respawned.

The router does not trust a worker's framing: replies are deframed by a
router-side incremental decoder
(:class:`repro.serving.cluster._FrameDecoder`) that treats a short read,
a torn length prefix, or an unpicklable frame as *that worker's* death —
a crashing worker can corrupt at most its own pipe, never the router.

``budget`` is the batch's deadline budget in seconds (``None`` =
unlimited); the worker rebuilds a local
:class:`~repro.serving.deadline.Deadline` from it, so expiry surfaces as
an ``ERR`` with kind :data:`ERR_DEADLINE` within one scan chunk.
``generation`` is the router-assigned reload ordinal the worker's mapped
arena corresponds to — scatter-gather responses must agree on it, which
is how the router guarantees a response never mixes index generations.

The protocol is deliberately *sequential per worker*: a worker owns at
most one outstanding batch, so the router's view of worker state (idle,
busy, reloading) is exact and reloads can wait for the in-flight batch
to finish on the old arena instead of interrupting it.
"""

#: Router → worker request kinds.
PAIRS = "pairs"
SINGLE_SOURCE = "single_source"
SET_TO_SET = "set_to_set"
RELOAD = "reload"
STATS = "stats"
PING = "ping"
STOP = "stop"

#: Worker → router reply kinds.
HELLO = "hello"
OK = "ok"
ERR = "err"
RELOADED = "reloaded"
PONG = "pong"

#: Typed failure kinds carried by ``ERR`` replies.
ERR_DEADLINE = "deadline"
ERR_VERTEX = "vertex"
ERR_SERIALIZATION = "serialization"
ERR_ERROR = "error"
