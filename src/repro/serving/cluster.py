"""Shared-memory multiprocess serving cluster with scatter-gather sharding.

:class:`ClusterService` is the multiprocess sibling of
:class:`~repro.serving.service.SPCService`. N worker processes each map
the *same* SPCF v4 flat label file read-only (one physical copy of the
label columns, shared through the page cache — see
:func:`repro.io.flat_store.open_shared`), and a selectors-based router
thread owns the serving defences: admission control with capped
retry-after hints, a circuit breaker over worker health, hot reload by
file-signature watching, and the same non-raising
:class:`~repro.serving.service.QueryResult` surface.

The router earns its throughput from *batching*, not just parallelism:
pair requests destined for the same shard are coalesced (up to
``max_batch``, waiting at most ``batch_window`` seconds) into one
``count_many`` round-trip, so the per-request cost amortises one IPC
hop and one vectorized kernel over the whole batch instead of paying a
python merge-join per query.

Sharding is routing, not partitioning — every worker maps the full
arena, and the :class:`~repro.serving.shards.ShardPlan` decides which
worker pool answers which vertex range. ``single_source`` scatters one
range slice per shard and concatenates; ``set_to_set`` scatters the
target side and merges the partial ``(delta, sigma)`` answers. Every
worker reply carries its reload generation, and a gather whose replies
straddle a generation swap is retried whole rather than ever mixing two
index versions in one response.

Hot reload is shard-by-shard: the router bumps a target generation when
the watcher sees a new file signature, then tells each worker to remap
only when that worker is idle and every lower-numbered shard has already
swapped — in-flight batches always complete on the arena they started
on, and a worker whose remap fails keeps serving its old (still-mapped)
inode rather than going dark.
"""

import asyncio
import collections
import multiprocessing
import os
import selectors
import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    SerializationError,
    ServiceOverloaded,
    VertexError,
)
from repro.io.flat_store import read_flat_meta
from repro.observability.events import get_event_log
from repro.observability.metrics import get_registry
from repro.serving import protocol
from repro.serving.admission import DEFAULT_RETRY_AFTER_CAP, AdmissionQueue
from repro.serving.breaker import CircuitBreaker
from repro.serving.deadline import Deadline
from repro.serving.reload import IndexWatcher
from repro.serving.service import (
    CIRCUIT_OPEN,
    DEADLINE,
    ERROR,
    INVALID,
    SERVED_INDEX,
    SHED,
    QueryResult,
)
from repro.serving.shards import ShardPlan

INF = float("inf")

#: Worker lifecycle states as the router sees them.
STARTING = "starting"
IDLE = "idle"
BUSY = "busy"
RELOADING = "reloading"
STOPPED = "stopped"
DEAD = "dead"

#: Whole-gather retries allowed when replies straddle a generation swap.
GATHER_RETRY_LIMIT = 3

_ERR_STATUS = {
    protocol.ERR_DEADLINE: DEADLINE,
    protocol.ERR_VERTEX: INVALID,
    protocol.ERR_SERIALIZATION: ERROR,
    protocol.ERR_ERROR: ERROR,
}


def _err_exception(kind, message):
    """Rehydrate a worker's typed ERR reply into a library exception."""
    if kind == protocol.ERR_SERIALIZATION:
        return SerializationError(message)
    return ReproError(message)


def _deadline_error(deadline):
    """A :class:`DeadlineExceeded` carrying the request's real budget."""
    if deadline is None:  # pragma: no cover - defensive
        return DeadlineExceeded(0.0, 0.0)
    return DeadlineExceeded(deadline.budget, deadline.elapsed())


class _Worker:
    """Router-side record of one worker process and its pipe."""

    __slots__ = ("index", "shard", "process", "conn", "generation", "state",
                 "pinned")

    def __init__(self, index, shard, process, conn):
        self.index = index
        self.shard = shard
        self.process = process
        self.conn = conn
        self.generation = 0
        self.state = STARTING
        self.pinned = collections.deque()

    @property
    def live(self):
        """True while the worker can still be given work."""
        return self.state not in (DEAD, STOPPED)


class _PairRequest:
    """One ``submit`` request waiting to be coalesced into a shard batch."""

    __slots__ = ("s", "t", "deadline", "started", "enqueued", "future")

    def __init__(self, s, t, deadline, started, future):
        self.s = s
        self.t = t
        self.deadline = deadline
        self.started = started
        self.enqueued = started
        self.future = future


class _Job:
    """A scatter-gather job: sub-requests per shard, merged on completion."""

    requires_uniform = True
    admitted = True

    def __init__(self, future, deadline, started):
        self.future = future
        self.deadline = deadline
        self.started = started
        self.subs = {}
        self.replies = {}
        self.retries = 0
        self.done = False

    def keys(self):
        """Sub-request keys, each dispatched to one worker."""
        return list(self.subs)

    def resolve(self, status, answer, error, generation, elapsed):
        """Complete the caller-visible future with a terminal result."""
        self.future.set_result(QueryResult(
            status, answer=answer, error=error, elapsed=elapsed,
            generation=generation,
        ))


class _SingleSourceJob(_Job):
    """``single_source`` scattered as one contiguous range per shard."""

    def __init__(self, future, deadline, started, s, plan):
        super().__init__(future, deadline, started)
        self.s = s
        if plan.strategy == "range":
            for shard, (lo, hi) in enumerate(plan.ranges):
                if lo < hi:
                    self.subs[shard] = (lo, hi)
        else:
            # Hash shards own no contiguous id range: run the full sweep
            # on the source's home shard instead of scattering.
            self.subs[plan.shard_of(s)] = (0, plan.n)

    def shard_for(self, key):
        """The shard pool that must answer sub ``key``."""
        return key

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        lo, hi = self.subs[key]
        return (protocol.SINGLE_SOURCE, batch_id, self.s, lo, hi, budget)

    def merge(self, payloads):
        """Concatenate per-range slices back into full (dist, count)."""
        parts = [payloads[key] for key in sorted(payloads)]
        dist = np.concatenate([p[0] for p in parts])
        count = np.concatenate([p[1] for p in parts])
        return dist, count


class _SetToSetJob(_Job):
    """``set_to_set`` scattered over the target side, min/sum merged."""

    def __init__(self, future, deadline, started, sources, buckets):
        super().__init__(future, deadline, started)
        self.sources = sources
        for shard, targets in enumerate(buckets):
            if targets:
                self.subs[shard] = targets

    def shard_for(self, key):
        """The shard pool that must answer sub ``key``."""
        return key

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        return (protocol.SET_TO_SET, batch_id, self.sources, self.subs[key],
                budget)

    def merge(self, payloads):
        """Global minimum distance; counts summed at that minimum."""
        best = min(payloads[key][0] for key in payloads)
        if best == INF:
            return INF, 0
        sigma = sum(payloads[key][1] for key in payloads
                    if payloads[key][0] == best)
        return best, sigma


class _PairBatchJob(_Job):
    """A caller-supplied pair batch scattered by source shard.

    The bulk twin of the router's own coalescing: the caller hands over
    the whole batch up front, so admission, the future, and the inbox
    hop are paid once per batch instead of once per pair. Each shard
    gets one ``PAIRS`` sub covering its slice; ``merge`` reassembles the
    per-shard answers into caller order.
    """

    def __init__(self, future, deadline, started, sources, targets, plan):
        super().__init__(future, deadline, started)
        self.size = len(sources)
        self._positions = {}
        owners = plan.shard_of_many(sources)
        for shard in range(plan.shards):
            pos = np.nonzero(owners == shard)[0]
            if pos.size:
                self.subs[shard] = (sources[pos].tolist(),
                                    targets[pos].tolist())
                self._positions[shard] = pos.tolist()

    def shard_for(self, key):
        """The shard pool that must answer sub ``key``."""
        return key

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        sources, targets = self.subs[key]
        return (protocol.PAIRS, batch_id, sources, targets, budget)

    def merge(self, payloads):
        """Scatter per-shard answers back to the caller's pair order."""
        out = [None] * self.size
        for key, answers in payloads.items():
            for pos, answer in zip(self._positions[key], answers):
                out[pos] = answer
        return out


class _StatsJob(_Job):
    """Memory/identity probe fanned out to every live worker."""

    requires_uniform = False
    admitted = False

    def __init__(self, future, worker_indexes):
        super().__init__(future, None, 0.0)
        for index in worker_indexes:
            self.subs[index] = index

    def shard_for(self, key):
        """Stats subs are pinned to a worker, not a shard."""
        return None

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        return (protocol.STATS, batch_id)

    def merge(self, payloads):
        """Worker payload dicts, ordered by worker index."""
        return [payloads[key] for key in sorted(payloads)]

    def resolve(self, status, answer, error, generation, elapsed):
        """Stats callers get the raw payload list, or the typed error."""
        if status == SERVED_INDEX:
            self.future.set_result(answer)
        else:
            self.future.set_exception(
                error if error is not None else ReproError(status))


class _MetricHandles:
    """Hot-path metric instruments, resolved once at construction.

    Registry lookups build a label key and take a lock per call; at
    cluster throughput (tens of thousands of requests per second on one
    core) those few microseconds per request are real capacity. The
    request path therefore touches pre-resolved handles only. Rare
    paths (reload, worker death) still look instruments up lazily, so
    they keep working even if the registry is swapped mid-flight.
    """

    __slots__ = ("requests", "outcomes", "seconds", "inflight",
                 "batch_size", "batches", "batch_seconds")

    def __init__(self, registry, shards):
        self.requests = registry.counter("spc_cluster_requests_total")
        self.outcomes = {
            status: registry.counter("spc_cluster_request_outcomes_total",
                                     status=status)
            for status in (SERVED_INDEX, SHED, CIRCUIT_OPEN, DEADLINE,
                           INVALID, ERROR)
        }
        self.seconds = registry.histogram("spc_cluster_request_seconds")
        self.inflight = registry.gauge("spc_cluster_inflight_requests")
        self.batch_size = registry.histogram(
            "spc_cluster_batch_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self.batches = [
            registry.counter("spc_cluster_batches_total", shard=str(shard))
            for shard in range(shards)
        ]
        self.batch_seconds = [
            registry.histogram("spc_cluster_batch_seconds", shard=str(shard))
            for shard in range(shards)
        ]


class ClusterService:
    """Multiprocess scatter-gather serving tier over one shared arena.

    Parameters
    ----------
    index_path:
        SPCF v4 flat label file (``raw`` encoding — the mmap-shared
        format; delta files are rejected because decoding privatises
        the rank column per process).
    workers / shards / strategy:
        Worker-process count, shard count (``workers >= shards``; each
        shard gets ``workers // shards`` processes, remainder spread
        round-robin) and the :class:`~repro.serving.shards.ShardPlan`
        strategy (``"range"`` or ``"hash"``).
    batch_window / max_batch:
        Router-side coalescing: a shard batch is flushed when it holds
        ``max_batch`` pair requests or its oldest member has waited
        ``batch_window`` seconds.
    capacity / queue_limit / retry_after_cap:
        Admission control (see
        :class:`~repro.serving.admission.AdmissionQueue`); the router
        admits up to ``capacity + queue_limit`` outstanding requests and
        sheds the rest with a capped retry-after hint.
    default_deadline:
        Per-request budget in seconds when the caller gives none.
    breaker / failure_threshold / reset_timeout:
        Circuit breaker over worker failures (a worker death or a
        corrupt-arena error trips it; request-level deadline and vertex
        errors do not).
    reload_check_every:
        Poll the index file signature every N admissions (0 disables
        polling; :meth:`check_reload` stays available).
    verify:
        Forwarded to :func:`~repro.io.flat_store.open_shared` (CRC
        checks on map).
    start_timeout:
        Seconds to wait for every worker's HELLO before giving up.
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, index_path, *, workers=2, shards=1, strategy="range",
                 batch_window=0.002, max_batch=64, capacity=64,
                 queue_limit=256, retry_after_cap=DEFAULT_RETRY_AFTER_CAP,
                 default_deadline=None, breaker=None, failure_threshold=5,
                 reset_timeout=1.0, reload_check_every=64, verify=True,
                 start_timeout=60.0, clock=time.monotonic):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards < 1 or shards > workers:
            raise ValueError(
                f"shards must be in [1, workers], got {shards} "
                f"(workers={workers})")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive or None")
        self.index_path = str(index_path)
        meta = read_flat_meta(self.index_path)
        if meta.encoding != "raw":
            raise SerializationError(
                f"{self.index_path}: cluster serving requires the "
                f"mmap-shareable 'raw' encoding, found {meta.encoding!r}")
        self.n = meta.n
        self.plan = ShardPlan(meta.n, shards, strategy=strategy)
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.default_deadline = default_deadline
        self._clock = clock
        self._admission = AdmissionQueue(capacity, queue_limit,
                                         retry_after_cap=retry_after_cap,
                                         clock=clock)
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold=failure_threshold,
                                     reset_timeout=reset_timeout, clock=clock)
        self.breaker = breaker
        self._watcher = IndexWatcher(self.index_path)
        self._reload_check_every = reload_check_every
        self._target_generation = 0
        self._closing = False
        self._closed = False
        self._stats_lock = threading.Lock()
        self.counters = {
            "requests": 0, "batches": 0, "gather_retries": 0,
            SERVED_INDEX: 0, SHED: 0, CIRCUIT_OPEN: 0, DEADLINE: 0,
            INVALID: 0, ERROR: 0, "reloads": 0, "reload_failures": 0,
            "worker_failures": 0,
        }
        registry = get_registry()
        self._metrics = (_MetricHandles(registry, self.plan.shards)
                         if registry.enabled else None)
        self._asleep = False
        self._inbox = collections.deque()
        self._pending = [collections.deque() for _ in range(self.plan.shards)]
        self._subs = [collections.deque() for _ in range(self.plan.shards)]
        self._inflight = {}
        self._next_batch_id = 0
        self._start_error = None
        self._ready = threading.Event()
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._workers = []
        ctx = self._mp_context()
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=worker_entry,
                args=(child_conn, self.index_path, 0, verify),
                name=f"spc-cluster-worker-{index}", daemon=True,
            )
            process.start()
            child_conn.close()
            worker = _Worker(index, index % self.plan.shards, process,
                             parent_conn)
            self._workers.append(worker)
            self._selector.register(parent_conn.fileno(),
                                    selectors.EVENT_READ, worker)
        registry = get_registry()
        if registry.enabled:
            for shard in range(self.plan.shards):
                registry.gauge("spc_cluster_workers", shard=str(shard)).set(
                    sum(1 for w in self._workers if w.shard == shard))
        self._router = threading.Thread(target=self._run,
                                        name="spc-cluster-router",
                                        daemon=True)
        self._router.start()
        if not self._ready.wait(start_timeout):
            self.close()
            raise SerializationError(
                f"cluster workers did not come up within {start_timeout}s")
        if self._start_error is not None:
            error = self._start_error
            self.close()
            raise SerializationError(f"cluster worker failed to start: "
                                     f"{error}")

    @staticmethod
    def _mp_context():
        """Fork context when available (cheap, inherits nothing mutable
        the worker uses); the platform default otherwise."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    # -- submission surface ---------------------------------------------------

    def submit_nowait(self, s, t, timeout=None):
        """Admit one pair query; resolves to a :class:`QueryResult`.

        Never raises: admission shedding, an open breaker and invalid
        vertices resolve the returned future immediately with the
        matching terminal status, exactly like
        :meth:`SPCService.submit <repro.serving.service.SPCService.submit>`
        but without blocking the caller.
        """
        started = self._clock()
        future = Future()
        self._bump("requests")
        metrics = self._metrics
        if metrics is not None:
            metrics.requests.inc()
        if self._closed or self._closing:
            return self._reject(future, started, ERROR,
                                ReproError("cluster is closed"))
        try:
            s = int(s)
            t = int(t)
            if not (0 <= s < self.n):
                raise VertexError(s, self.n)
            if not (0 <= t < self.n):
                raise VertexError(t, self.n)
        except (TypeError, ValueError):
            return self._reject(future, started, INVALID,
                                ReproError(f"bad vertex pair ({s!r}, {t!r})"))
        except VertexError as exc:
            return self._reject(future, started, INVALID, exc)
        deadline = self._deadline(timeout)
        try:
            self.breaker.before_call()
        except CircuitOpenError as exc:
            return self._reject(future, started, CIRCUIT_OPEN, exc)
        try:
            ordinal = self._admission.offer()
        except ServiceOverloaded as exc:
            return self._reject(future, started, SHED, exc)
        self._observe_admission()
        request = _PairRequest(s, t, deadline, started, future)
        self._inbox.append(("pair", request))
        self._wake()
        if (self._reload_check_every
                and ordinal % self._reload_check_every == 0):
            self.check_reload()
        return future

    def submit(self, s, t, timeout=None):
        """Blocking :meth:`submit_nowait`: always a terminal result."""
        return self.submit_nowait(s, t, timeout=timeout).result()

    def asubmit(self, s, t, timeout=None):
        """Awaitable :meth:`submit_nowait` for asyncio front ends."""
        return asyncio.wrap_future(self.submit_nowait(s, t, timeout=timeout))

    def submit_many_nowait(self, pairs, timeout=None):
        """Admit a whole pair batch as one request; returns a future.

        The future resolves to a single :class:`QueryResult` whose
        ``answer`` is a list of ``(dist, count)`` tuples aligned with
        ``pairs``. Admission, deadline, breaker, and the router hop are
        paid once for the batch — the high-throughput front door for
        callers that already hold many pairs, where per-pair futures
        would dominate the (vectorized) kernel cost. The whole batch
        shares one terminal status: an invalid vertex, expired deadline,
        or shed rejects all of it, and scatter-gather across shards
        never merges replies from different index generations.
        """
        pairs = list(pairs)
        if not pairs:
            started = self._clock()
            self._bump("requests")
            future = Future()
            self._bump(SERVED_INDEX)
            future.set_result(QueryResult(
                SERVED_INDEX, answer=[], elapsed=self._clock() - started,
                generation=self.generation))
            return future
        try:
            sources = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                                  count=len(pairs))
            targets = np.fromiter((p[1] for p in pairs), dtype=np.int64,
                                  count=len(pairs))
        except (TypeError, ValueError):
            future = Future()
            self._bump("requests")
            return self._reject(future, self._clock(), INVALID,
                                ReproError("pairs must be (int, int) tuples"))
        bad = None
        if int(sources.min()) < 0 or int(sources.max()) >= self.n:
            bad = sources
        elif int(targets.min()) < 0 or int(targets.max()) >= self.n:
            bad = targets
        if bad is not None:
            offender = int(bad[(bad < 0) | (bad >= self.n)][0])
            future = Future()
            self._bump("requests")
            return self._reject(future, self._clock(), INVALID,
                                VertexError(offender, self.n))
        return self._submit_job(
            lambda future, deadline, started: _PairBatchJob(
                future, deadline, started, sources, targets, self.plan),
            validate=(), timeout=timeout)

    def submit_many(self, pairs, timeout=None):
        """Blocking :meth:`submit_many_nowait`: always a terminal result."""
        return self.submit_many_nowait(pairs, timeout=timeout).result()

    def single_source(self, s, timeout=None):
        """Scatter-gather ``(dist, count)`` arrays from ``s``.

        Range plans scatter one contiguous slice per shard and
        concatenate; hash plans run the full sweep on the source's home
        shard. Returns a :class:`QueryResult` whose ``answer`` is the
        ``(dist, count)`` array pair.
        """
        return self._submit_job(
            lambda future, deadline, started: _SingleSourceJob(
                future, deadline, started, int(s), self.plan),
            validate=[s], timeout=timeout).result()

    def set_to_set(self, sources, targets, timeout=None):
        """Scatter-gather ``(sd(S, T), spc(S, T))`` over target shards."""
        sources = [int(v) for v in sources]
        targets = [int(v) for v in targets]
        if not sources or not targets:
            result = QueryResult(SERVED_INDEX, answer=(INF, 0),
                                 generation=self.generation)
            self._bump(SERVED_INDEX)
            future = Future()
            future.set_result(result)
            return future.result()
        buckets = self.plan.split_targets(targets)
        return self._submit_job(
            lambda future, deadline, started: _SetToSetJob(
                future, deadline, started, sources, buckets),
            validate=sources + targets, timeout=timeout).result()

    def _submit_job(self, factory, validate, timeout):
        """Common admission/validation path for scatter-gather jobs.

        Returns the future; blocking entry points call ``.result()`` on
        it, :meth:`submit_many_nowait` hands it straight to the caller.
        """
        started = self._clock()
        future = Future()
        self._bump("requests")
        metrics = self._metrics
        if metrics is not None:
            metrics.requests.inc()
        if self._closed or self._closing:
            return self._reject(future, started, ERROR,
                                ReproError("cluster is closed"))
        for v in validate:
            v = int(v)
            if not (0 <= v < self.n):
                return self._reject(future, started, INVALID,
                                    VertexError(v, self.n))
        deadline = self._deadline(timeout)
        try:
            self.breaker.before_call()
        except CircuitOpenError as exc:
            return self._reject(future, started, CIRCUIT_OPEN, exc)
        try:
            self._admission.offer()
        except ServiceOverloaded as exc:
            return self._reject(future, started, SHED, exc)
        self._observe_admission()
        job = factory(future, deadline, started)
        self._inbox.append(("job", job))
        self._wake()
        return future

    def _deadline(self, timeout):
        """Normalise a caller timeout against the service default."""
        if timeout is None:
            timeout = self.default_deadline
        return Deadline.of(timeout, clock=self._clock)

    def _reject(self, future, started, status, error):
        """Resolve a request terminally before it reaches the router."""
        self._bump(status)
        metrics = self._metrics
        if metrics is not None:
            metrics.outcomes[status].inc()
        future.set_result(QueryResult(status, error=error,
                                      elapsed=self._clock() - started,
                                      generation=self.generation))
        return future

    # -- hot reload -----------------------------------------------------------

    def check_reload(self):
        """Poll the file signature; start a rolling swap when it moved."""
        if self._closed:
            return False
        if not self._watcher.poll():
            return False
        self._watcher.mark()
        self.reload()
        return True

    def reload(self):
        """Force a rolling, shard-by-shard remap of every worker."""
        self._inbox.append(("reload", None))
        self._wake()

    # -- observability --------------------------------------------------------

    @property
    def generation(self):
        """Lowest generation any live worker is still serving."""
        generations = [w.generation for w in self._workers if w.live]
        return min(generations) if generations else 0

    @property
    def target_generation(self):
        """Generation the current/last rolling reload is driving toward."""
        return self._target_generation

    def stats(self):
        """Counter snapshot plus per-worker state for dashboards."""
        with self._stats_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "generation": self.generation,
            "target_generation": self._target_generation,
            "shards": self.plan.shards,
            "strategy": self.plan.strategy,
            "ema_latency": self._admission.ema_latency,
            "admission": self._admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "workers": [
                {"index": w.index, "shard": w.shard, "state": w.state,
                 "generation": w.generation, "pid": w.process.pid,
                 "alive": w.process.is_alive()}
                for w in self._workers
            ],
        }

    def worker_stats(self, timeout=30.0):
        """Memory/identity probes from every live worker (RSS, mapping
        sharing evidence, arena signature). Raises on a closed cluster."""
        if self._closed or self._closing:
            raise ReproError("cluster is closed")
        live = [w.index for w in self._workers if w.live]
        if not live:
            raise ReproError("no live workers")
        future = Future()
        job = _StatsJob(future, live)
        self._inbox.append(("job", job))
        self._wake()
        return future.result(timeout=timeout)

    def _bump(self, key):
        with self._stats_lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    def _observe_admission(self):
        metrics = self._metrics
        if metrics is not None:
            metrics.inflight.set(self._admission.in_flight)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout=10.0):
        """Drain in-flight work, stop workers, join the router."""
        if self._closed:
            return
        self._closed = True
        self._inbox.append(("close", None))
        self._wake()
        self._router.join(timeout=timeout)
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        try:
            self._selector.close()
        except OSError:  # pragma: no cover
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def __enter__(self):
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb):
        """Context-manager exit: always :meth:`close`."""
        self.close()
        return False

    def __repr__(self):
        live = sum(1 for w in self._workers if w.live)
        return (f"ClusterService(workers={live}/{len(self._workers)}, "
                f"shards={self.plan.shards}, generation={self.generation})")

    # -- router thread --------------------------------------------------------

    def _wake(self):
        # Deduplicated: the write (a syscall per request at peak load) is
        # only needed when the router is parked in select(). The waker
        # clears the flag itself so a burst of producers pays one syscall,
        # not one per request — the byte already in the pipe guarantees
        # the router will wake and drain everything appended after it.
        # The router re-checks the inbox *after* re-arming the flag, so a
        # producer that reads a stale False still gets its item seen
        # before any sleep.
        if not self._asleep:
            return
        self._asleep = False
        try:
            os.write(self._wake_w, b"x")
        except (OSError, ValueError):
            pass

    def _run(self):
        while True:
            self._drain_inbox()
            timer = self._dispatch()
            if self._closing and self._quiescent():
                break
            self._asleep = True
            if self._inbox:
                self._asleep = False
                continue
            try:
                events = self._selector.select(timer)
            except OSError:  # pragma: no cover - selector torn down
                break
            finally:
                self._asleep = False
            for key, _ in events:
                if key.data is None:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                else:
                    self._on_readable(key.data)
        self._shutdown_workers()

    def _drain_inbox(self):
        while self._inbox:
            kind, payload = None, None
            try:
                item = self._inbox.popleft()
            except IndexError:  # pragma: no cover - racing producer
                break
            kind = item[0]
            payload = item[1] if len(item) > 1 else None
            if kind == "pair":
                payload.enqueued = self._clock()
                self._pending[self.plan.shard_of(payload.s)].append(payload)
            elif kind == "job":
                for key in payload.keys():
                    shard = payload.shard_for(key)
                    if shard is None:
                        self._workers[key].pinned.append((payload, key))
                    else:
                        self._subs[shard].append((payload, key))
            elif kind == "reload":
                self._target_generation += 1
            elif kind == "close":
                self._closing = True

    def _quiescent(self):
        if self._inflight or self._inbox:
            return False
        if any(self._pending) or any(self._subs):
            return False
        if any(w.state == RELOADING for w in self._workers):
            return False
        return all(not w.pinned for w in self._workers)

    def _shard_can_reload(self, shard):
        """Shard-by-shard ordering: lower shards must finish swapping."""
        for worker in self._workers:
            if (worker.live and worker.shard < shard
                    and worker.generation < self._target_generation):
                return False
        return True

    def _dispatch(self):
        now = self._clock()
        for worker in self._workers:
            if worker.state != IDLE:
                continue
            if (worker.generation < self._target_generation
                    and not worker.pinned
                    and self._shard_can_reload(worker.shard)):
                worker.conn.send((protocol.RELOAD, self._target_generation))
                worker.state = RELOADING
                continue
            if worker.pinned:
                job, key = worker.pinned.popleft()
                self._dispatch_sub(worker, job, key)
                continue
            shard = worker.shard
            if self._subs[shard]:
                job, key = self._subs[shard].popleft()
                self._dispatch_sub(worker, job, key)
                continue
            if self._batch_ready(shard, now):
                self._dispatch_pairs(worker, shard)
        self._fail_orphaned_shards()
        return self._next_timer(now)

    def _batch_ready(self, shard, now):
        pending = self._pending[shard]
        if not pending:
            return False
        if self._closing or len(pending) >= self.max_batch:
            return True
        return now - pending[0].enqueued >= self.batch_window

    def _next_timer(self, now):
        """Earliest batch-window expiry, or None to block on events."""
        timer = None
        for shard, pending in enumerate(self._pending):
            if not pending:
                continue
            if not any(w.state == IDLE and w.shard == shard
                       for w in self._workers):
                continue
            wait = self.batch_window - (now - pending[0].enqueued)
            wait = max(wait, 0.0)
            timer = wait if timer is None else min(timer, wait)
        return timer

    def _next_id(self):
        self._next_batch_id += 1
        return self._next_batch_id

    def _dispatch_pairs(self, worker, shard):
        pending = self._pending[shard]
        members = []
        budget = None
        unlimited = False
        while pending and len(members) < self.max_batch:
            request = pending.popleft()
            if request.deadline is not None:
                remaining = request.deadline.remaining()
                if remaining <= 0:
                    self._finish_pair(request, DEADLINE,
                                      error=_deadline_error(request.deadline))
                    continue
                budget = remaining if budget is None else max(budget,
                                                              remaining)
            else:
                unlimited = True
            members.append(request)
        if not members:
            return
        batch_id = self._next_id()
        message = (protocol.PAIRS, batch_id,
                   [r.s for r in members], [r.t for r in members],
                   None if unlimited else budget)
        try:
            worker.conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            self._on_worker_death(worker)
            for request in reversed(members):
                pending.appendleft(request)
            return
        worker.state = BUSY
        self._inflight[batch_id] = ("pairs", worker, members, self._clock())
        metrics = self._metrics
        if metrics is not None:
            metrics.batch_size.observe(len(members))

    def _dispatch_sub(self, worker, job, key):
        if job.done:
            return
        budget = None
        if job.deadline is not None:
            budget = job.deadline.remaining()
            if budget <= 0:
                self._finish_job(job, DEADLINE,
                                 error=_deadline_error(job.deadline))
                return
        batch_id = self._next_id()
        try:
            worker.conn.send(job.message(key, batch_id, budget))
        except (OSError, ValueError, BrokenPipeError):
            self._on_worker_death(worker)
            shard = job.shard_for(key)
            if shard is not None:
                self._subs[shard].append((job, key))
            else:
                self._finish_job(job, ERROR,
                                 error=ReproError("worker died"))
            return
        worker.state = BUSY
        self._inflight[batch_id] = ("sub", worker, job, key, self._clock())

    def _fail_orphaned_shards(self):
        """Fail queued work for shards whose whole pool is gone."""
        for shard in range(self.plan.shards):
            if any(w.live and w.shard == shard for w in self._workers):
                continue
            while self._pending[shard]:
                request = self._pending[shard].popleft()
                self._finish_pair(request, ERROR,
                                  error=ReproError(
                                      f"no live workers for shard {shard}"))
            while self._subs[shard]:
                job, _ = self._subs[shard].popleft()
                self._finish_job(job, ERROR,
                                 error=ReproError(
                                     f"no live workers for shard {shard}"))

    # -- reply handling -------------------------------------------------------

    def _on_readable(self, worker):
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._on_worker_death(worker)
            return
        kind = message[0]
        if kind == protocol.HELLO:
            worker.generation = message[1]
            worker.state = IDLE
            if all(w.state != STARTING for w in self._workers):
                self._ready.set()
            return
        if kind == protocol.RELOADED:
            self._on_reloaded(worker, message)
            return
        if kind == protocol.ERR and message[1] is None:
            # Startup failure: the worker could not map the arena.
            self._start_error = message[3]
            self._ready.set()
            self._on_worker_death(worker)
            return
        batch_id = message[1]
        entry = self._inflight.pop(batch_id, None)
        if entry is None:  # pragma: no cover - stray reply
            return
        worker.state = IDLE
        if entry[0] == "pairs":
            self._on_pairs_reply(worker, entry, message)
        else:
            self._on_sub_reply(worker, entry, message)

    def _on_pairs_reply(self, worker, entry, message):
        _, _, members, sent_at = entry
        self._bump("batches")
        metrics = self._metrics
        if metrics is not None:
            metrics.batches[worker.shard].inc()
            metrics.batch_seconds[worker.shard].observe(
                self._clock() - sent_at)
        if message[0] == protocol.ERR:
            kind, detail = message[2], message[3]
            status = _ERR_STATUS.get(kind, ERROR)
            if status == ERROR:
                self.breaker.record_failure()
            for request in members:
                error = (_deadline_error(request.deadline)
                         if kind == protocol.ERR_DEADLINE
                         else _err_exception(kind, detail))
                self._finish_pair(request, status, error=error)
            return
        self.breaker.record_success()
        generation = message[2]
        answers = message[3]
        for request, answer in zip(members, answers):
            if (request.deadline is not None
                    and request.deadline.remaining() <= 0):
                self._finish_pair(request, DEADLINE,
                                  error=_deadline_error(request.deadline))
            else:
                self._finish_pair(request, SERVED_INDEX, answer=answer,
                                  generation=generation)

    def _on_sub_error(self, job, kind, detail):
        status = _ERR_STATUS.get(kind, ERROR)
        if status == ERROR:
            self.breaker.record_failure()
        error = (_deadline_error(job.deadline)
                 if kind == protocol.ERR_DEADLINE
                 else _err_exception(kind, detail))
        self._finish_job(job, status, error=error)

    def _on_sub_reply(self, worker, entry, message):
        _, _, job, key, sent_at = entry
        if isinstance(job, _PairBatchJob):
            # A bulk sub is one coalesced worker round-trip, same as a
            # router-built pair batch — account it under the same
            # counters so the batching instruments cover both doors.
            self._bump("batches")
            metrics = self._metrics
            if metrics is not None:
                metrics.batches[worker.shard].inc()
                metrics.batch_seconds[worker.shard].observe(
                    self._clock() - sent_at)
                metrics.batch_size.observe(len(job.subs[key][0]))
        if message[0] == protocol.ERR:
            self._on_sub_error(job, message[2], message[3])
            return
        self.breaker.record_success()
        if job.done:
            return
        job.replies[key] = (message[2], message[3])
        if len(job.replies) < len(job.subs):
            return
        generations = {gen for gen, _ in job.replies.values()}
        if job.requires_uniform and len(generations) > 1:
            # A rolling swap landed mid-gather: never merge two index
            # generations into one answer — retry the whole scatter.
            self._bump("gather_retries")
            registry = get_registry()
            if registry.enabled:
                registry.counter("spc_cluster_gather_retries_total").inc()
            if job.retries >= GATHER_RETRY_LIMIT:
                self._finish_job(job, ERROR, error=ReproError(
                    f"gather saw mixed generations {sorted(generations)} "
                    f"after {job.retries} retries"))
                return
            job.retries += 1
            job.replies.clear()
            for sub_key in job.keys():
                shard = job.shard_for(sub_key)
                if shard is None:
                    self._workers[sub_key].pinned.append((job, sub_key))
                else:
                    self._subs[shard].append((job, sub_key))
            return
        payloads = {k: payload for k, (_, payload) in job.replies.items()}
        answer = job.merge(payloads)
        self._finish_job(job, SERVED_INDEX, answer=answer,
                         generation=min(generations))

    def _on_reloaded(self, worker, message):
        generation, ok, detail = message[1], message[2], message[3]
        worker.state = IDLE
        registry = get_registry()
        if ok:
            worker.generation = generation
            self._bump("reloads")
            if registry.enabled:
                registry.counter("spc_cluster_reloads_total",
                                 outcome="success").inc()
                registry.gauge("spc_cluster_generation").set(self.generation)
            get_event_log().emit("cluster_worker_reloaded",
                                 worker=worker.index, shard=worker.shard,
                                 generation=generation)
        else:
            self._bump("reload_failures")
            if registry.enabled:
                registry.counter("spc_cluster_reloads_total",
                                 outcome="failure").inc()
            get_event_log().emit("cluster_reload_failed",
                                 worker=worker.index, shard=worker.shard,
                                 detail=str(detail))

    def _on_worker_death(self, worker):
        if worker.state == DEAD:
            return
        was_starting = worker.state == STARTING
        worker.state = DEAD
        try:
            self._selector.unregister(worker.conn.fileno())
        except (KeyError, ValueError, OSError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        self._bump("worker_failures")
        self.breaker.record_failure()
        registry = get_registry()
        if registry.enabled:
            shard = str(worker.shard)
            registry.counter("spc_cluster_worker_failures_total",
                             shard=shard).inc()
            registry.gauge("spc_cluster_workers", shard=shard).set(
                sum(1 for w in self._workers
                    if w.live and w.shard == worker.shard))
        get_event_log().emit("cluster_worker_died", worker=worker.index,
                             shard=worker.shard)
        dead_batches = [bid for bid, entry in self._inflight.items()
                        if entry[1] is worker]
        for batch_id in dead_batches:
            entry = self._inflight.pop(batch_id)
            if entry[0] == "pairs":
                for request in entry[2]:
                    self._finish_pair(request, ERROR,
                                      error=ReproError("worker died"))
            else:
                self._finish_job(entry[2], ERROR,
                                 error=ReproError("worker died"))
        while worker.pinned:
            job, _ = worker.pinned.popleft()
            self._finish_job(job, ERROR, error=ReproError("worker died"))
        if was_starting and not self._ready.is_set():
            if self._start_error is None:
                self._start_error = "worker exited before HELLO"
            self._ready.set()

    def _shutdown_workers(self):
        for worker in self._workers:
            if not worker.live:
                continue
            try:
                worker.conn.send((protocol.STOP,))
            except (OSError, ValueError, BrokenPipeError):
                pass
            try:
                self._selector.unregister(worker.conn.fileno())
            except (KeyError, ValueError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.state = STOPPED
        self._fail_everything(ReproError("cluster is closed"))

    def _fail_everything(self, error):
        for shard in range(self.plan.shards):
            while self._pending[shard]:
                self._finish_pair(self._pending[shard].popleft(), ERROR,
                                  error=error)
            while self._subs[shard]:
                job, _ = self._subs[shard].popleft()
                self._finish_job(job, ERROR, error=error)
        for entry in list(self._inflight.values()):
            if entry[0] == "pairs":
                for request in entry[2]:
                    self._finish_pair(request, ERROR, error=error)
            else:
                self._finish_job(entry[2], ERROR, error=error)
        self._inflight.clear()
        for worker in self._workers:
            while worker.pinned:
                job, _ = worker.pinned.popleft()
                self._finish_job(job, ERROR, error=error)

    # -- terminal bookkeeping -------------------------------------------------

    def _finish_pair(self, request, status, answer=None, error=None,
                     generation=0):
        elapsed = self._clock() - request.started
        self._admission.release(elapsed)
        self._bump(status)
        metrics = self._metrics
        if metrics is not None:
            metrics.outcomes[status].inc()
            metrics.seconds.observe(elapsed)
            metrics.inflight.set(self._admission.in_flight)
        request.future.set_result(QueryResult(
            status, answer=answer, error=error, elapsed=elapsed,
            generation=generation))

    def _finish_job(self, job, status, answer=None, error=None, generation=0):
        if job.done:
            return
        job.done = True
        elapsed = self._clock() - job.started
        if job.admitted:
            self._admission.release(elapsed)
            self._bump(status)
            metrics = self._metrics
            if metrics is not None:
                metrics.outcomes[status].inc()
                metrics.seconds.observe(elapsed)
        job.resolve(status, answer, error, generation, elapsed)


def worker_entry(conn, path, generation, verify):
    """Process target: import-light wrapper around ``worker_main``.

    Kept at module top level so it stays picklable under spawn-based
    start methods, and imported lazily so the parent's module graph is
    not re-imported by fork children.
    """
    from repro.serving.worker import worker_main

    worker_main(conn, path, generation, verify=verify)
