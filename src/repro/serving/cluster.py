"""Shared-memory multiprocess serving cluster with scatter-gather sharding.

:class:`ClusterService` is the multiprocess sibling of
:class:`~repro.serving.service.SPCService`. N worker processes each map
the *same* SPCF v4 flat label file read-only (one physical copy of the
label columns, shared through the page cache — see
:func:`repro.io.flat_store.open_shared`), and a selectors-based router
thread owns the serving defences: admission control with capped
retry-after hints, a circuit breaker over worker health, hot reload by
file-signature watching, and the same non-raising
:class:`~repro.serving.service.QueryResult` surface.

The router earns its throughput from *batching*, not just parallelism:
pair requests destined for the same shard are coalesced (up to
``max_batch``, waiting at most ``batch_window`` seconds) into one
``count_many`` round-trip, so the per-request cost amortises one IPC
hop and one vectorized kernel over the whole batch instead of paying a
python merge-join per query.

Sharding is routing, not partitioning — every worker maps the full
arena, and the :class:`~repro.serving.shards.ShardPlan` decides which
worker pool answers which vertex range. ``single_source`` scatters one
range slice per shard and concatenates; ``set_to_set`` scatters the
target side and merges the partial ``(delta, sigma)`` answers. Every
worker reply carries its reload generation, and a gather whose replies
straddle a generation swap is retried whole rather than ever mixing two
index versions in one response.

Hot reload is shard-by-shard: the router bumps a target generation when
the watcher sees a new file signature, then tells each worker to remap
only when that worker is idle and every lower-numbered shard has already
swapped — in-flight batches always complete on the arena they started
on, and a worker whose remap fails keeps serving its old (still-mapped)
inode rather than going dark.

The cluster *heals itself* rather than failing safe. The router is also
a supervisor: worker death is detected three ways (the process sentinel
fd in the selector, pipe EOF through a router-side incremental frame
decoder that treats torn frames as that worker's death, and
heartbeat/stall timeouts that SIGKILL wedged-but-alive processes), the
worker is respawned with bounded exponential backoff re-mapping the
arena at the current target generation, and only *its* in-flight keys
are replayed — other shards never stall. While a shard is down or
respawning its traffic is answered degraded-but-exact: idle peer
workers adopt the down shard (every worker maps the full arena), or —
when no worker is live at all and a ``graph`` was provided — a BFS
fallback thread answers from the logical graph via
:class:`~repro.resilience.ResilientSPCIndex`; either way the
:class:`~repro.serving.service.QueryResult` carries a
``degraded_shards`` annotation instead of an error. Tail robustness
comes from hedging: a sub-request that outlives its latency-derived
hedge delay is duplicated to a sibling replica and the first
generation-consistent answer wins, deduplicated on resolve. Planned
maintenance uses the same machinery: :meth:`ClusterService.drain` stops
admitting to one worker, flushes its in-flight batch, then swaps the
process — a rolling restart is just a drain per worker, and hot reload
is the in-place special case of the same wait-until-idle state machine.
"""

import asyncio
import collections
import multiprocessing
import os
import pickle
import selectors
import struct
import threading
import time
from concurrent.futures import Future, InvalidStateError

import numpy as np

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    SerializationError,
    ServiceOverloaded,
    VertexError,
)
from repro.io.flat_store import read_flat_meta
from repro.observability.events import get_event_log
from repro.observability.metrics import get_registry
from repro.query.ast import PAIR_OPS, Batch, Count, SetToSet, SingleSource
from repro.query.backends import normalize_pair, normalize_single_source
from repro.query.engine import QueryEngine
from repro.serving import protocol
from repro.serving.admission import DEFAULT_RETRY_AFTER_CAP, AdmissionQueue
from repro.serving.breaker import CircuitBreaker
from repro.serving.deadline import Deadline
from repro.serving.reload import IndexWatcher
from repro.serving.service import (
    CIRCUIT_OPEN,
    DEADLINE,
    ERROR,
    INVALID,
    SERVED_DEGRADED,
    SERVED_INDEX,
    SHED,
    QueryResult,
)
from repro.serving.shards import ShardPlan

INF = float("inf")

#: Worker lifecycle states as the router sees them.
STARTING = "starting"
IDLE = "idle"
BUSY = "busy"
RELOADING = "reloading"
STOPPED = "stopped"
DEAD = "dead"

#: Whole-gather retries allowed when replies straddle a generation swap.
GATHER_RETRY_LIMIT = 3

_ERR_STATUS = {
    protocol.ERR_DEADLINE: DEADLINE,
    protocol.ERR_VERTEX: INVALID,
    protocol.ERR_SERIALIZATION: ERROR,
    protocol.ERR_ERROR: ERROR,
}


def _err_exception(kind, message):
    """Rehydrate a worker's typed ERR reply into a library exception."""
    if kind == protocol.ERR_SERIALIZATION:
        return SerializationError(message)
    return ReproError(message)


def _deadline_error(deadline):
    """A :class:`DeadlineExceeded` carrying the request's real budget."""
    if deadline is None:  # pragma: no cover - defensive
        return DeadlineExceeded(0.0, 0.0)
    return DeadlineExceeded(deadline.budget, deadline.elapsed())


def _set_result(future, result):
    """Resolve a caller future, tolerating a lost terminal race.

    The wedged-router last resort in :meth:`ClusterService.close` can
    fail futures from the closing thread while the router is still
    finishing them; whoever loses that race must be a no-op, never an
    ``InvalidStateError`` escaping into the router loop.
    """
    try:
        future.set_result(result)
    except InvalidStateError:  # pragma: no cover - shutdown race
        pass


class _WorkerGone(Exception):
    """Internal: the worker behind a pipe can never speak again."""


class _FrameDecoder:
    """Incremental router-side decoder for Connection-framed pickles.

    The router must never trust a worker's framing: a process dying
    inside ``write(2)`` leaves a truncated length-prefixed frame on the
    pipe, and a blocking ``Connection.recv`` on that would wedge (or
    crash) the router itself. This decoder reads the raw (non-blocking)
    fd, buffers bytes, and yields only complete frames; a zero-byte
    read marks ``eof`` (worker death — any buffered partial frame is
    simply the torn write it died inside), and a frame that fails to
    unpickle raises :class:`_WorkerGone`, failing that worker only.

    Wire format matches CPython's ``multiprocessing.connection``: a
    4-byte big-endian signed length, with ``-1`` escaping to an 8-byte
    unsigned extended length, then the pickled payload.
    """

    __slots__ = ("fd", "eof", "_buf")

    def __init__(self, fd):
        self.fd = fd
        self.eof = False
        self._buf = bytearray()

    def pump(self):
        """Drain the fd; return complete decoded messages, set ``eof``.

        Raises :class:`_WorkerGone` on an undecodable frame. Messages
        decoded before an EOF are still returned — the caller processes
        them, then checks ``eof`` and runs the death path.
        """
        while not self.eof:
            try:
                chunk = os.read(self.fd, 1 << 16)
            except BlockingIOError:
                break
            except OSError as exc:
                raise _WorkerGone(f"pipe read failed: {exc}") from exc
            if not chunk:
                self.eof = True
                break
            self._buf += chunk
        messages = []
        while True:
            frame = self._next_frame()
            if frame is None:
                break
            try:
                messages.append(pickle.loads(frame))
            except Exception as exc:
                raise _WorkerGone(f"undecodable frame: {exc!r}") from exc
        return messages

    def _next_frame(self):
        buf = self._buf
        if len(buf) < 4:
            return None
        size, = struct.unpack("!i", bytes(buf[:4]))
        offset = 4
        if size == -1:
            if len(buf) < 12:
                return None
            size, = struct.unpack("!Q", bytes(buf[4:12]))
            offset = 12
        if size < 0:
            raise _WorkerGone(f"corrupt frame length {size}")
        if len(buf) < offset + size:
            return None
        frame = bytes(buf[offset:offset + size])
        del buf[:offset + size]
        return frame


class _Worker:
    """Router-side record of one worker slot and its current process.

    The slot (index, shard) is stable across the supervisor's respawns;
    ``process``/``conn``/``decoder`` are replaced on each incarnation.
    """

    __slots__ = ("index", "shard", "process", "conn", "conn_fd", "decoder",
                 "sentinel_fd", "generation", "state", "pinned",
                 "draining", "drain_respawn", "drain_futures",
                 "respawn_at", "backoff", "respawns", "died_at", "hello_at",
                 "spawned_at", "ping_sent_at", "last_seen",
                 "busy_since", "busy_budget", "gone")

    def __init__(self, index, shard, backoff):
        self.index = index
        self.shard = shard
        self.process = None
        self.conn = None
        self.conn_fd = None
        self.decoder = None
        self.sentinel_fd = None
        self.generation = 0
        self.state = STARTING
        self.pinned = collections.deque()
        self.draining = False
        self.drain_respawn = False
        self.drain_futures = []
        self.respawn_at = None
        self.backoff = backoff
        self.respawns = 0
        self.died_at = None
        self.hello_at = None
        self.spawned_at = 0.0
        self.ping_sent_at = None
        self.last_seen = 0.0
        self.busy_since = None
        self.busy_budget = None
        self.gone = False

    @property
    def live(self):
        """True while the worker can still be given work."""
        return self.state not in (DEAD, STOPPED)

    @property
    def serving(self):
        """True while the worker's process is up and past HELLO."""
        return self.state in (IDLE, BUSY, RELOADING)


class _Flight:
    """One in-flight worker round-trip the router is waiting on.

    ``twin`` links the two legs of a hedged request (by batch id);
    ``cancelled`` marks the losing leg once the other resolved — its
    reply is discarded on arrival, so duplicates never double-resolve.
    ``home_shard`` is the shard the work *belongs* to (``None`` for
    pinned stats probes), which may differ from the serving worker's
    shard under peer adoption — ``degraded`` then carries the
    annotation for the terminal :class:`QueryResult`.
    """

    __slots__ = ("kind", "batch_id", "worker", "home_shard", "message",
                 "sent_at", "budget", "members", "job", "key",
                 "twin", "is_hedge", "cancelled", "degraded")

    def __init__(self, kind, batch_id, worker, home_shard, message, sent_at,
                 budget):
        self.kind = kind
        self.batch_id = batch_id
        self.worker = worker
        self.home_shard = home_shard
        self.message = message
        self.sent_at = sent_at
        self.budget = budget
        self.members = None
        self.job = None
        self.key = None
        self.twin = None
        self.is_hedge = False
        self.cancelled = False
        self.degraded = ()


class _PairRequest:
    """One ``submit`` request waiting to be coalesced into a shard batch."""

    __slots__ = ("s", "t", "deadline", "started", "enqueued", "future",
                 "done")

    def __init__(self, s, t, deadline, started, future):
        self.s = s
        self.t = t
        self.deadline = deadline
        self.started = started
        self.enqueued = started
        self.future = future
        # Terminal guard: hedged twins and death-replays can hand the
        # same request to two finishers; only the first one counts.
        self.done = False


class _Job:
    """A scatter-gather job: sub-requests per shard, merged on completion."""

    requires_uniform = True
    admitted = True

    def __init__(self, future, deadline, started):
        self.future = future
        self.deadline = deadline
        self.started = started
        self.subs = {}
        self.replies = {}
        self.retries = 0
        self.done = False
        self.offloaded = False
        self.degraded = set()

    def keys(self):
        """Sub-request keys, each dispatched to one worker."""
        return list(self.subs)

    def register_reply(self, key, generation, payload):
        """Record one sub reply; classify the gather's next move.

        Returns ``"dup"`` (reply for a done/already-answered key — a
        hedged duplicate or a post-replay straggler, discarded),
        ``"pending"`` (more subs outstanding), ``"mixed"`` (all subs in
        but the generations straddle a reload swap — the caller must
        retry the whole scatter, never merge), or ``"complete"``.
        Answers from two index generations are never merged even when
        one of them arrived through a hedge.
        """
        if self.done or key in self.replies:
            return "dup"
        self.replies[key] = (generation, payload)
        if len(self.replies) < len(self.subs):
            return "pending"
        generations = {gen for gen, _ in self.replies.values()}
        if self.requires_uniform and len(generations) > 1:
            return "mixed"
        return "complete"

    def home_shards(self):
        """Shards this job's subs belong to (annotation for fallback)."""
        return sorted({self.shard_for(key) for key in self.subs}
                      - {None})

    def fallback(self, resilient):
        """Whole-job answer from the BFS fallback (override per type)."""
        raise ReproError("job has no degraded path")

    def resolve(self, status, answer, error, generation, elapsed,
                degraded=()):
        """Complete the caller-visible future with a terminal result."""
        _set_result(self.future, QueryResult(
            status, answer=answer, error=error, elapsed=elapsed,
            generation=generation, degraded_shards=degraded,
        ))


class _SingleSourceJob(_Job):
    """``single_source`` scattered as one contiguous range per shard."""

    def __init__(self, future, deadline, started, s, plan):
        super().__init__(future, deadline, started)
        self.s = s
        if plan.strategy == "range":
            for shard, (lo, hi) in enumerate(plan.ranges):
                if lo < hi:
                    self.subs[shard] = (lo, hi)
        else:
            # Hash shards own no contiguous id range: run the full sweep
            # on the source's home shard instead of scattering.
            self.subs[plan.shard_of(s)] = (0, plan.n)

    def shard_for(self, key):
        """The shard pool that must answer sub ``key``."""
        return key

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        lo, hi = self.subs[key]
        return (protocol.SINGLE_SOURCE, batch_id, self.s, lo, hi, budget)

    def merge(self, payloads):
        """Concatenate per-range slices back into full (dist, count)."""
        parts = [payloads[key] for key in sorted(payloads)]
        dist = np.concatenate([p[0] for p in parts])
        count = np.concatenate([p[1] for p in parts])
        return dist, count

    def fallback(self, resilient):
        """Whole-sweep BFS answer when no worker is live."""
        return resilient.single_source(self.s, deadline=self.deadline)


class _SetToSetJob(_Job):
    """``set_to_set`` scattered over the target side, min/sum merged."""

    def __init__(self, future, deadline, started, sources, buckets):
        super().__init__(future, deadline, started)
        self.sources = sources
        self.all_targets = [t for bucket in buckets for t in bucket]
        for shard, targets in enumerate(buckets):
            if targets:
                self.subs[shard] = targets

    def shard_for(self, key):
        """The shard pool that must answer sub ``key``."""
        return key

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        return (protocol.SET_TO_SET, batch_id, self.sources, self.subs[key],
                budget)

    def merge(self, payloads):
        """Global minimum distance; counts summed at that minimum."""
        best = min(payloads[key][0] for key in payloads)
        if best == INF:
            return INF, 0
        sigma = sum(payloads[key][1] for key in payloads
                    if payloads[key][0] == best)
        return best, sigma

    def fallback(self, resilient):
        """Whole-set BFS answer when no worker is live."""
        return resilient.set_to_set(self.sources, self.all_targets,
                                    deadline=self.deadline)


class _PairBatchJob(_Job):
    """A caller-supplied pair batch scattered by source shard.

    The bulk twin of the router's own coalescing: the caller hands over
    the whole batch up front, so admission, the future, and the inbox
    hop are paid once per batch instead of once per pair. Each shard
    gets one ``PAIRS`` sub covering its slice; ``merge`` reassembles the
    per-shard answers into caller order.
    """

    def __init__(self, future, deadline, started, sources, targets, plan):
        super().__init__(future, deadline, started)
        self.size = len(sources)
        self.sources = sources
        self.targets = targets
        self._positions = {}
        owners = plan.shard_of_many(sources)
        for shard in range(plan.shards):
            pos = np.nonzero(owners == shard)[0]
            if pos.size:
                self.subs[shard] = (sources[pos].tolist(),
                                    targets[pos].tolist())
                self._positions[shard] = pos.tolist()

    def shard_for(self, key):
        """The shard pool that must answer sub ``key``."""
        return key

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        sources, targets = self.subs[key]
        return (protocol.PAIRS, batch_id, sources, targets, budget)

    def merge(self, payloads):
        """Scatter per-shard answers back to the caller's pair order."""
        out = [None] * self.size
        for key, answers in payloads.items():
            for pos, answer in zip(self._positions[key], answers):
                out[pos] = answer
        return out

    def fallback(self, resilient):
        """Whole-batch BFS answers (caller order) when no worker is live."""
        pairs = list(zip(self.sources.tolist(), self.targets.tolist()))
        return resilient.count_many(pairs, deadline=self.deadline)


class _StatsJob(_Job):
    """Memory/identity probe fanned out to every live worker."""

    requires_uniform = False
    admitted = False

    def __init__(self, future, worker_indexes):
        super().__init__(future, None, 0.0)
        for index in worker_indexes:
            self.subs[index] = index

    def shard_for(self, key):
        """Stats subs are pinned to a worker, not a shard."""
        return None

    def message(self, key, batch_id, budget):
        """Wire message for sub ``key``."""
        return (protocol.STATS, batch_id)

    def merge(self, payloads):
        """Worker payload dicts, ordered by worker index."""
        return [payloads[key] for key in sorted(payloads)]

    def resolve(self, status, answer, error, generation, elapsed,
                degraded=()):
        """Stats callers get the raw payload list, or the typed error."""
        if status == SERVED_INDEX:
            _set_result(self.future, answer)
        else:
            try:
                self.future.set_exception(
                    error if error is not None else ReproError(status))
            except InvalidStateError:  # pragma: no cover - shutdown race
                pass


class _MetricHandles:
    """Hot-path metric instruments, resolved once at construction.

    Registry lookups build a label key and take a lock per call; at
    cluster throughput (tens of thousands of requests per second on one
    core) those few microseconds per request are real capacity. The
    request path therefore touches pre-resolved handles only. Rare
    paths (reload, worker death) still look instruments up lazily, so
    they keep working even if the registry is swapped mid-flight.
    """

    __slots__ = ("requests", "outcomes", "seconds", "inflight",
                 "batch_size", "batches", "batch_seconds")

    def __init__(self, registry, shards):
        self.requests = registry.counter("spc_cluster_requests_total")
        self.outcomes = {
            status: registry.counter("spc_cluster_request_outcomes_total",
                                     status=status)
            for status in (SERVED_INDEX, SERVED_DEGRADED, SHED, CIRCUIT_OPEN,
                           DEADLINE, INVALID, ERROR)
        }
        self.seconds = registry.histogram("spc_cluster_request_seconds")
        self.inflight = registry.gauge("spc_cluster_inflight_requests")
        self.batch_size = registry.histogram(
            "spc_cluster_batch_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self.batches = [
            registry.counter("spc_cluster_batches_total", shard=str(shard))
            for shard in range(shards)
        ]
        self.batch_seconds = [
            registry.histogram("spc_cluster_batch_seconds", shard=str(shard))
            for shard in range(shards)
        ]


class _DegradedExecutor(threading.Thread):
    """BFS-fallback worker thread for shards with no live process.

    The router hands it stranded work (whole jobs, or one shard's pair
    batch); it executes against the cluster's
    :class:`~repro.resilience.ResilientSPCIndex` and posts the outcome
    back through the router inbox, so terminal resolution stays
    single-threaded in the router. Answers are exact (online BFS on the
    logical graph) but carry ``SERVED_DEGRADED`` and the
    ``degraded_shards`` annotation.
    """

    def __init__(self, service):
        super().__init__(name="spc-cluster-degraded", daemon=True)
        self._service = service
        self._items = collections.deque()
        self._cond = threading.Condition()
        self._stopped = False

    def submit(self, item):
        """Queue one stranded work item (router thread only)."""
        with self._cond:
            self._items.append(item)
            self._cond.notify()

    def close(self):
        """Finish queued work, then exit the thread."""
        with self._cond:
            self._stopped = True
            self._cond.notify()

    def run(self):
        while True:
            with self._cond:
                while not self._items and not self._stopped:
                    self._cond.wait()
                if not self._items and self._stopped:
                    return
                item = self._items.popleft()
            if item[0] == "pairs":
                outcome = [self._one(lambda r=request: (
                    self._service._fallback.count_with_distance(
                        r.s, r.t, deadline=r.deadline)))
                    for request in item[2]]
            else:
                job = item[1]
                outcome = self._one(
                    lambda: job.fallback(self._service._fallback))
            self._service._inbox.append(("degraded_done", (item, outcome)))
            self._service._wake()

    @staticmethod
    def _one(work):
        """One fallback call mapped onto a (status, answer, error) triple."""
        try:
            return (SERVED_DEGRADED, work(), None)
        except DeadlineExceeded as exc:
            return (DEADLINE, None, exc)
        except VertexError as exc:
            return (INVALID, None, exc)
        except ReproError as exc:
            return (ERROR, None, exc)


class ClusterService:
    """Multiprocess scatter-gather serving tier over one shared arena.

    Parameters
    ----------
    index_path:
        SPCF v4 flat label file (``raw`` encoding — the mmap-shared
        format; delta files are rejected because decoding privatises
        the rank column per process).
    workers / shards / strategy:
        Worker-process count, shard count (``workers >= shards``; each
        shard gets ``workers // shards`` processes, remainder spread
        round-robin) and the :class:`~repro.serving.shards.ShardPlan`
        strategy (``"range"`` or ``"hash"``).
    batch_window / max_batch:
        Router-side coalescing: a shard batch is flushed when it holds
        ``max_batch`` pair requests or its oldest member has waited
        ``batch_window`` seconds.
    capacity / queue_limit / retry_after_cap:
        Admission control (see
        :class:`~repro.serving.admission.AdmissionQueue`); the router
        admits up to ``capacity + queue_limit`` outstanding requests and
        sheds the rest with a capped retry-after hint.
    default_deadline:
        Per-request budget in seconds when the caller gives none.
    breaker / failure_threshold / reset_timeout:
        Circuit breaker over worker failures (a worker death or a
        corrupt-arena error trips it; request-level deadline and vertex
        errors do not).
    reload_check_every:
        Poll the index file signature every N admissions (0 disables
        polling; :meth:`check_reload` stays available).
    verify:
        Forwarded to :func:`~repro.io.flat_store.open_shared` (CRC
        checks on map).
    start_timeout:
        Seconds to wait for every worker's HELLO before giving up (also
        the stall allowance for a respawning worker's HELLO).
    clock:
        Monotonic clock, injectable for deterministic tests.
    graph:
        Optional logical :class:`~repro.graph.graph.Graph` behind the
        arena. When given, a BFS fallback
        (:class:`~repro.resilience.ResilientSPCIndex`) answers exactly
        for shards that have *no* live worker — results come back
        ``SERVED_DEGRADED`` with a ``degraded_shards`` annotation
        instead of failing. Without it, stranded work waits for the
        respawn (or fails when none is coming).
    fallback_engine:
        BFS engine for the fallback oracle (``"csr"`` default).
    peer_degraded:
        When True (default), idle workers of healthy shards adopt the
        queued work of a down/respawning shard — exact answers from the
        same arena, annotated with the degraded home shard.
    respawn / respawn_backoff / respawn_backoff_max:
        Supervision: a dead worker is respawned after ``respawn_backoff``
        seconds, doubling per consecutive failure up to
        ``respawn_backoff_max``; a worker that served longer than
        ``respawn_backoff_max`` resets its backoff. ``respawn=False``
        restores the old fail-fast behaviour (death permanently removes
        the worker).
    heartbeat_interval / stall_timeout:
        Idle workers are pinged every ``heartbeat_interval`` seconds
        (0 disables); a missed pong, or a deadline-carrying batch
        overrunning its budget by ``stall_timeout``, declares the worker
        stalled: it is SIGKILLed and respawned. Batches with no deadline
        are exempt from stall kills (a long exact scan is not a stall).
    hedge_delay / hedge_multiplier / hedge_floor:
        Tail hedging. ``"auto"`` (default) duplicates a sub-request to
        an idle sibling once it has waited ``hedge_multiplier`` × the
        shard's observed p95 latency (at least ``hedge_floor`` seconds,
        needs 16 samples); a float pins the delay; ``None`` disables.
        The first generation-consistent answer wins, the loser is
        discarded on arrival — hedges never double-resolve and never
        let two index generations into one gather.
    """

    def __init__(self, index_path, *, workers=2, shards=1, strategy="range",
                 batch_window=0.002, max_batch=64, capacity=64,
                 queue_limit=256, retry_after_cap=DEFAULT_RETRY_AFTER_CAP,
                 default_deadline=None, breaker=None, failure_threshold=5,
                 reset_timeout=1.0, reload_check_every=64, verify=True,
                 start_timeout=60.0, clock=time.monotonic,
                 graph=None, fallback_engine="csr", peer_degraded=True,
                 respawn=True, respawn_backoff=0.05, respawn_backoff_max=2.0,
                 heartbeat_interval=0.5, stall_timeout=2.0,
                 hedge_delay="auto", hedge_multiplier=4.0, hedge_floor=0.01,
                 _fault=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards < 1 or shards > workers:
            raise ValueError(
                f"shards must be in [1, workers], got {shards} "
                f"(workers={workers})")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive or None")
        if respawn_backoff <= 0 or respawn_backoff_max < respawn_backoff:
            raise ValueError("respawn_backoff must be positive and <= "
                             "respawn_backoff_max")
        if heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0 (0 disables)")
        if stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        if hedge_delay is not None and hedge_delay != "auto":
            hedge_delay = float(hedge_delay)
            if hedge_delay < 0:
                raise ValueError("hedge_delay must be >= 0, 'auto', or None")
        self.index_path = str(index_path)
        meta = read_flat_meta(self.index_path)
        if meta.encoding != "raw":
            raise SerializationError(
                f"{self.index_path}: cluster serving requires the "
                f"mmap-shareable 'raw' encoding, found {meta.encoding!r}")
        self.n = meta.n
        self.plan = ShardPlan(meta.n, shards, strategy=strategy)
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.default_deadline = default_deadline
        self._clock = clock
        self._admission = AdmissionQueue(capacity, queue_limit,
                                         retry_after_cap=retry_after_cap,
                                         clock=clock)
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold=failure_threshold,
                                     reset_timeout=reset_timeout, clock=clock)
        self.breaker = breaker
        self._watcher = IndexWatcher(self.index_path)
        self._reload_check_every = reload_check_every
        self._target_generation = 0
        self._closing = False
        self._closed = False
        self._stats_lock = threading.Lock()
        self.counters = {
            "requests": 0, "batches": 0, "gather_retries": 0,
            SERVED_INDEX: 0, SERVED_DEGRADED: 0, SHED: 0, CIRCUIT_OPEN: 0,
            DEADLINE: 0, INVALID: 0, ERROR: 0, "reloads": 0,
            "reload_failures": 0, "worker_failures": 0, "respawns": 0,
            "stalls": 0, "hedges": 0, "hedge_wins": 0,
            "degraded_requests": 0, "drains": 0, "replays": 0,
        }
        registry = get_registry()
        self._metrics = (_MetricHandles(registry, self.plan.shards)
                         if registry.enabled else None)
        self._asleep = False
        self._inbox = collections.deque()
        self._pending = [collections.deque() for _ in range(self.plan.shards)]
        self._subs = [collections.deque() for _ in range(self.plan.shards)]
        self._inflight = {}
        self._next_batch_id = 0
        self._start_error = None
        self._failed = False
        self._ready = threading.Event()
        self._verify = verify
        self._fault = _fault
        self._start_timeout = start_timeout
        self._respawn = respawn
        self._respawn_backoff = respawn_backoff
        self._respawn_backoff_max = respawn_backoff_max
        self._heartbeat_interval = heartbeat_interval
        self._stall_timeout = stall_timeout
        self._hedge_delay = hedge_delay
        self._hedge_multiplier = hedge_multiplier
        self._hedge_floor = hedge_floor
        self._peer_degraded = peer_degraded
        self._latency = [collections.deque(maxlen=64)
                         for _ in range(self.plan.shards)]
        self._fallback_inflight = 0
        self._reaped = []
        self._fallback = None
        self._executor = None
        if graph is not None:
            if graph.n != meta.n:
                raise ValueError(
                    f"fallback graph has {graph.n} vertices but the arena "
                    f"has {meta.n}")
            from repro.resilience import ResilientSPCIndex

            self._fallback = ResilientSPCIndex(graph,
                                               bfs_engine=fallback_engine)
            self._executor = _DegradedExecutor(self)
            self._executor.start()
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_w, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._workers = []
        for index in range(workers):
            worker = _Worker(index, index % self.plan.shards, respawn_backoff)
            self._workers.append(worker)
            self._spawn_process(worker, 0)
        registry = get_registry()
        if registry.enabled:
            for shard in range(self.plan.shards):
                registry.gauge("spc_cluster_workers", shard=str(shard)).set(
                    sum(1 for w in self._workers if w.shard == shard))
        self._router = threading.Thread(target=self._run,
                                        name="spc-cluster-router",
                                        daemon=True)
        self._router.start()
        if not self._ready.wait(start_timeout):
            self.close()
            raise SerializationError(
                f"cluster workers did not come up within {start_timeout}s")
        if self._start_error is not None:
            error = self._start_error
            self.close()
            raise SerializationError(f"cluster worker failed to start: "
                                     f"{error}")

    @staticmethod
    def _mp_context():
        """Fork context when available (cheap, inherits nothing mutable
        the worker uses); the platform default otherwise."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def _spawn_process(self, worker, generation):
        """Fork a fresh process behind ``worker`` and wire it into the
        selector. Reusable by the supervisor: respawns after a death and
        replacements after a drain both come through here."""
        ctx = self._mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_entry,
            args=(child_conn, self.index_path, generation, self._verify,
                  self._fault),
            name=f"spc-cluster-worker-{worker.index}", daemon=True,
        )
        process.start()
        child_conn.close()
        fd = parent_conn.fileno()
        os.set_blocking(fd, False)
        worker.process = process
        worker.conn = parent_conn
        worker.conn_fd = fd
        worker.decoder = _FrameDecoder(fd)
        worker.sentinel_fd = process.sentinel
        worker.generation = generation
        worker.state = STARTING
        worker.gone = False
        worker.pinned.clear()
        worker.spawned_at = self._clock()
        worker.last_seen = worker.spawned_at
        worker.ping_sent_at = None
        worker.busy_since = None
        worker.busy_budget = None
        self._selector.register(fd, selectors.EVENT_READ, ("conn", worker))
        self._selector.register(process.sentinel, selectors.EVENT_READ,
                                ("exit", worker))

    def _detach(self, worker):
        """Unwire a worker's fds from the selector and close its pipe.
        Safe to call once per incarnation; death and drain both end here."""
        if worker.gone:
            return
        worker.gone = True
        for fd in (worker.conn_fd, worker.sentinel_fd):
            if fd is None:
                continue
            try:
                self._selector.unregister(fd)
            except (KeyError, ValueError, OSError, RuntimeError):
                pass
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        worker.conn = None
        worker.conn_fd = None
        worker.decoder = None
        worker.sentinel_fd = None

    # -- submission surface ---------------------------------------------------

    def submit_nowait(self, s, t, timeout=None):
        """Admit one pair query; resolves to a :class:`QueryResult`.

        Never raises: admission shedding, an open breaker and invalid
        vertices resolve the returned future immediately with the
        matching terminal status, exactly like
        :meth:`SPCService.submit <repro.serving.service.SPCService.submit>`
        but without blocking the caller.
        """
        started = self._clock()
        future = Future()
        self._bump("requests")
        metrics = self._metrics
        if metrics is not None:
            metrics.requests.inc()
        if self._closed or self._closing or self._failed:
            return self._reject(future, started, ERROR,
                                ReproError("cluster is closed"))
        try:
            s = int(s)
            t = int(t)
            if not (0 <= s < self.n):
                raise VertexError(s, self.n)
            if not (0 <= t < self.n):
                raise VertexError(t, self.n)
        except (TypeError, ValueError):
            return self._reject(future, started, INVALID,
                                ReproError(f"bad vertex pair ({s!r}, {t!r})"))
        except VertexError as exc:
            return self._reject(future, started, INVALID, exc)
        deadline = self._deadline(timeout)
        try:
            self.breaker.before_call()
        except CircuitOpenError as exc:
            return self._reject(future, started, CIRCUIT_OPEN, exc)
        try:
            ordinal = self._admission.offer()
        except ServiceOverloaded as exc:
            return self._reject(future, started, SHED, exc)
        self._observe_admission()
        request = _PairRequest(s, t, deadline, started, future)
        self._inbox.append(("pair", request))
        self._wake()
        if (self._reload_check_every
                and ordinal % self._reload_check_every == 0):
            self.check_reload()
        return future

    def submit(self, s, t, timeout=None):
        """Blocking :meth:`submit_nowait`: always a terminal result."""
        return self.submit_nowait(s, t, timeout=timeout).result()

    def asubmit(self, s, t, timeout=None):
        """Awaitable :meth:`submit_nowait` for asyncio front ends."""
        return asyncio.wrap_future(self.submit_nowait(s, t, timeout=timeout))

    def submit_many_nowait(self, pairs, timeout=None):
        """Admit a whole pair batch as one request; returns a future.

        The future resolves to a single :class:`QueryResult` whose
        ``answer`` is a list of ``(dist, count)`` tuples aligned with
        ``pairs``. Admission, deadline, breaker, and the router hop are
        paid once for the batch — the high-throughput front door for
        callers that already hold many pairs, where per-pair futures
        would dominate the (vectorized) kernel cost. The whole batch
        shares one terminal status: an invalid vertex, expired deadline,
        or shed rejects all of it, and scatter-gather across shards
        never merges replies from different index generations.
        """
        pairs = list(pairs)
        if not pairs:
            started = self._clock()
            self._bump("requests")
            future = Future()
            self._bump(SERVED_INDEX)
            future.set_result(QueryResult(
                SERVED_INDEX, answer=[], elapsed=self._clock() - started,
                generation=self.generation))
            return future
        try:
            sources = np.fromiter((p[0] for p in pairs), dtype=np.int64,
                                  count=len(pairs))
            targets = np.fromiter((p[1] for p in pairs), dtype=np.int64,
                                  count=len(pairs))
        except (TypeError, ValueError):
            future = Future()
            self._bump("requests")
            return self._reject(future, self._clock(), INVALID,
                                ReproError("pairs must be (int, int) tuples"))
        bad = None
        if int(sources.min()) < 0 or int(sources.max()) >= self.n:
            bad = sources
        elif int(targets.min()) < 0 or int(targets.max()) >= self.n:
            bad = targets
        if bad is not None:
            offender = int(bad[(bad < 0) | (bad >= self.n)][0])
            future = Future()
            self._bump("requests")
            return self._reject(future, self._clock(), INVALID,
                                VertexError(offender, self.n))
        return self._submit_job(
            lambda future, deadline, started: _PairBatchJob(
                future, deadline, started, sources, targets, self.plan),
            validate=(), timeout=timeout)

    def submit_many(self, pairs, timeout=None):
        """Blocking :meth:`submit_many_nowait`: always a terminal result."""
        return self.submit_many_nowait(pairs, timeout=timeout).result()

    def single_source(self, s, timeout=None):
        """Scatter-gather ``(dist, count)`` arrays from ``s``.

        Range plans scatter one contiguous slice per shard and
        concatenate; hash plans run the full sweep on the source's home
        shard. Returns a :class:`QueryResult` whose ``answer`` is the
        ``(dist, count)`` array pair.
        """
        return self._submit_job(
            lambda future, deadline, started: _SingleSourceJob(
                future, deadline, started, int(s), self.plan),
            validate=[s], timeout=timeout).result()

    def set_to_set(self, sources, targets, timeout=None):
        """Scatter-gather ``(sd(S, T), spc(S, T))`` over target shards."""
        sources = [int(v) for v in sources]
        targets = [int(v) for v in targets]
        if not sources or not targets:
            result = QueryResult(SERVED_INDEX, answer=(INF, 0),
                                 generation=self.generation)
            self._bump(SERVED_INDEX)
            future = Future()
            future.set_result(result)
            return future.result()
        buckets = self.plan.split_targets(targets)
        return self._submit_job(
            lambda future, deadline, started: _SetToSetJob(
                future, deadline, started, sources, buckets),
            validate=sources + targets, timeout=timeout).result()

    def submit_query(self, node, timeout=None):
        """Run a compiled query AST node against the cluster.

        Operators the cluster serves natively map straight onto the
        scatter-gather entry points — :class:`~repro.query.ast.Count` is
        :meth:`submit`, a :class:`~repro.query.ast.Batch` of pair
        operators is one :meth:`submit_many` round-trip, single-source
        and set-to-set queries keep their sharded gathers. Everything
        else (relevance, top-k betweenness, mixed batches) compiles
        through a :class:`~repro.query.engine.QueryEngine` whose backend
        issues cluster requests, so composite answers inherit the
        cluster's shedding/deadline/breaker behaviour per sub-request.
        Answers are normalised to the query layer's value conventions.
        """
        deadline = self._deadline(timeout)
        if type(node) is Count:
            return self.submit(node.s, node.t, timeout=deadline)
        if isinstance(node, PAIR_OPS):
            result = self.submit(node.s, node.t, timeout=deadline)
            if result.ok:
                result.answer = node.from_pair(*normalize_pair(*result.answer))
            return result
        if isinstance(node, SingleSource):
            result = self.single_source(node.s, timeout=deadline)
            if result.ok:
                result.answer = normalize_single_source(*result.answer)
            return result
        if isinstance(node, SetToSet):
            result = self.set_to_set(list(node.sources), list(node.targets),
                                     timeout=deadline)
            if result.ok:
                result.answer = normalize_pair(*result.answer)
            return result
        if isinstance(node, Batch) and all(
                isinstance(child, PAIR_OPS) for child in node.queries):
            pairs = [(child.s, child.t) for child in node.queries]
            result = self.submit_many(pairs, timeout=deadline)
            if result.ok:
                result.answer = tuple(
                    child.from_pair(*normalize_pair(*answer))
                    for child, answer in zip(node.queries, result.answer)
                )
            return result
        return self._submit_composite(node, deadline)

    def _submit_composite(self, node, deadline):
        """Compile a non-native node over a cluster-backed query engine.

        Each backend call is a real cluster request (counted and defended
        individually); the composite result degrades if any sub-request
        was served degraded, and the first failed sub-request terminates
        the composite with that sub-request's status.
        """
        started = self._clock()
        adapter = _ClusterOracle(self, deadline)
        engine = QueryEngine(oracle=adapter, n=self.n, cache=None)
        try:
            answer = engine.run(node, deadline=deadline)
        except ServiceOverloaded as exc:
            result = QueryResult(SHED, error=exc)
        except CircuitOpenError as exc:
            result = QueryResult(CIRCUIT_OPEN, error=exc)
        except DeadlineExceeded as exc:
            result = QueryResult(DEADLINE, error=exc)
        except VertexError as exc:
            result = QueryResult(INVALID, error=exc)
        except ReproError as exc:
            result = QueryResult(ERROR, error=exc)
        else:
            status = SERVED_DEGRADED if adapter.degraded else SERVED_INDEX
            result = QueryResult(status, answer=answer,
                                 degraded_shards=adapter.degraded_shards)
        result.elapsed = self._clock() - started
        result.generation = self.generation
        return result

    def _submit_job(self, factory, validate, timeout):
        """Common admission/validation path for scatter-gather jobs.

        Returns the future; blocking entry points call ``.result()`` on
        it, :meth:`submit_many_nowait` hands it straight to the caller.
        """
        started = self._clock()
        future = Future()
        self._bump("requests")
        metrics = self._metrics
        if metrics is not None:
            metrics.requests.inc()
        if self._closed or self._closing or self._failed:
            return self._reject(future, started, ERROR,
                                ReproError("cluster is closed"))
        for v in validate:
            v = int(v)
            if not (0 <= v < self.n):
                return self._reject(future, started, INVALID,
                                    VertexError(v, self.n))
        deadline = self._deadline(timeout)
        try:
            self.breaker.before_call()
        except CircuitOpenError as exc:
            return self._reject(future, started, CIRCUIT_OPEN, exc)
        try:
            self._admission.offer()
        except ServiceOverloaded as exc:
            return self._reject(future, started, SHED, exc)
        self._observe_admission()
        job = factory(future, deadline, started)
        self._inbox.append(("job", job))
        self._wake()
        return future

    def _deadline(self, timeout):
        """Normalise a caller timeout against the service default."""
        if timeout is None:
            timeout = self.default_deadline
        return Deadline.of(timeout, clock=self._clock)

    def _reject(self, future, started, status, error):
        """Resolve a request terminally before it reaches the router."""
        self._bump(status)
        metrics = self._metrics
        if metrics is not None:
            metrics.outcomes[status].inc()
        future.set_result(QueryResult(status, error=error,
                                      elapsed=self._clock() - started,
                                      generation=self.generation))
        return future

    # -- hot reload -----------------------------------------------------------

    def check_reload(self):
        """Poll the file signature; start a rolling swap when it moved."""
        if self._closed:
            return False
        if not self._watcher.poll():
            return False
        self._watcher.mark()
        self.reload()
        return True

    def reload(self):
        """Force a rolling, shard-by-shard remap of every worker."""
        self._inbox.append(("reload", None))
        self._wake()

    def drain(self, worker_index, respawn=True):
        """Gracefully retire one worker; returns a future.

        The worker stops admitting new batches, finishes its in-flight
        work, and is then stopped. With ``respawn=True`` (the default) a
        fresh process is forked in its place and the future resolves
        ``True`` once the replacement says HELLO — a rolling restart of
        one slot. With ``respawn=False`` the slot is retired for good
        and the future resolves as soon as the old process is stopped.
        The future resolves ``False`` if the cluster shuts down (or the
        worker dies) before the drain completes — death mid-drain falls
        back to the ordinary supervision path.
        """
        worker_index = int(worker_index)
        if not (0 <= worker_index < len(self._workers)):
            raise ValueError(f"no worker {worker_index} "
                             f"(cluster has {len(self._workers)})")
        future = Future()
        if self._closed or self._closing:
            future.set_result(False)
            return future
        self._inbox.append(("drain", (worker_index, bool(respawn), future)))
        self._wake()
        return future

    def rolling_restart(self, timeout=60.0):
        """Drain-and-respawn every worker, one at a time.

        Each slot is fully replaced (old process stopped, new process
        mapped and serving) before the next drain starts, so capacity
        never drops by more than one worker. Returns True when every
        slot came back; False as soon as one drain fails or times out.
        """
        for worker in list(self._workers):
            if not worker.live:
                continue
            try:
                if not self.drain(worker.index, respawn=True).result(timeout):
                    return False
            except TimeoutError:
                return False
        return True

    # -- observability --------------------------------------------------------

    @property
    def generation(self):
        """Lowest generation any live worker is still serving."""
        generations = [w.generation for w in self._workers if w.live]
        return min(generations) if generations else 0

    @property
    def target_generation(self):
        """Generation the current/last rolling reload is driving toward."""
        return self._target_generation

    def stats(self):
        """Counter snapshot plus per-worker state for dashboards."""
        with self._stats_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "generation": self.generation,
            "target_generation": self._target_generation,
            "shards": self.plan.shards,
            "strategy": self.plan.strategy,
            "ema_latency": self._admission.ema_latency,
            "admission": self._admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "workers": [
                {"index": w.index, "shard": w.shard, "state": w.state,
                 "generation": w.generation,
                 "pid": w.process.pid if w.process is not None else None,
                 "alive": (w.process.is_alive()
                           if w.process is not None else False),
                 "respawns": w.respawns, "draining": w.draining}
                for w in self._workers
            ],
        }

    def worker_stats(self, timeout=30.0):
        """Memory/identity probes from every live worker (RSS, mapping
        sharing evidence, arena signature). Raises on a closed cluster."""
        if self._closed or self._closing or self._failed:
            raise ReproError("cluster is closed")
        live = [w.index for w in self._workers if w.live]
        if not live:
            raise ReproError("no live workers")
        future = Future()
        job = _StatsJob(future, live)
        self._inbox.append(("job", job))
        self._wake()
        return future.result(timeout=timeout)

    def _bump(self, key):
        with self._stats_lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    def _observe_admission(self):
        metrics = self._metrics
        if metrics is not None:
            metrics.inflight.set(self._admission.in_flight)

    # -- lifecycle ------------------------------------------------------------

    def close(self, timeout=10.0):
        """Drain in-flight work, stop workers, join the router.

        Shutdown is terminal for every caller: any future still waiting
        when the router exits — or stuck because the router itself is
        wedged — is resolved with an ``ERROR`` :class:`QueryResult`, so
        ``submit()`` callers can never hang across a close.
        """
        if self._closed:
            return
        self._closed = True
        self._inbox.append(("close", None))
        self._wake()
        self._router.join(timeout=timeout)
        if self._router.is_alive():  # pragma: no cover - wedged router
            # Last resort: the router thread did not exit in time. Its
            # state is frozen from our point of view; resolving the
            # leftover futures here is safe (terminal bookkeeping is
            # idempotent via the done flags) and keeps the no-hang
            # promise even in this degenerate case.
            self._failed = True
            self._fail_everything(ReproError("cluster router wedged "
                                             "during close"))
        if self._executor is not None:
            self._executor.close()
            self._executor.join(timeout=timeout)
        for worker in self._workers:
            if worker.process is None:
                continue
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for process in self._reaped:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        try:
            self._selector.close()
        except OSError:  # pragma: no cover
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def __enter__(self):
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb):
        """Context-manager exit: always :meth:`close`."""
        self.close()
        return False

    def __repr__(self):
        live = sum(1 for w in self._workers if w.live)
        return (f"ClusterService(workers={live}/{len(self._workers)}, "
                f"shards={self.plan.shards}, generation={self.generation})")

    # -- router thread --------------------------------------------------------

    def _wake(self):
        # Deduplicated: the write (a syscall per request at peak load) is
        # only needed when the router is parked in select(). The waker
        # clears the flag itself so a burst of producers pays one syscall,
        # not one per request — the byte already in the pipe guarantees
        # the router will wake and drain everything appended after it.
        # The router re-checks the inbox *after* re-arming the flag, so a
        # producer that reads a stale False still gets its item seen
        # before any sleep.
        if not self._asleep:
            return
        self._asleep = False
        try:
            os.write(self._wake_w, b"x")
        except (OSError, ValueError):
            pass

    def _run(self):
        try:
            while True:
                self._drain_inbox()
                now = self._clock()
                self._check_health(now)
                timer = self._dispatch()
                self._maybe_hedge(self._clock())
                if self._closing and self._quiescent():
                    break
                health = self._health_timer(self._clock())
                if health is not None:
                    timer = health if timer is None else min(timer, health)
                self._asleep = True
                if self._inbox:
                    self._asleep = False
                    continue
                try:
                    events = self._selector.select(timer)
                except OSError:  # pragma: no cover - selector torn down
                    break
                finally:
                    self._asleep = False
                for key, _ in events:
                    if key.data is None:
                        try:
                            os.read(self._wake_r, 4096)
                        except OSError:
                            pass
                    else:
                        # Both the pipe fd and the process sentinel route
                        # through the decoder pump: buffered final replies
                        # are delivered before the death is declared.
                        self._on_conn_readable(key.data[1])
        finally:
            # Terminal no matter how the router exits (clean close or an
            # unexpected exception): every queued, in-flight, and future
            # submission resolves — submit() callers can never hang.
            self._closing = True
            try:
                self._shutdown_workers()
            finally:
                self._failed = True
                self._fail_everything(ReproError("cluster is closed"))

    def _drain_inbox(self):
        while self._inbox:
            kind, payload = None, None
            try:
                item = self._inbox.popleft()
            except IndexError:  # pragma: no cover - racing producer
                break
            kind = item[0]
            payload = item[1] if len(item) > 1 else None
            if kind == "pair":
                payload.enqueued = self._clock()
                self._pending[self.plan.shard_of(payload.s)].append(payload)
            elif kind == "job":
                for key in payload.keys():
                    shard = payload.shard_for(key)
                    if shard is None:
                        self._workers[key].pinned.append((payload, key))
                    else:
                        self._subs[shard].append((payload, key))
            elif kind == "reload":
                self._target_generation += 1
            elif kind == "drain":
                self._on_drain_request(*payload)
            elif kind == "degraded_done":
                self._on_degraded_done(*payload)
            elif kind == "close":
                self._closing = True

    def _quiescent(self):
        if self._inflight or self._inbox or self._fallback_inflight:
            return False
        if any(self._pending) or any(self._subs):
            return False
        if any(w.state == RELOADING for w in self._workers):
            return False
        return all(not w.pinned for w in self._workers)

    def _shard_can_reload(self, shard):
        """Shard-by-shard ordering: lower shards must finish swapping."""
        for worker in self._workers:
            if (worker.live and worker.shard < shard
                    and worker.generation < self._target_generation):
                return False
        return True

    def _dispatch(self):
        now = self._clock()
        for worker in self._workers:
            if worker.state != IDLE:
                continue
            if worker.draining:
                self._complete_drain(worker)
                continue
            if (worker.generation < self._target_generation
                    and not worker.pinned
                    and self._shard_can_reload(worker.shard)):
                if self._send(worker, (protocol.RELOAD,
                                       self._target_generation)):
                    worker.state = RELOADING
                    worker.busy_since = now
                continue
            if worker.pinned:
                job, key = worker.pinned.popleft()
                self._dispatch_sub(worker, job, key)
                continue
            shard = worker.shard
            if self._subs[shard]:
                job, key = self._subs[shard].popleft()
                self._dispatch_sub(worker, job, key)
                continue
            if self._batch_ready(shard, now):
                self._dispatch_pairs(worker, shard)
        if self._peer_degraded:
            self._dispatch_peers(now)
        self._route_stranded()
        return self._next_timer(now)

    def _dispatch_peers(self, now):
        """Idle workers adopt the queued work of shards with no serving
        worker. Every worker maps the full arena (sharding here is
        routing, not partitioning), so a peer's answer is exact; it is
        annotated with the degraded home shard so callers can see the
        cluster was running thin."""
        for worker in self._workers:
            if worker.state != IDLE or worker.draining:
                continue
            if worker.generation < self._target_generation:
                # Mid-reload stragglers don't poach: their answers could
                # drag a stale generation into another shard's gather.
                continue
            for shard in self.plan.peer_order(worker.shard):
                if self._shard_serving(shard):
                    continue
                if self._subs[shard]:
                    job, key = self._subs[shard].popleft()
                    self._dispatch_sub(worker, job, key)
                    break
                if self._batch_ready(shard, now):
                    self._dispatch_pairs(worker, shard)
                    break

    def _batch_ready(self, shard, now):
        pending = self._pending[shard]
        if not pending:
            return False
        if self._closing or len(pending) >= self.max_batch:
            return True
        return now - pending[0].enqueued >= self.batch_window

    def _next_timer(self, now):
        """Earliest batch-window expiry, or None to block on events."""
        timer = None
        idle_any = any(w.state == IDLE and not w.draining
                       for w in self._workers)
        for shard, pending in enumerate(self._pending):
            if not pending:
                continue
            has_idle = any(w.state == IDLE and not w.draining
                           and w.shard == shard for w in self._workers)
            if not has_idle:
                # A down shard's window can still expire onto a peer.
                if not (self._peer_degraded and idle_any
                        and not self._shard_serving(shard)):
                    continue
            wait = self.batch_window - (now - pending[0].enqueued)
            wait = max(wait, 0.0)
            timer = wait if timer is None else min(timer, wait)
        return timer

    def _next_id(self):
        self._next_batch_id += 1
        return self._next_batch_id

    def _send(self, worker, message):
        """Send on a worker pipe; a write failure IS that worker's death."""
        try:
            worker.conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError, AttributeError):
            self._on_worker_death(worker)
            return False

    def _dispatch_pairs(self, worker, shard):
        pending = self._pending[shard]
        members = []
        budget = None
        unlimited = False
        while pending and len(members) < self.max_batch:
            request = pending.popleft()
            if request.done:
                continue
            if request.deadline is not None:
                remaining = request.deadline.remaining()
                if remaining <= 0:
                    self._finish_pair(request, DEADLINE,
                                      error=_deadline_error(request.deadline))
                    continue
                budget = remaining if budget is None else max(budget,
                                                              remaining)
            else:
                unlimited = True
            members.append(request)
        if not members:
            return
        batch_id = self._next_id()
        message = (protocol.PAIRS, batch_id,
                   [r.s for r in members], [r.t for r in members],
                   None if unlimited else budget)
        if not self._send(worker, message):
            for request in reversed(members):
                pending.appendleft(request)
            return
        now = self._clock()
        flight = _Flight("pairs", batch_id, worker, shard, message, now,
                         None if unlimited else budget)
        flight.members = members
        if worker.shard != shard:
            flight.degraded = (shard,)
            self._note_degraded(shard, len(members))
        worker.state = BUSY
        worker.busy_since = now
        worker.busy_budget = flight.budget
        self._inflight[batch_id] = flight
        metrics = self._metrics
        if metrics is not None:
            metrics.batch_size.observe(len(members))

    def _dispatch_sub(self, worker, job, key):
        if job.done or job.offloaded:
            return
        budget = None
        if job.deadline is not None:
            budget = job.deadline.remaining()
            if budget <= 0:
                self._finish_job(job, DEADLINE,
                                 error=_deadline_error(job.deadline))
                return
        batch_id = self._next_id()
        shard = job.shard_for(key)
        message = job.message(key, batch_id, budget)
        if not self._send(worker, message):
            if shard is not None:
                self._subs[shard].append((job, key))
            else:
                self._finish_job(job, ERROR,
                                 error=ReproError("worker died"))
            return
        now = self._clock()
        flight = _Flight("sub", batch_id, worker, shard
                         if shard is not None else worker.shard,
                         message, now, budget)
        flight.job = job
        flight.key = key
        if shard is not None and worker.shard != shard:
            flight.degraded = (shard,)
            self._note_degraded(shard)
        worker.state = BUSY
        worker.busy_since = now
        worker.busy_budget = budget
        self._inflight[batch_id] = flight

    def _shard_serving(self, shard):
        """A shard is serving while some non-draining worker of its pool
        can still take (or is taking) work. A STARTING respawn does not
        count — its queue must not wait on an arena map."""
        return any(w.shard == shard and w.serving and not w.draining
                   for w in self._workers)

    def _route_stranded(self):
        """Decide the fate of queued work on non-serving shards.

        The ladder, in order: wait for an in-progress respawn/start;
        wait for a peer to poach (exact answers, just annotated); hand
        the whole backlog to the BFS fallback executor (exact answers,
        ``SERVED_DEGRADED``); fail. Only the last rung loses work, and
        it is only reached when nothing can ever answer again.
        """
        for shard in range(self.plan.shards):
            if not self._pending[shard] and not self._subs[shard]:
                continue
            if self._shard_serving(shard):
                continue
            own = [w for w in self._workers if w.shard == shard]
            if not self._closing:
                if any(w.live and (not w.draining or w.drain_respawn)
                       for w in own):
                    continue  # a STARTING/replacement incarnation is coming
                if any(w.respawn_at is not None for w in own):
                    continue  # supervisor has a respawn scheduled
                if self._peer_degraded and any(
                        w.serving and not w.draining for w in self._workers):
                    continue  # a healthy peer will poach this queue
            if self._fallback is not None:
                self._offload_shard(shard)
                continue
            error = ReproError(f"no live workers for shard {shard}")
            while self._pending[shard]:
                self._finish_pair(self._pending[shard].popleft(), ERROR,
                                  error=error)
            while self._subs[shard]:
                job, _ = self._subs[shard].popleft()
                self._finish_job(job, ERROR, error=error)

    def _offload_shard(self, shard):
        """Move a dead shard's backlog onto the BFS fallback thread."""
        members = []
        while self._pending[shard]:
            request = self._pending[shard].popleft()
            if not request.done:
                members.append(request)
        if members:
            self._fallback_inflight += 1
            self._note_degraded(shard, len(members))
            self._executor.submit(("pairs", shard, members))
        while self._subs[shard]:
            job, _ = self._subs[shard].popleft()
            self._offload_job(job)

    def _offload_job(self, job):
        """Send a whole scatter-gather job down the BFS path.

        All-or-nothing: the job's queued subs are pulled from every
        shard queue and any in-flight subs are ignored on arrival, so a
        BFS answer is never merged with arena replies in one gather.
        """
        if job.done or job.offloaded:
            return
        job.offloaded = True
        for shard in range(self.plan.shards):
            if self._subs[shard]:
                self._subs[shard] = collections.deque(
                    (j, k) for j, k in self._subs[shard] if j is not job)
        for worker in self._workers:
            if worker.pinned:
                worker.pinned = collections.deque(
                    (j, k) for j, k in worker.pinned if j is not job)
        self._fallback_inflight += 1
        for shard in job.home_shards():
            job.degraded.add(shard)
        self._executor.submit(("job", job))

    def _note_degraded(self, shard, count=1):
        with self._stats_lock:
            self.counters["degraded_requests"] += count
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_cluster_degraded_requests_total",
                             shard=str(shard)).inc(count)

    # -- reply handling -------------------------------------------------------

    def _on_conn_readable(self, worker):
        """Pump one worker's pipe through its frame decoder.

        The router never trusts worker framing: a short read, a torn
        length header, or an unpicklable body is *that worker's* death,
        never a router crash — every complete frame buffered before the
        tear is still delivered first.
        """
        if worker.gone or worker.decoder is None:
            return
        try:
            messages = worker.decoder.pump()
        except _WorkerGone:
            self._on_worker_death(worker)
            return
        for message in messages:
            self._handle_message(worker, message)
            if worker.gone:
                return
        if worker.decoder is not None and worker.decoder.eof:
            self._on_worker_death(worker)

    def _handle_message(self, worker, message):
        worker.last_seen = self._clock()
        kind = message[0]
        if kind == protocol.HELLO:
            self._on_hello(worker, message)
            return
        if kind == protocol.PONG:
            worker.ping_sent_at = None
            worker.generation = message[1]
            return
        if kind == protocol.RELOADED:
            self._on_reloaded(worker, message)
            return
        if kind == protocol.ERR and message[1] is None:
            # Startup failure: the worker could not map the arena.
            if not self._ready.is_set():
                self._start_error = message[3]
                self._ready.set()
            self._on_worker_death(worker)
            return
        batch_id = message[1]
        flight = self._inflight.pop(batch_id, None)
        if flight is None:  # pragma: no cover - stray reply
            return
        worker.state = IDLE
        worker.busy_since = None
        worker.busy_budget = None
        if flight.cancelled:
            # The hedge race was already decided by the other leg; this
            # reply only frees the worker.
            return
        if flight.twin is not None:
            twin = flight.twin
            twin.cancelled = True
            twin.twin = None
            flight.twin = None
            if flight.is_hedge:
                self._bump("hedge_wins")
                registry = get_registry()
                if registry.enabled:
                    registry.counter("spc_cluster_hedge_wins_total").inc()
        if message[0] == protocol.OK:
            self._latency[flight.home_shard].append(
                self._clock() - flight.sent_at)
        if flight.job is not None and flight.job.offloaded:
            # The whole job went down the BFS path; arena replies for it
            # are ignored so generations never mix in one gather.
            return
        if flight.kind == "pairs":
            self._on_pairs_reply(worker, flight, message)
        else:
            self._on_sub_reply(worker, flight, message)

    def _on_hello(self, worker, message):
        now = self._clock()
        worker.generation = message[1]
        worker.state = IDLE
        worker.hello_at = now
        worker.busy_since = None
        worker.ping_sent_at = None
        if not self._ready.is_set():
            if all(w.state != STARTING for w in self._workers):
                self._ready.set()
        else:
            # A respawned (or drain-replacement) worker is back: count
            # it as recovery evidence so an open breaker can close.
            self.breaker.record_success()
            registry = get_registry()
            if registry.enabled:
                shard = str(worker.shard)
                registry.gauge("spc_cluster_workers", shard=shard).set(
                    sum(1 for w in self._workers
                        if w.live and w.shard == worker.shard))
                if worker.died_at is not None:
                    registry.histogram("spc_cluster_respawn_seconds").observe(
                        now - worker.died_at)
            get_event_log().emit("cluster_worker_up", worker=worker.index,
                                 shard=worker.shard,
                                 generation=worker.generation,
                                 respawns=worker.respawns)
        worker.died_at = None
        self._resolve_drains(worker, True)

    def _on_pairs_reply(self, worker, flight, message):
        members = flight.members
        self._bump("batches")
        metrics = self._metrics
        if metrics is not None:
            metrics.batches[worker.shard].inc()
            metrics.batch_seconds[worker.shard].observe(
                self._clock() - flight.sent_at)
        if message[0] == protocol.ERR:
            kind, detail = message[2], message[3]
            status = _ERR_STATUS.get(kind, ERROR)
            if status == ERROR:
                self.breaker.record_failure()
            for request in members:
                error = (_deadline_error(request.deadline)
                         if kind == protocol.ERR_DEADLINE
                         else _err_exception(kind, detail))
                self._finish_pair(request, status, error=error)
            return
        self.breaker.record_success()
        generation = message[2]
        answers = message[3]
        for request, answer in zip(members, answers):
            if (request.deadline is not None
                    and request.deadline.remaining() <= 0):
                self._finish_pair(request, DEADLINE,
                                  error=_deadline_error(request.deadline))
            else:
                self._finish_pair(request, SERVED_INDEX, answer=answer,
                                  generation=generation,
                                  degraded=flight.degraded)

    def _on_sub_error(self, job, kind, detail):
        status = _ERR_STATUS.get(kind, ERROR)
        if status == ERROR:
            self.breaker.record_failure()
        error = (_deadline_error(job.deadline)
                 if kind == protocol.ERR_DEADLINE
                 else _err_exception(kind, detail))
        self._finish_job(job, status, error=error)

    def _on_sub_reply(self, worker, flight, message):
        job, key = flight.job, flight.key
        if isinstance(job, _PairBatchJob):
            # A bulk sub is one coalesced worker round-trip, same as a
            # router-built pair batch — account it under the same
            # counters so the batching instruments cover both doors.
            self._bump("batches")
            metrics = self._metrics
            if metrics is not None:
                metrics.batches[worker.shard].inc()
                metrics.batch_seconds[worker.shard].observe(
                    self._clock() - flight.sent_at)
                metrics.batch_size.observe(len(job.subs[key][0]))
        if message[0] == protocol.ERR:
            self._on_sub_error(job, message[2], message[3])
            return
        self.breaker.record_success()
        if flight.degraded:
            for shard in flight.degraded:
                job.degraded.add(shard)
        outcome = job.register_reply(key, message[2], message[3])
        if outcome in ("dup", "pending"):
            return
        if outcome == "mixed":
            # A rolling swap landed mid-gather: never merge two index
            # generations into one answer — retry the whole scatter.
            generations = {gen for gen, _ in job.replies.values()}
            self._bump("gather_retries")
            registry = get_registry()
            if registry.enabled:
                registry.counter("spc_cluster_gather_retries_total").inc()
            if job.retries >= GATHER_RETRY_LIMIT:
                self._finish_job(job, ERROR, error=ReproError(
                    f"gather saw mixed generations {sorted(generations)} "
                    f"after {job.retries} retries"))
                return
            job.retries += 1
            job.replies.clear()
            job.degraded.clear()
            for sub_key in job.keys():
                shard = job.shard_for(sub_key)
                if shard is None:
                    self._workers[sub_key].pinned.append((job, sub_key))
                else:
                    self._subs[shard].append((job, sub_key))
            return
        generations = {gen for gen, _ in job.replies.values()}
        payloads = {k: payload for k, (_, payload) in job.replies.items()}
        answer = job.merge(payloads)
        self._finish_job(job, SERVED_INDEX, answer=answer,
                         generation=min(generations))

    def _on_reloaded(self, worker, message):
        generation, ok, detail = message[1], message[2], message[3]
        worker.state = IDLE
        worker.busy_since = None
        registry = get_registry()
        if ok:
            worker.generation = generation
            self._bump("reloads")
            if registry.enabled:
                registry.counter("spc_cluster_reloads_total",
                                 outcome="success").inc()
                registry.gauge("spc_cluster_generation").set(self.generation)
            get_event_log().emit("cluster_worker_reloaded",
                                 worker=worker.index, shard=worker.shard,
                                 generation=generation)
        else:
            self._bump("reload_failures")
            if registry.enabled:
                registry.counter("spc_cluster_reloads_total",
                                 outcome="failure").inc()
            get_event_log().emit("cluster_reload_failed",
                                 worker=worker.index, shard=worker.shard,
                                 detail=str(detail))

    def _on_worker_death(self, worker):
        if worker.state in (DEAD, STOPPED):
            return
        now = self._clock()
        was_starting = worker.state == STARTING
        worker.state = DEAD
        worker.died_at = now
        worker.busy_since = None
        worker.busy_budget = None
        worker.ping_sent_at = None
        was_draining = worker.draining
        worker.draining = False
        self._detach(worker)
        if worker.process is not None:
            self._reaped.append(worker.process)
            worker.process = None
        self._bump("worker_failures")
        self.breaker.record_failure()
        registry = get_registry()
        if registry.enabled:
            shard = str(worker.shard)
            registry.counter("spc_cluster_worker_failures_total",
                             shard=shard).inc()
            registry.gauge("spc_cluster_workers", shard=shard).set(
                sum(1 for w in self._workers
                    if w.live and w.shard == worker.shard))
        get_event_log().emit("cluster_worker_died", worker=worker.index,
                             shard=worker.shard)
        # Replay, don't fail: only this worker's in-flight keys are
        # touched — other shards never notice.
        dead_batches = [bid for bid, flight in self._inflight.items()
                        if flight.worker is worker]
        for batch_id in dead_batches:
            self._replay(self._inflight.pop(batch_id))
        while worker.pinned:
            job, _ = worker.pinned.popleft()
            self._finish_job(job, ERROR, error=ReproError("worker died"))
        if was_starting and not self._ready.is_set():
            if self._start_error is None:
                self._start_error = "worker exited before HELLO"
            self._ready.set()
            return
        if self._respawn and not self._closing:
            # Bounded exponential backoff; a worker that stayed healthy
            # longer than the cap earns a fresh (minimal) backoff.
            if (worker.hello_at is not None
                    and now - worker.hello_at > self._respawn_backoff_max):
                worker.backoff = self._respawn_backoff
            worker.respawn_at = now + worker.backoff
            worker.backoff = min(worker.backoff * 2,
                                 self._respawn_backoff_max)
        else:
            worker.respawn_at = None
        if was_draining:
            self._resolve_drains(worker, False)

    def _replay(self, flight):
        """Re-queue a dead worker's in-flight work for someone else.

        Cancelled hedge legs carry no work; a flight whose hedge twin is
        still racing just detaches (the twin now answers alone). Replays
        go to the *front* of the pair queue so the oldest requests keep
        their place in line.
        """
        if flight.cancelled:
            return
        if flight.twin is not None:
            flight.twin.twin = None
            flight.twin = None
            return
        self._bump("replays")
        if flight.kind == "pairs":
            for request in reversed(flight.members):
                if not request.done:
                    self._pending[flight.home_shard].appendleft(request)
            return
        job, key = flight.job, flight.key
        if job.done or job.offloaded or key in job.replies:
            return
        shard = job.shard_for(key)
        if shard is None:
            # A worker-pinned probe (STATS) cannot run anywhere else.
            self._finish_job(job, ERROR, error=ReproError("worker died"))
        else:
            self._subs[shard].append((job, key))

    # -- supervision ----------------------------------------------------------

    def _check_health(self, now):
        """One supervision sweep: respawns due, stalls, missed pongs."""
        for worker in self._workers:
            if worker.state == DEAD:
                if (worker.respawn_at is not None and now >= worker.respawn_at
                        and not self._closing):
                    self._respawn_now(worker)
                continue
            if worker.state == STARTING:
                if now - worker.spawned_at > self._start_timeout:
                    self._stall_kill(worker, "no HELLO within start_timeout")
                continue
            if worker.state == BUSY:
                # Unlimited-budget flights are exempt: a long exact scan
                # with no deadline is work, not a stall.
                if (worker.busy_budget is not None
                        and worker.busy_since is not None
                        and now - worker.busy_since
                        > worker.busy_budget + self._stall_timeout):
                    self._stall_kill(worker, "batch overran its deadline "
                                             "budget")
                continue
            if worker.state == RELOADING:
                if (worker.busy_since is not None
                        and now - worker.busy_since
                        > self._stall_timeout + 5.0):
                    self._stall_kill(worker, "reload stalled")
                continue
            if worker.state == IDLE and self._heartbeat_interval > 0:
                if worker.ping_sent_at is not None:
                    if now - worker.ping_sent_at > self._stall_timeout:
                        self._stall_kill(worker, "missed heartbeat pong")
                elif now - worker.last_seen >= self._heartbeat_interval:
                    if self._send(worker, (protocol.PING,)):
                        worker.ping_sent_at = now

    def _health_timer(self, now):
        """Earliest supervision or hedge deadline, as a select() timeout."""
        deadline = None

        def consider(at):
            nonlocal deadline
            if at is not None and (deadline is None or at < deadline):
                deadline = at

        for worker in self._workers:
            if worker.state == DEAD:
                consider(worker.respawn_at)
            elif worker.state == STARTING:
                consider(worker.spawned_at + self._start_timeout)
            elif worker.state == BUSY:
                if (worker.busy_budget is not None
                        and worker.busy_since is not None):
                    consider(worker.busy_since + worker.busy_budget
                             + self._stall_timeout)
            elif worker.state == RELOADING:
                if worker.busy_since is not None:
                    consider(worker.busy_since + self._stall_timeout + 5.0)
            elif worker.state == IDLE and self._heartbeat_interval > 0:
                if worker.ping_sent_at is not None:
                    consider(worker.ping_sent_at + self._stall_timeout)
                else:
                    consider(worker.last_seen + self._heartbeat_interval)
        if self._hedge_delay is not None:
            for flight in self._inflight.values():
                if (flight.twin is not None or flight.is_hedge
                        or flight.cancelled):
                    continue
                delay = self._hedge_delay_for(flight.home_shard)
                if delay is not None:
                    consider(flight.sent_at + delay)
        if deadline is None:
            return None
        return max(deadline - now, 0.0)

    def _stall_kill(self, worker, reason):
        """A stalled worker is indistinguishable from a dead one to its
        callers — SIGKILL it (works through SIGSTOP too) and let the
        ordinary death path replay and respawn."""
        self._bump("stalls")
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_cluster_stalls_total",
                             shard=str(worker.shard)).inc()
        get_event_log().emit("cluster_worker_stalled", worker=worker.index,
                             shard=worker.shard, reason=reason,
                             state=worker.state)
        if worker.process is not None:
            try:
                worker.process.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        self._on_worker_death(worker)

    def _respawn_now(self, worker):
        worker.respawn_at = None
        worker.respawns += 1
        self._bump("respawns")
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_cluster_respawns_total",
                             shard=str(worker.shard)).inc()
        get_event_log().emit("cluster_worker_respawn", worker=worker.index,
                             shard=worker.shard, attempt=worker.respawns)
        self._spawn_process(worker, self._target_generation)

    # -- hedging --------------------------------------------------------------

    def _hedge_delay_for(self, shard):
        """Seconds a sub-request may wait before a hedge fires, or None."""
        delay = self._hedge_delay
        if delay is None:
            return None
        if delay != "auto":
            return delay
        samples = self._latency[shard]
        if len(samples) < 16:
            return None
        ordered = sorted(samples)
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        return max(self._hedge_floor, p95 * self._hedge_multiplier)

    def _maybe_hedge(self, now):
        if self._hedge_delay is None or not self._inflight:
            return
        for flight in list(self._inflight.values()):
            if (flight.twin is not None or flight.is_hedge
                    or flight.cancelled):
                continue
            if flight.message[0] not in (protocol.PAIRS,
                                         protocol.SINGLE_SOURCE,
                                         protocol.SET_TO_SET):
                continue  # pinned probes and control traffic never hedge
            if flight.job is not None and flight.job.offloaded:
                continue
            delay = self._hedge_delay_for(flight.home_shard)
            if delay is None or now - flight.sent_at < delay:
                continue
            sibling = self._hedge_sibling(flight)
            if sibling is None:
                continue
            self._dispatch_hedge(flight, sibling, now)

    def _hedge_sibling(self, flight):
        """An idle worker that could answer the same sub-request with
        the same generation; same-shard replicas first."""
        best = None
        for worker in self._workers:
            if (worker is flight.worker or worker.state != IDLE
                    or worker.draining
                    or worker.generation != flight.worker.generation):
                continue
            if worker.shard == flight.worker.shard:
                return worker
            if best is None and self._peer_degraded:
                best = worker
        return best

    def _dispatch_hedge(self, flight, sibling, now):
        batch_id = self._next_id()
        message = flight.message[:1] + (batch_id,) + flight.message[2:]
        if not self._send(sibling, message):
            return
        hedge = _Flight(flight.kind, batch_id, sibling, flight.home_shard,
                        message, now, flight.budget)
        hedge.members = flight.members
        hedge.job = flight.job
        hedge.key = flight.key
        hedge.degraded = flight.degraded
        hedge.is_hedge = True
        hedge.twin = flight
        flight.twin = hedge
        sibling.state = BUSY
        sibling.busy_since = now
        sibling.busy_budget = flight.budget
        self._inflight[batch_id] = hedge
        self._bump("hedges")
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_cluster_hedges_total").inc()
        get_event_log().emit("cluster_hedge", worker=flight.worker.index,
                             sibling=sibling.index,
                             shard=flight.home_shard)

    # -- drains ---------------------------------------------------------------

    def _on_drain_request(self, worker_index, respawn, future):
        worker = self._workers[worker_index]
        if not worker.live:
            future.set_result(False)
            return
        if not worker.draining:
            worker.draining = True
            worker.drain_respawn = respawn
            self._bump("drains")
            registry = get_registry()
            if registry.enabled:
                registry.counter("spc_cluster_drains_total",
                                 shard=str(worker.shard)).inc()
            get_event_log().emit("cluster_worker_drain",
                                 worker=worker.index, shard=worker.shard,
                                 respawn=respawn)
        worker.drain_respawn = worker.drain_respawn and respawn
        worker.drain_futures.append(future)

    def _complete_drain(self, worker):
        """The draining worker went idle: stop it and (maybe) replace it.

        Hot swap-in of a fresh process is just this state machine with
        ``drain_respawn=True`` — the drain futures resolve when the
        replacement says HELLO, so a rolling restart can wait on full
        capacity, not merely on the old process exiting.
        """
        self._send(worker, (protocol.STOP,))
        if worker.state in (DEAD, STOPPED):
            return  # the STOP send already declared it dead
        self._detach(worker)
        worker.state = STOPPED
        worker.draining = False
        if worker.process is not None:
            self._reaped.append(worker.process)
            worker.process = None
        get_event_log().emit("cluster_worker_drained", worker=worker.index,
                             shard=worker.shard)
        if worker.drain_respawn and not self._closing:
            self._spawn_process(worker, self._target_generation)
        else:
            self._resolve_drains(worker, True)

    def _resolve_drains(self, worker, outcome):
        while worker.drain_futures:
            _set_result(worker.drain_futures.pop(), outcome)

    # -- degraded execution ---------------------------------------------------

    def _on_degraded_done(self, item, outcome):
        self._fallback_inflight -= 1
        if item[0] == "pairs":
            _, shard, members = item
            for request, (status, answer, error) in zip(members, outcome):
                self._finish_pair(request, status, answer=answer,
                                  error=error, degraded=(shard,))
            return
        job = item[1]
        status, answer, error = outcome
        self._finish_job(job, status, answer=answer, error=error)

    def _shutdown_workers(self):
        for worker in self._workers:
            if not worker.live:
                continue
            if worker.conn is not None:
                try:
                    worker.conn.send((protocol.STOP,))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            self._detach(worker)
            worker.state = STOPPED

    def _fail_everything(self, error):
        """Terminally resolve every queued, in-flight, and inbox future.

        Idempotent (the ``done`` flags make double-resolution a no-op)
        and callable from the closing thread as a last resort, so no
        ``submit()`` caller can ever hang across shutdown.
        """
        for shard in range(self.plan.shards):
            while self._pending[shard]:
                self._finish_pair(self._pending[shard].popleft(), ERROR,
                                  error=error)
            while self._subs[shard]:
                job, _ = self._subs[shard].popleft()
                self._finish_job(job, ERROR, error=error)
        for flight in list(self._inflight.values()):
            if flight.cancelled:
                continue
            if flight.kind == "pairs":
                for request in flight.members:
                    self._finish_pair(request, ERROR, error=error)
            elif flight.job is not None:
                self._finish_job(flight.job, ERROR, error=error)
        self._inflight.clear()
        for worker in self._workers:
            while worker.pinned:
                job, _ = worker.pinned.popleft()
                self._finish_job(job, ERROR, error=error)
            self._resolve_drains(worker, False)
        while self._inbox:
            try:
                item = self._inbox.popleft()
            except IndexError:  # pragma: no cover - racing producer
                break
            kind = item[0]
            if kind == "pair":
                self._finish_pair(item[1], ERROR, error=error)
            elif kind == "job":
                self._finish_job(item[1], ERROR, error=error)
            elif kind == "drain":
                _set_result(item[1][2], False)
            elif kind == "degraded_done":
                self._on_degraded_done(*item[1])

    # -- terminal bookkeeping -------------------------------------------------

    def _finish_pair(self, request, status, answer=None, error=None,
                     generation=0, degraded=()):
        if request.done:
            return
        request.done = True
        elapsed = self._clock() - request.started
        self._admission.release(elapsed)
        self._bump(status)
        metrics = self._metrics
        if metrics is not None:
            metrics.outcomes[status].inc()
            metrics.seconds.observe(elapsed)
            metrics.inflight.set(self._admission.in_flight)
        _set_result(request.future, QueryResult(
            status, answer=answer, error=error, elapsed=elapsed,
            generation=generation, degraded_shards=degraded))

    def _finish_job(self, job, status, answer=None, error=None, generation=0):
        if job.done:
            return
        job.done = True
        elapsed = self._clock() - job.started
        if job.admitted:
            self._admission.release(elapsed)
            self._bump(status)
            metrics = self._metrics
            if metrics is not None:
                metrics.outcomes[status].inc()
                metrics.seconds.observe(elapsed)
        job.resolve(status, answer, error, generation, elapsed,
                    degraded=tuple(sorted(job.degraded)))


def worker_entry(conn, path, generation, verify, fault=None):
    """Process target: import-light wrapper around ``worker_main``.

    Kept at module top level so it stays picklable under spawn-based
    start methods, and imported lazily so the parent's module graph is
    not re-imported by fork children. ``fault`` is the optional
    test-only fault hook threaded through to the worker loop.
    """
    from repro.serving.worker import worker_main

    worker_main(conn, path, generation, verify=verify, fault=fault)


class _ClusterOracle:
    """Pair oracle over cluster requests, for composite compiled queries.

    Each method issues a real (counted, admission-controlled) cluster
    request and unwraps its :class:`QueryResult`: a non-ok sub-request
    re-raises its typed error so :meth:`ClusterService._submit_composite`
    can map the whole composite onto that terminal status, and
    degraded-but-exact sub-answers flip the ``degraded`` flag the
    composite result reports.
    """

    def __init__(self, cluster, deadline):
        self._cluster = cluster
        self._budget = deadline
        self.degraded = False
        self.degraded_shards = ()

    def _absorb(self, result):
        if not result.ok:
            if result.error is not None:
                raise result.error
            raise ReproError(
                f"cluster sub-request failed with status {result.status!r}"
            )
        if result.status == SERVED_DEGRADED or result.degraded_shards:
            self.degraded = True
            if result.degraded_shards:
                merged = set(self.degraded_shards) | set(result.degraded_shards)
                self.degraded_shards = tuple(sorted(merged))
        return result.answer

    def count_with_distance(self, s, t, deadline=None):
        return self._absorb(self._cluster.submit(s, t, timeout=self._budget))

    def count_many(self, pairs, deadline=None):
        return self._absorb(
            self._cluster.submit_many(list(pairs), timeout=self._budget)
        )

    def single_source(self, s, deadline=None):
        return self._absorb(
            self._cluster.single_source(s, timeout=self._budget)
        )
