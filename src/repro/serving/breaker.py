"""Circuit breaker guarding the degraded (BFS fallback) query path.

When the index is unhealthy, every query falls back to an online BFS —
exact but orders of magnitude slower. Under a traffic burst that is a
meltdown: every request ties up a worker for the full BFS (or its whole
deadline). The classic circuit-breaker pattern bounds the damage:

* **closed** — fallback allowed; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: fallback attempts fail *fast* with a typed
  :class:`~repro.exceptions.CircuitOpenError` (callers see a retry-after
  hint) instead of burning a deadline each.
* **half-open** — after ``reset_timeout`` seconds, up to
  ``half_open_probes`` trial requests are let through; one success closes
  the breaker, one failure re-opens it (with a fresh timeout).

Successes anywhere reset the consecutive-failure count. All transitions
and per-state outcomes are counted for observability, and every method is
thread-safe. The clock is injectable so tests can drive transitions
deterministically.
"""

import threading
import time

from repro.exceptions import CircuitOpenError
from repro.observability.events import get_event_log
from repro.observability.metrics import get_registry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


def _record_transition(to):
    """Mirror one breaker state change into the registry and event log."""
    registry = get_registry()
    if registry.enabled:
        registry.counter("spc_breaker_transitions_total", to=to).inc()
    get_event_log().emit("breaker.transition", to=to)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Usage on the protected path::

        breaker.before_call()        # raises CircuitOpenError when open
        try:
            result = slow_fallback()
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
    """

    def __init__(self, failure_threshold=5, reset_timeout=1.0,
                 half_open_probes=1, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probes_in_flight = 0
        self.counters = {
            "successes": 0,
            "failures": 0,
            "short_circuited": 0,
            "opened": 0,
            "half_opened": 0,
            "closed": 0,
            "probe_rejected": 0,
        }

    # -- state ----------------------------------------------------------------

    @property
    def state(self):
        """Current state, advancing ``open`` -> ``half_open`` on timeout."""
        with self._lock:
            return self._advance()

    def _advance(self):
        """Lock held: apply the open -> half-open timer transition."""
        if self._state == OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.reset_timeout:
                self._state = HALF_OPEN
                self._probes_in_flight = 0
                self.counters["half_opened"] += 1
                _record_transition(HALF_OPEN)
        return self._state

    def _retry_after(self):
        """Lock held: seconds until the next probe is admitted."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    # -- protected-call protocol ----------------------------------------------

    def before_call(self):
        """Gate a fallback attempt; raise :class:`CircuitOpenError` if barred.

        In half-open state only ``half_open_probes`` concurrent trials are
        admitted; the rest short-circuit exactly like the open state.
        """
        with self._lock:
            state = self._advance()
            if state == CLOSED:
                return
            if state == HALF_OPEN and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return
            if state == HALF_OPEN:
                self.counters["probe_rejected"] += 1
            self.counters["short_circuited"] += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("spc_breaker_short_circuits_total").inc()
            raise CircuitOpenError(self._retry_after(), self._consecutive_failures)

    def record_success(self):
        """A protected call completed: close from half-open, reset failures."""
        with self._lock:
            self.counters["successes"] += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._opened_at = None
                self._probes_in_flight = 0
                self.counters["closed"] += 1
                _record_transition(CLOSED)

    def record_failure(self):
        """A protected call failed/timed out: count it, maybe trip open."""
        with self._lock:
            self.counters["failures"] += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0
                self.counters["opened"] += 1
                _record_transition(OPEN)

    def reset(self):
        """Force-close (operator override); counters are preserved."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probes_in_flight = 0

    def snapshot(self):
        """Observable state for ``health()``/``stats()`` endpoints."""
        with self._lock:
            return {
                "state": self._advance(),
                "consecutive_failures": self._consecutive_failures,
                "retry_after": self._retry_after(),
                "probes_in_flight": self._probes_in_flight,
                "counters": dict(self.counters),
            }

    def __repr__(self):
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, "
            f"reset_timeout={self.reset_timeout})"
        )
