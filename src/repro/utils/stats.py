"""Statistics helpers for the experiment harness (Table 4, Figure 10)."""

import math


def percentile(values, q):
    """Return the ``q``-th percentile (0..100) using linear interpolation.

    Matches numpy's default ``linear`` interpolation so measured Table 4
    rows are comparable with the paper's percentiles.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty data")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def percentiles(values, qs):
    """Return a list of percentiles; sorts the data only once."""
    data = sorted(values)
    if not data:
        raise ValueError("percentiles of empty data")
    out = []
    for q in qs:
        if not 0 <= q <= 100:
            raise ValueError("q must be within [0, 100]")
        rank = (q / 100.0) * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            out.append(data[lo])
        else:
            frac = rank - lo
            out.append(data[lo] * (1.0 - frac) + data[hi] * frac)
    return out


def cumulative_distribution(values):
    """Return ``(sorted_values, fractions)`` for an empirical CDF.

    ``fractions[i]`` is the fraction of observations ``<= sorted_values[i]``.
    Used to regenerate Figure 10 (cumulative distribution of |L(v)|).
    """
    data = sorted(values)
    if not data:
        return [], []
    n = len(data)
    xs = []
    fs = []
    for i, x in enumerate(data, start=1):
        if xs and xs[-1] == x:
            fs[-1] = i / n
        else:
            xs.append(x)
            fs.append(i / n)
    return xs, fs


def mean(values):
    """Arithmetic mean; raises on empty input instead of returning NaN."""
    total = 0.0
    count = 0
    for v in values:
        total += v
        count += 1
    if count == 0:
        raise ValueError("mean of empty data")
    return total / count


def geometric_mean(values):
    """Geometric mean of positive values (used for ratio summaries)."""
    log_total = 0.0
    count = 0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        log_total += math.log(v)
        count += 1
    if count == 0:
        raise ValueError("geometric mean of empty data")
    return math.exp(log_total / count)
