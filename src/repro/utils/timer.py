"""Wall-clock timing helpers used by the benchmark harness."""

import time
from contextlib import contextmanager


class Timer:
    """Accumulating wall-clock timer.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._started_at = None

    def start(self):
        if self._started_at is not None:
            raise RuntimeError("timer already running")
        self._started_at = time.perf_counter()

    def stop(self):
        if self._started_at is None:
            raise RuntimeError("timer not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self):
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    @property
    def running(self):
        return self._started_at is not None

    @property
    def milliseconds(self):
        return self.elapsed * 1e3

    @property
    def microseconds(self):
        return self.elapsed * 1e6


@contextmanager
def timed(sink, key):
    """Time a block and record the elapsed seconds into ``sink[key]``.

    ``sink`` is any mutable mapping; repeated use accumulates.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (time.perf_counter() - start)
