"""Small shared helpers: timing, RNG plumbing, statistics, validation."""

from repro.utils.rng import ensure_rng
from repro.utils.stats import cumulative_distribution, percentile, percentiles
from repro.utils.timer import Timer, timed

__all__ = [
    "Timer",
    "timed",
    "ensure_rng",
    "percentile",
    "percentiles",
    "cumulative_distribution",
]
