"""Random-number-generator plumbing.

All stochastic entry points in the library accept ``seed`` (an int, a
:class:`random.Random`, or ``None``) and normalise it through
:func:`ensure_rng`, so experiments are reproducible end to end.
"""

import random


def ensure_rng(seed=None):
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (fresh nondeterministic generator), an ``int``
    (deterministic generator), or an existing :class:`random.Random`
    (returned as is so generator state can be threaded through pipelines).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(f"seed must be None, int or random.Random, got {type(seed).__name__}")


def random_pairs(n, count, rng=None, distinct=False):
    """Yield ``count`` random vertex pairs drawn from ``range(n)``.

    With ``distinct=True`` the two endpoints of each pair differ (requires
    ``n >= 2``).
    """
    rng = ensure_rng(rng)
    if n <= 0:
        raise ValueError("n must be positive")
    if distinct and n < 2:
        raise ValueError("distinct pairs require n >= 2")
    for _ in range(count):
        s = rng.randrange(n)
        t = rng.randrange(n)
        while distinct and t == s:
            t = rng.randrange(n)
        yield s, t
