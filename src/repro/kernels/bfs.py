"""Level-synchronous numpy BFS kernels over the :meth:`Graph.csr` view.

The scalar traversals in :mod:`repro.graph.traversal` walk Python deques;
these kernels expand a whole frontier per step with ``np.repeat`` range
expansion and ``indices[...]`` gathers, and accumulate shortest-path counts
with ``np.add.at`` (exact int64 arithmetic — ``np.bincount`` would round
through float64). They are the building blocks of the vectorized HP-SPC
construction in :mod:`repro.kernels.hub_push` and of the CSR-backed online
baseline in :mod:`repro.baselines.bfs_counting`.

Conventions: distances are int64 with ``-1`` for unreachable vertices
(the scalar oracles use ``float('inf')``); counts are int64 with a
rigorous overflow guard (see :func:`count_guard_threshold`).
"""

import numpy as np

from repro.exceptions import LabelingError

INT64_MAX = np.iinfo(np.int64).max


def count_guard_threshold(max_degree, max_multiplicity=1):
    """Largest per-vertex count the int64 kernels accept without risk.

    The counting recurrence sums at most ``max_degree`` forwarded terms
    into one vertex, each at most ``count * multiplicity``. If every count
    checked so far is ``<= threshold`` then no int64 addition or
    multiplication can have wrapped before the guard inspects the new
    level, so overflow detection is exact (by induction over BFS levels).
    Kernels raise :class:`~repro.exceptions.LabelingError` when a count
    exceeds the threshold; callers needing wider counts must use the
    pure-Python engines, which carry arbitrary-precision ints.
    """
    divisor = max(1, int(max_degree)) * max(1, int(max_multiplicity))
    return INT64_MAX // divisor


def expand_ranges(starts, counts):
    """Flat indices covering ``[starts[i], starts[i] + counts[i])`` per row.

    The standard vectorized range-expansion: equivalent to concatenating
    ``np.arange(s, s + c)`` for each row, without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(starts - (ends - counts), counts)
    return offsets + np.arange(total, dtype=np.int64)


def bfs_distances_csr(graph, source):
    """Distances (edge counts) from ``source``; ``-1`` for unreachable.

    Vectorized counterpart of :func:`repro.graph.traversal.bfs_distances`.
    """
    indptr, indices = graph.csr()
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        starts = indptr[frontier]
        degrees = indptr[frontier + 1] - starts
        neighbors = indices[expand_ranges(starts, degrees)]
        fresh = neighbors[dist[neighbors] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        level += 1
        dist[frontier] = level
    return dist


def bfs_count_csr(graph, source, deadline=None):
    """``(dist, count)`` int64 arrays from ``source`` (Brandes' Σ recurrence).

    Vectorized counterpart of :func:`repro.graph.traversal.bfs_count_from`;
    distances use ``-1`` for unreachable vertices (count 0 there).
    ``deadline`` (duck-typed ``check()``) is consulted once per BFS level —
    the natural cooperative checkpoint of a level-synchronous sweep.
    """
    indptr, indices = graph.csr()
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    count = np.zeros(n, dtype=np.int64)
    dist[source] = 0
    count[source] = 1
    max_degree = int((indptr[1:] - indptr[:-1]).max()) if n else 0
    threshold = count_guard_threshold(max_degree)
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        if deadline is not None:
            deadline.check()
        starts = indptr[frontier]
        degrees = indptr[frontier + 1] - starts
        neighbors = indices[expand_ranges(starts, degrees)]
        forwarded = np.repeat(count[frontier], degrees)
        # Targets already settled at an earlier level never re-accumulate;
        # same-level targets all still read -1 here (level-synchronous).
        open_mask = dist[neighbors] < 0
        neighbors = neighbors[open_mask]
        if neighbors.size == 0:
            break
        np.add.at(count, neighbors, forwarded[open_mask])
        frontier = np.unique(neighbors)
        level += 1
        dist[frontier] = level
        if int(count[frontier].max()) > threshold:
            raise LabelingError(
                "shortest-path count exceeds the int64 kernel guard; "
                "use the pure-Python BFS for this graph"
            )
    return dist, count
