"""Rank-batched parallel hub-push: shared-array vertex parallelism.

:func:`build_flat_labels_batched` is the large-graph construction engine
(``engine="csr-batch"``). Instead of fanning each push out to a worker
process (:mod:`repro.parallel.builder`) it processes *batches of
consecutive ranks* inside one address space, PSPC-style: all roots of a
batch run a single level-synchronous sweep over shared composite-indexed
frontier arrays, so the per-level numpy call overhead — what dominates
the sequential csr engine once frontiers are small — amortizes across
the whole batch.

The two phases per batch mirror the process-parallel builder's soundness
argument, with a stronger phase-1 join:

1. **Batched sweep** (phase 1): every root ``r`` in ``[base, base+B)``
   explores its rank-restricted ball ``G_r`` simultaneously. Vertex ``v``
   of slot ``s`` lives at composite index ``s*n + v`` in shared ``dist``
   / ``count`` arrays, so one gather/scatter sequence advances all B
   frontiers a level. Pruning joins run against the *global* canonical
   store, which is exact and complete for ranks below ``base`` — a
   subset of the join information the sequential builder has, hence
   sound under-pruning: phase 1 keeps a superset of the true label
   entries, and (by the HP-SPC pruning lemma) the ``(dist, count)``
   values of every entry the merge later keeps are exact.
2. **In-order merge** (phase 2): ranks replay in increasing order
   against the now-complete canonical store, classifying each candidate
   canonical / non-canonical / pruned exactly as
   :func:`repro.kernels.hub_push.merge_candidates_csr` does. Labels are
   therefore bit-identical to the sequential csr engine; with
   ``batch_size=1`` the whole scheme degenerates to it.

Emission streams through a :class:`~repro.core.label_store.LabelStore`
(freeze-free, optionally disk-spilled, optionally memory-mapped output
columns), and the canonical join store uses uint32 rows — together this
is what lets a million-vertex Barabási–Albert build fit one box.

Construction counters follow the parallel builder's convention: sweep
discoveries count as ``visits``; ``pushes`` / ``prunes`` /
``label_entries`` (including root self-entries) are counted by the
merge, and ``join_terms`` counts phase-1 join terms plus the merge's
in-batch suffix terms.
"""

from time import perf_counter

import numpy as np

from repro.core.label_store import LabelStore
from repro.core.ordering import resolve_static_order
from repro.exceptions import LabelingError
from repro.kernels.bfs import count_guard_threshold, expand_ranges
from repro.kernels.hub_push import (
    INF_SENT,
    _CanonicalRows,
    _rank_space_csr,
)
from repro.observability.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from repro.observability.tracing import get_tracer

INT = np.int64

#: scratch budget for the shared sweep arrays (dist + count + arena ≈ 24
#: bytes per slot·vertex); the auto batch size keeps them under this.
DEFAULT_SCRATCH_BYTES = 768 << 20

#: hard cap on the auto batch size — beyond this the per-level numpy
#: overhead is already fully amortized and wider batches lose more to
#: stale pruning (phase-1 cannot prune against in-batch hubs) than they
#: save in sweep overhead: at 10^5 vertices batch 16 beats sequential by
#: ~1.13x while batch 64 is ~1.5x slower than sequential.
MAX_AUTO_BATCH = 16


def default_batch_size(n, scratch_bytes=DEFAULT_SCRATCH_BYTES):
    """Largest batch whose shared sweep arrays fit ``scratch_bytes``."""
    if n <= 0:
        return 1
    per_slot = 24 * (n + 2)
    return int(max(1, min(MAX_AUTO_BATCH, n, scratch_bytes // per_slot)))


def build_flat_labels_batched(
    graph,
    ordering="degree",
    batch_size=None,
    stats=None,
    spill_dir=None,
    mmap_dir=None,
    compact=True,
):
    """Run rank-batched HP-SPC; returns a finalized ``FlatLabels``.

    Labels are bit-identical to :func:`build_flat_labels_csr` under the
    same static ordering (the test suite enforces this). ``batch_size``
    defaults to :func:`default_batch_size`; ``spill_dir`` streams
    emission chunks to disk during the build and ``mmap_dir`` puts the
    final CSR columns in memory-mapped files, so neither the in-flight
    nor the finished label payload has to fit in RAM. ``compact=False``
    keeps the historical int64 columns.

    The engine is deliberately lean: it supports the pruned, unit-
    multiplicity, no-skip configuration only (the one that matters at
    scale) and raises :class:`ValueError` for the §4.2/§4.3 reduction
    knobs — those stay on the sequential engines.
    """
    n = graph.n
    registry = get_registry()
    tracer = get_tracer()
    metered = registry.enabled
    if metered:
        build_start = perf_counter()
        batch_hist = registry.histogram("spc_build_batch_seconds")
        roots_hist = registry.histogram("spc_build_batch_roots",
                                        buckets=DEFAULT_SIZE_BUCKETS)
    order = resolve_static_order(graph, ordering)
    order_np = np.asarray(order, dtype=INT) if n else np.empty(0, dtype=INT)

    if batch_size is None:
        batch_size = default_batch_size(n)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    width_cap = int(min(batch_size, max(n, 1)))

    rank_of = np.empty(n, dtype=INT)
    rank_of[order_np] = np.arange(n, dtype=INT)
    rindptr, rindices = _rank_space_csr(graph, order_np, rank_of)
    max_degree = int((rindptr[1:] - rindptr[:-1]).max()) if n else 0
    threshold = count_guard_threshold(max_degree)

    # Global canonical join store, uint32 rows (ranks and BFS depths are
    # both < n < 2^32); exact and complete below the current batch.
    rows = _CanonicalRows(n, rank_dtype=np.uint32, dist_dtype=np.uint32)

    stride = n + 2  # one rank_dist slice per slot; tail slot stays INF
    dist = np.full(width_cap * n, -1, dtype=INT) if n else np.empty(0, INT)
    count = np.zeros(width_cap * n, dtype=INT)
    arena = np.full(width_cap * stride, INF_SENT, dtype=INT)
    merge_rank_dist = np.full(n + 2, INF_SENT, dtype=INT)
    store = LabelStore(n, spill_dir=spill_dir)
    zero = np.zeros(1, dtype=INT)
    one = np.ones(1, dtype=INT)

    build_span = tracer.begin("build.csr_batch", n=n,
                              batch_size=width_cap) if tracer.enabled else None
    try:
        for base in range(0, n, width_cap):
            if metered:
                batch_start = perf_counter()
            width = min(width_cap, n - base)

            # --- phase 1: one shared sweep for all roots of the batch ----
            arena_touched = []
            for slot in range(width):
                root_ranks, root_dists = rows.row(base + slot)
                if root_ranks.size:
                    idx = slot * stride + root_ranks.astype(INT, copy=False)
                    arena[idx] = root_dists
                    arena_touched.append(idx)
            slots = np.arange(width, dtype=INT)
            batch_ranks = base + slots
            roots = slots * n + batch_ranks
            dist[roots] = 0
            count[roots] = 1
            if stats is not None:
                stats.visits += width
            visited = [roots]
            frontier = roots
            cand = [[] for _ in range(width)]  # (verts, depth, counts) per slot
            depth = 0
            while frontier.size:
                fverts = frontier % n
                fslots = frontier // n
                starts = rindptr[fverts]
                degrees = rindptr[fverts + 1] - starts
                neighbors = rindices[expand_ranges(starts, degrees)]
                nslots = np.repeat(fslots, degrees)
                forwarded = np.repeat(count[frontier], degrees)
                # Each slot's rank restriction: stay inside G_{base+slot}.
                keep = neighbors > base + nslots
                comp = nslots[keep] * n + neighbors[keep]
                forwarded = forwarded[keep]
                open_mask = dist[comp] < 0
                comp = comp[open_mask]
                if comp.size == 0:
                    break
                # Fused scatter-add + unique: one sort groups duplicate
                # targets, reduceat sums their forwarded counts exactly in
                # int64 (the guard threshold bounds per-target sums), and
                # the group heads are np.unique(comp) for free. A bincount
                # over the B*n composite range would thrash; np.add.at is
                # an order of magnitude slower.
                perm = np.argsort(comp)
                sorted_comp = comp[perm]
                heads = np.concatenate((
                    np.zeros(1, dtype=INT),
                    np.flatnonzero(sorted_comp[1:] != sorted_comp[:-1]) + 1,
                ))
                new = sorted_comp[heads]
                count[new] = np.add.reduceat(forwarded[open_mask][perm], heads)
                depth += 1
                dist[new] = depth
                visited.append(new)
                if stats is not None:
                    stats.visits += new.size
                if int(count[new].max()) > threshold:
                    raise LabelingError(
                        "shortest-path count exceeds the int64 kernel guard; "
                        "use the python engine for this graph"
                    )
                new_slots = new // n
                best, lengths = rows.gather_best_at(new % n,
                                                    new_slots * stride, arena)
                kept_mask = best >= depth  # global-store prune is sound
                kept = new[kept_mask]
                if stats is not None:
                    stats.join_terms += int(lengths.sum())
                if kept.size:
                    kverts = kept % n
                    kslots = new_slots[kept_mask]
                    # `new` is sorted, so kept is grouped by slot.
                    bounds = np.searchsorted(kslots, np.arange(width + 1))
                    kcounts = count[kept]
                    kbest = best[kept_mask]
                    for slot in range(width):
                        lo, hi = bounds[slot], bounds[slot + 1]
                        if lo < hi:
                            cand[slot].append((kverts[lo:hi], depth,
                                               kcounts[lo:hi], kbest[lo:hi]))
                frontier = kept
            for touched in visited:
                dist[touched] = -1
                count[touched] = 0
            for idx in arena_touched:
                arena[idx] = INF_SENT

            # Concatenate each slot's candidates and snapshot row lengths
            # *before* the merge appends anything: phase 1's `best` is
            # exact over those prefixes, so the merge only joins against
            # what later in-batch ranks append past them.
            merged = []
            for slot in range(width):
                pieces = cand[slot]
                if not pieces:
                    merged.append(None)
                    continue
                verts = np.concatenate([piece[0] for piece in pieces])
                dists = np.concatenate([
                    np.full(piece[0].size, piece[1], dtype=INT)
                    for piece in pieces
                ])
                counts = np.concatenate([piece[2] for piece in pieces])
                best1 = np.concatenate([piece[3] for piece in pieces])
                merged.append((verts, dists, counts, best1,
                               rows.length[verts].copy()))

            # --- phase 2: replay ranks in order against exact labels -----
            for slot in range(width):
                r = base + slot
                if stats is not None:
                    stats.pushes += 1
                root_ranks, root_dists = rows.row(r)
                if root_ranks.size:
                    merge_rank_dist[root_ranks] = root_dists
                store.append(r, np.array([r], dtype=INT), zero, one, True)
                if stats is not None:
                    stats.label_entries += 1
                if merged[slot] is not None:
                    verts, dists, counts, best1, len0 = merged[slot]
                    suffix_best, extra = rows.gather_best_suffix(
                        verts, len0, merge_rank_dist
                    )
                    best = np.minimum(best1, suffix_best)
                    if stats is not None:
                        stats.join_terms += int(extra.sum())
                        stats.prunes += int((best < dists).sum())
                    canonical_mask = best > dists
                    noncanonical_mask = best == dists
                    emit_can = verts[canonical_mask]
                    emit_non = verts[noncanonical_mask]
                    if stats is not None:
                        stats.label_entries += emit_can.size + emit_non.size
                    if emit_can.size:
                        can_dists = dists[canonical_mask]
                        store.append(r, emit_can, can_dists,
                                     counts[canonical_mask], True)
                        rows.append(emit_can, r, can_dists)
                    if emit_non.size:
                        store.append(r, emit_non, dists[noncanonical_mask],
                                     counts[noncanonical_mask], False)
                if root_ranks.size:
                    merge_rank_dist[root_ranks] = INF_SENT
            if metered:
                batch_hist.observe(perf_counter() - batch_start)
                roots_hist.observe(width)
                registry.counter("spc_build_batches_total").inc()

        flat = store.finalize(order_np, mmap_dir=mmap_dir, compact=compact)
    finally:
        store.close()
        if build_span is not None:
            tracer.end(build_span)
    if metered:
        total_entries = flat.total_entries()
        registry.counter("spc_build_pushes_total", engine="csr-batch").inc(n)
        registry.counter("spc_build_label_entries_total",
                         engine="csr-batch").inc(total_entries)
        registry.gauge("spc_label_total_entries",
                       engine="csr-batch").set(total_entries)
        registry.gauge("spc_label_avg_size", engine="csr-batch").set(
            total_entries / n if n else 0.0
        )
        registry.histogram("spc_build_seconds", engine="csr-batch").observe(
            perf_counter() - build_start
        )
    return flat
