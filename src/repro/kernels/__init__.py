"""Array-native construction kernels over the :meth:`Graph.csr` view.

Level-synchronous numpy BFS sweeps (:mod:`repro.kernels.bfs`) and the
vectorized rank-restricted hub-push construction
(:mod:`repro.kernels.hub_push`) that builds
:class:`~repro.core.flat_labels.FlatLabels` directly. Selected via
``engine="csr"`` on :func:`repro.core.hp_spc.build_labels`,
:meth:`repro.core.index.SPCIndex.build` and the CLI.
"""

from repro.kernels.bfs import (
    bfs_count_csr,
    bfs_distances_csr,
    count_guard_threshold,
    expand_ranges,
)
from repro.kernels.hub_push import (
    build_flat_labels_csr,
    merge_candidates_csr,
    push_block_csr,
)

__all__ = [
    "bfs_count_csr",
    "bfs_distances_csr",
    "build_flat_labels_csr",
    "count_guard_threshold",
    "expand_ranges",
    "merge_candidates_csr",
    "push_block_csr",
]
