"""Vectorized HP-SPC construction (Algorithm 1) over CSR arrays.

:func:`build_flat_labels_csr` runs the hub-pushing loop of §3.2 with numpy
level-synchronous sweeps instead of the pure-Python deque BFS in
:mod:`repro.core.hp_spc`, and appends straight into growing columnar
buffers that finalize into a :class:`~repro.core.flat_labels.FlatLabels`
CSR — no intermediate Python :class:`~repro.core.labels.LabelSet`. The
labels are entry-for-entry identical to the Python engine under the same
(static) ordering; the test suite enforces this bit-identity.

Everything runs in *rank space*: vertices are relabeled by their position
in the vertex order, so the rank restriction of ``G_w`` (line 4) is a
single ``neighbors > rank`` mask on gathered CSR rows. The per-level sweep
is:

1. **Expand** the frontier with :func:`~repro.kernels.bfs.expand_ranges`
   gathers, mask off higher-ranked (already pushed) and settled targets.
2. **Accumulate** shortest-path counts into the new level with exact
   int64 scatter-adds (Brandes' Σ, same recurrence as the scalar BFS).
3. **Join** (line 8): the already-frozen canonical columns live in a
   padded per-vertex ``(rank, dist)`` store (:class:`_CanonicalRows`);
   ``rank_dist`` is scattered once per push from the root's canonical row,
   and one batched 2D gather + row-min computes
   ``best = min_h(sd(w, h) + sd(v, h))`` for the whole level at once.
4. **Classify** against the trough distance: ``best < d`` prunes (no
   forwarding), ``best == d`` emits non-canonical, ``best > d`` emits
   canonical and extends the join store.

The same sweep primitives serve the multiprocessing builder: workers run
:func:`push_block_csr` (phase-1 candidate generation with block-local
pruning) and the coordinator replays :func:`merge_candidates_csr`
(phase-2 classification), mirroring :mod:`repro.parallel.builder`.

Counts are int64 with the rigorous overflow guard of
:func:`repro.kernels.bfs.count_guard_threshold`; graphs whose counts
exceed it must use the arbitrary-precision Python engine.
"""

from time import perf_counter

import numpy as np

from repro.core.flat_labels import FlatLabels
from repro.core.ordering import resolve_static_order
from repro.exceptions import LabelingError
from repro.kernels.bfs import count_guard_threshold, expand_ranges
from repro.observability.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from repro.observability.tracing import get_tracer

INT = np.int64

#: "no path through H_w" sentinel for the pruning join; larger than any
#: real distance sum (distances are < 2^31) yet safely additive in int64.
INF_SENT = np.int64(1) << 40

#: exact float64 integer arithmetic holds below 2^53; per-target sums of
#: ``max_degree`` addends stay exact when every addend is below this.
_FLOAT_EXACT = np.int64(1) << 53


class _CanonicalRows:
    """Append-only per-vertex ``(rank, dist)`` rows in a padded 2D buffer.

    The pruning join needs two access patterns the growing labels must
    serve at once: a batched "gather all rows of this frontier" (one 2D
    fancy-index per level) and a cheap single-row read for the root's
    scatter. A padded ``(n, capacity)`` pair of arrays gives both with
    zero Python-per-entry cost; capacity doubles on demand, so total
    reallocation stays linear in the final size. Empty slots hold the
    sentinel rank ``n`` whose ``rank_dist`` entry is permanently infinite.
    """

    __slots__ = ("n", "sentinel", "capacity", "rank", "dist", "length")

    def __init__(self, n, capacity=8, rank_dtype=INT, dist_dtype=INT):
        # The batched builder passes uint32 dtypes (6x smaller padded
        # store at million-vertex scale); int64 arithmetic still applies
        # everywhere because the join adds into int64 rank_dist arrays.
        self.n = n
        self.sentinel = n
        self.capacity = capacity
        self.rank = np.full((n, capacity), n, dtype=rank_dtype)
        self.dist = np.zeros((n, capacity), dtype=dist_dtype)
        self.length = np.zeros(n, dtype=INT)

    def _grow(self, need):
        capacity = self.capacity
        while capacity < need:
            capacity *= 2
        rank = np.full((self.n, capacity), self.sentinel, dtype=self.rank.dtype)
        rank[:, : self.capacity] = self.rank
        dist = np.zeros((self.n, capacity), dtype=self.dist.dtype)
        dist[:, : self.capacity] = self.dist
        self.rank, self.dist, self.capacity = rank, dist, capacity

    def append(self, verts, rank, dists):
        """Append one ``(rank, dist)`` entry per vertex (verts are unique)."""
        lengths = self.length[verts]
        need = int(lengths.max()) + 1
        if need > self.capacity:
            self._grow(need)
        self.rank[verts, lengths] = rank
        self.dist[verts, lengths] = dists
        self.length[verts] = lengths + 1

    def row(self, v):
        """The ``(ranks, dists)`` views of vertex ``v``'s entries."""
        length = int(self.length[v])
        return self.rank[v, :length], self.dist[v, :length]

    def gather_best(self, verts, rank_dist):
        """Batched pruning join: ``(best, lengths)`` for each vertex.

        ``best[i] = min over entries (h, d) of verts[i] of rank_dist[h] + d``
        (``INF_SENT`` when no finite term exists). One 2D gather over the
        padded rows, sliced to the batch's longest row.
        """
        lengths = self.length[verts]
        width = int(lengths.max()) if verts.size else 0
        if width == 0:
            return np.full(verts.size, INF_SENT, dtype=INT), lengths
        sub_rank = self.rank[verts, :width]
        sub_dist = self.dist[verts, :width]
        best = (rank_dist[sub_rank] + sub_dist).min(axis=1)
        return best, lengths

    def gather_best_suffix(self, verts, start, rank_dist):
        """Pruning join restricted to each row's suffix ``[start[i]:]``.

        The batched builder's merge already knows the exact join value
        over every entry present when the batch began (phase 1 computed
        it against the complete store below the batch base); only entries
        appended *during* the batch — at most batch-width per row — can
        improve it. Joining over just that suffix keeps the merge's join
        cost proportional to in-batch growth instead of full row lengths.
        Returns ``(best, extra)`` where ``extra`` is the suffix lengths.
        """
        lengths = self.length[verts]
        extra = lengths - start
        width = int(extra.max()) if verts.size else 0
        if width == 0:
            return np.full(verts.size, INF_SENT, dtype=INT), extra
        cols = start[:, None] + np.arange(width, dtype=INT)
        valid = cols < lengths[:, None]
        cols = np.minimum(cols, self.capacity - 1)
        rows2d = verts[:, None]
        sub_rank = self.rank[rows2d, cols]
        sub_dist = self.dist[rows2d, cols]
        terms = rank_dist[sub_rank] + sub_dist
        terms[~valid] = INF_SENT
        return terms.min(axis=1), extra

    def gather_best_at(self, verts, offsets, arena):
        """Pruning join against per-vertex slices of a strided arena.

        Like :meth:`gather_best`, but each vertex joins against its own
        ``rank_dist`` slice ``arena[offsets[i] : offsets[i] + n + 2]`` —
        the batched builder keeps one such slice per in-flight root, so a
        whole multi-root frontier joins at once. The gather is *ragged*
        (flat indices over exactly ``sum(lengths)`` entries, segmented
        min via ``reduceat``) rather than padded 2D: a multi-root
        frontier mixes short and long rows, so padding to the longest
        row would multiply the join work severalfold.
        """
        lengths = self.length[verts]
        best = np.full(verts.size, INF_SENT, dtype=INT)
        nonzero = lengths > 0
        if not nonzero.any():
            return best, lengths
        vnz = verts[nonzero]
        lnz = lengths[nonzero]
        flat = expand_ranges(vnz * self.capacity, lnz)
        sub_rank = self.rank.ravel()[flat]
        sub_dist = self.dist.ravel()[flat]
        terms = arena[np.repeat(offsets[nonzero], lnz) + sub_rank] + sub_dist
        heads = np.zeros(lnz.size, dtype=INT)
        np.cumsum(lnz[:-1], out=heads[1:])
        best[nonzero] = np.minimum.reduceat(terms, heads)
        return best, lengths


def _rank_space_csr(graph, order_np, rank_of):
    """Relabel the cached CSR by rank so vertex ``i`` is the rank-``i`` hub."""
    indptr, indices = graph.csr()
    n = order_np.size
    degrees = indptr[1:] - indptr[:-1]
    rdeg = degrees[order_np]
    rindptr = np.zeros(n + 1, dtype=INT)
    np.cumsum(rdeg, out=rindptr[1:])
    gather = expand_ranges(indptr[order_np], rdeg)
    rindices = rank_of[indices[gather]] if gather.size else np.empty(0, dtype=INT)
    return rindptr, rindices


def _scatter_add_counts(count, targets, values, n, exact_threshold):
    """Exact int64 ``count[targets] += values`` with duplicate targets.

    Dense levels route through ``np.bincount`` (float64 accumulation is
    integer-exact while every addend — and hence every per-target sum of at
    most ``max_degree`` addends — stays below 2^53); sparse levels and
    large counts fall back to exact ``np.add.at``.
    """
    if targets.size > (n >> 3) and int(values.max()) <= exact_threshold:
        accumulated = np.bincount(targets, weights=values, minlength=n)
        count += accumulated.astype(INT)
    else:
        np.add.at(count, targets, values)


def _finalize_flat(n, order_np, chunks):
    """Stack the per-push emission chunks into a rank-sorted FlatLabels.

    ``chunks`` holds ``(rank, verts, dists, counts, canonical)`` with verts
    in rank space. Entries are grouped by push, so one stable argsort on
    the original vertex id produces CSR rows whose rank column is strictly
    increasing — exactly the layout ``FlatLabels.from_label_set`` builds.
    """
    order_out = order_np.copy()
    if not chunks:
        empty = np.empty(0, dtype=INT)
        return FlatLabels(
            n, np.zeros(n + 1, dtype=INT), empty, empty.copy(), empty.copy(),
            empty.copy(), np.empty(0, dtype=np.bool_), order_out,
        )
    sizes = np.fromiter((chunk[1].size for chunk in chunks), INT, count=len(chunks))
    ranks = np.repeat(
        np.fromiter((chunk[0] for chunk in chunks), INT, count=len(chunks)), sizes
    )
    verts = np.concatenate([chunk[1] for chunk in chunks])
    dists = np.concatenate([chunk[2] for chunk in chunks])
    counts = np.concatenate([chunk[3] for chunk in chunks])
    flags = np.repeat(
        np.fromiter((chunk[4] for chunk in chunks), np.bool_, count=len(chunks)), sizes
    )
    vert_orig = order_np[verts]
    hubs = order_np[ranks]
    perm = np.argsort(vert_orig, kind="stable")
    indptr = np.zeros(n + 1, dtype=INT)
    np.cumsum(np.bincount(vert_orig, minlength=n), out=indptr[1:])
    return FlatLabels(
        n, indptr, ranks[perm], hubs[perm], dists[perm], counts[perm],
        flags[perm], order_out,
    )


def _chunks_to_label_lists(n, order_np, chunks):
    """Convert rank-space emission chunks to per-vertex (vertex-space)
    ``(rank, hub, dist, count)`` lists — the checkpoint representation.

    Chunks are in push order, so per-vertex appends land rank-sorted.
    """
    canonical = [[] for _ in range(n)]
    noncanonical = [[] for _ in range(n)]
    order = order_np.tolist()
    for rank, verts, dists, counts, flag in chunks:
        hub = order[rank]
        target = canonical if flag else noncanonical
        for vert, dist, count in zip(verts.tolist(), dists.tolist(),
                                     counts.tolist()):
            target[order[vert]].append((rank, hub, dist, count))
    return canonical, noncanonical


def _state_to_chunks(state, rank_of, rows):
    """Rebuild the emission chunks (and, when pruning, the canonical join
    store) from a checkpoint prefix; inverse of :func:`_chunks_to_label_lists`.

    Entries regroup by ``(rank, canonical-flag)``; within a vertex each rank
    appears once, so any chunk order that is rank-ascending reproduces the
    strictly-increasing rank columns ``_finalize_flat`` builds.
    """
    from repro.exceptions import CheckpointError

    int64_max = np.iinfo(INT).max
    groups = {}
    for flag, per_vertex in ((True, state.canonical), (False, state.noncanonical)):
        for v, row in enumerate(per_vertex):
            rv = int(rank_of[v])
            for rank, _hub, dist, count in row:
                if count > int64_max:
                    raise CheckpointError(
                        "checkpointed count exceeds int64; resume this build "
                        "with the python engine"
                    )
                verts, dists, counts = groups.setdefault((rank, flag),
                                                         ([], [], []))
                verts.append(rv)
                dists.append(dist)
                counts.append(count)
    chunks = []
    for rank, flag in sorted(groups, key=lambda key: (key[0], not key[1])):
        verts, dists, counts = groups[(rank, flag)]
        chunks.append((
            rank,
            np.asarray(verts, dtype=INT),
            np.asarray(dists, dtype=INT),
            np.asarray(counts, dtype=INT),
            flag,
        ))
    if rows is not None:
        for rank, verts, dists, counts, flag in chunks:
            if not flag:
                continue
            # The join store never holds a root's self-entry (vert == rank).
            keep = verts != rank
            if keep.any():
                rows.append(verts[keep], rank, dists[keep])
    return chunks


def build_flat_labels_csr(
    graph,
    ordering="degree",
    multiplicity=None,
    skip=None,
    prune=True,
    stats=None,
    checkpoint=None,
):
    """Run HP-SPC with numpy kernels; returns a finalized :class:`FlatLabels`.

    Accepts the same knobs as :func:`repro.core.hp_spc.build_labels`
    (``multiplicity`` for the §4.2 equivalence reduction, ``skip`` for the
    §4.3 independent-set reduction, ``prune=False`` for PL-SPC-style
    labels, ``stats`` for construction counters) and produces bit-identical
    labels — same entries, same canonical/non-canonical split, same
    ``BuildStats`` counters. The ordering must be static (adaptive
    strategies raise :class:`~repro.exceptions.OrderingError`); counts are
    int64 and guarded against overflow (:class:`LabelingError` advises the
    Python engine when tripped).

    ``checkpoint`` (a :class:`~repro.io.checkpoint.BuildCheckpoint`)
    enables periodic rank-watermark persistence and resume, exactly as in
    :func:`repro.core.hp_spc.build_labels` — checkpoints are
    engine-neutral, so either engine can resume the other's.
    """
    n = graph.n
    registry = get_registry()
    tracer = get_tracer()
    metered = registry.enabled
    traced = tracer.enabled
    if metered:
        build_start = perf_counter()
        push_hist = registry.histogram("spc_build_push_seconds", engine="csr")
        growth_hist = registry.histogram(
            "spc_build_entries_per_push", buckets=DEFAULT_SIZE_BUCKETS,
            engine="csr",
        )
    order = resolve_static_order(graph, ordering)
    order_np = np.asarray(order, dtype=INT) if n else np.empty(0, dtype=INT)

    rmult = None
    max_mult = 1
    if multiplicity is not None:
        mult = np.asarray(list(multiplicity), dtype=INT)
        if mult.shape != (n,):
            raise ValueError("multiplicity must have one entry per vertex")
        rmult = mult[order_np]
        max_mult = int(rmult.max()) if n else 1
    rskip = None
    if skip is not None:
        skip_arr = np.asarray(list(skip), dtype=np.bool_)
        if skip_arr.shape != (n,):
            raise ValueError("skip must have one entry per vertex")
        if skip_arr.any():
            rskip = skip_arr[order_np]

    rank_of = np.empty(n, dtype=INT)
    rank_of[order_np] = np.arange(n, dtype=INT)
    rindptr, rindices = _rank_space_csr(graph, order_np, rank_of)
    max_degree = int((rindptr[1:] - rindptr[:-1]).max()) if n else 0
    threshold = count_guard_threshold(max_degree, max_mult)
    if threshold < 1:
        raise LabelingError(
            "multiplicity too large for the int64 kernel guard; use the python engine"
        )
    exact_threshold = int(_FLOAT_EXACT) // (max_degree + 1)

    dist = np.full(n, -1, dtype=INT)
    count = np.zeros(n, dtype=INT)
    rows = _CanonicalRows(n) if prune else None
    rank_dist = np.full(n + 2, INF_SENT, dtype=INT) if prune else None
    chunks = []  # (rank, verts, dists, counts, canonical) in rank space
    one = np.ones(1, dtype=INT)

    start_rank = 0
    checkpoint_fp = None
    if checkpoint is not None:
        from repro.io.serialize import graph_fingerprint

        checkpoint_fp = graph_fingerprint(graph)
        state = checkpoint.load(graph=graph, order=list(order))
        if state is not None:
            start_rank = state.watermark
            chunks = _state_to_chunks(state, rank_of, rows)
            if stats is not None:
                stats.resumed_pushes += start_rank

    build_span = tracer.begin("build.csr", n=n) if traced else None
    try:
        for r in range(start_rank, n):
            if metered:
                push_start = perf_counter()
                push_entries = 0
            push_span = tracer.begin("hp_spc.push", rank=r) if traced else None
            if prune:
                root_ranks, root_dists = rows.row(r)
                if root_ranks.size:
                    rank_dist[root_ranks] = root_dists
            if stats is not None:
                stats.pushes += 1
                stats.visits += 1
            dist[r] = 0
            count[r] = 1
            root = np.array([r], dtype=INT)
            if rskip is None or not rskip[r]:
                # The root self-entry; like the scalar builder, it does not
                # count toward stats.label_entries.
                chunks.append((r, root, np.zeros(1, dtype=INT), one, True))
            visited = [root]
            frontier = root
            depth = 0
            while frontier.size:
                starts = rindptr[frontier]
                degrees = rindptr[frontier + 1] - starts
                neighbors = rindices[expand_ranges(starts, degrees)]
                fcount = count[frontier]
                if rmult is not None and depth > 0:
                    # forwarded = count(v) * mult(v) for v != w (Lemma 4.4);
                    # the guard threshold already folds max_mult in, so no
                    # wrap here.
                    fcount = fcount * rmult[frontier]
                forwarded = np.repeat(fcount, degrees)
                keep = neighbors > r  # the rank restriction: stay inside G_w
                neighbors = neighbors[keep]
                forwarded = forwarded[keep]
                open_mask = dist[neighbors] < 0
                neighbors = neighbors[open_mask]
                if neighbors.size == 0:
                    break
                _scatter_add_counts(count, neighbors, forwarded[open_mask], n,
                                    exact_threshold)
                new = np.unique(neighbors)
                depth += 1
                dist[new] = depth
                visited.append(new)
                if stats is not None:
                    stats.visits += new.size
                if int(count[new].max()) > threshold:
                    raise LabelingError(
                        "shortest-path count exceeds the int64 kernel guard; "
                        "use the python engine for this graph"
                    )
                if rskip is not None:
                    skip_mask = rskip[new]
                    skipped = new[skip_mask]
                    candidates = new[~skip_mask]
                else:
                    skipped = None
                    candidates = new
                if prune and candidates.size:
                    best, lengths = rows.gather_best(candidates, rank_dist)
                    if stats is not None:
                        stats.join_terms += int(lengths.sum())
                    pruned = best < depth
                    emit_can = candidates[best > depth]
                    emit_non = candidates[best == depth]
                    survivors = candidates[~pruned]
                    if stats is not None:
                        stats.prunes += int(pruned.sum())
                else:
                    emit_can = candidates
                    emit_non = candidates[:0]
                    survivors = candidates
                if emit_can.size:
                    chunks.append((r, emit_can,
                                   np.full(emit_can.size, depth, dtype=INT),
                                   count[emit_can], True))
                    if prune:
                        rows.append(emit_can, r, depth)
                if emit_non.size:
                    chunks.append((r, emit_non,
                                   np.full(emit_non.size, depth, dtype=INT),
                                   count[emit_non], False))
                if stats is not None:
                    stats.label_entries += emit_can.size + emit_non.size
                if metered:
                    push_entries += emit_can.size + emit_non.size
                frontier = survivors if skipped is None else np.concatenate(
                    (skipped, survivors)
                )
            for touched in visited:
                dist[touched] = -1
                count[touched] = 0
            if prune and root_ranks.size:
                rank_dist[root_ranks] = INF_SENT
            if metered:
                push_hist.observe(perf_counter() - push_start)
                growth_hist.observe(push_entries)
            if traced:
                tracer.end(push_span)
            if checkpoint is not None and checkpoint.should_save(r + 1, n):
                canonical_lists, noncanonical_lists = _chunks_to_label_lists(
                    n, order_np, chunks
                )
                checkpoint.save(list(order), r + 1, canonical_lists,
                                noncanonical_lists, fingerprint=checkpoint_fp)
                if stats is not None:
                    stats.checkpoint_saves += 1
                if metered:
                    registry.counter("spc_checkpoint_saves_total").inc()

        if checkpoint is not None:
            checkpoint.discard()
        with tracer.span("build.finalize", engine="csr"):
            flat = _finalize_flat(n, order_np, chunks)
    finally:
        if traced:
            tracer.end(build_span)
    if metered:
        total_entries = int(flat.indptr[n]) if n else 0
        registry.counter("spc_build_pushes_total", engine="csr").inc(
            n - start_rank
        )
        registry.counter("spc_build_label_entries_total", engine="csr").inc(
            total_entries
        )
        if start_rank:
            registry.counter(
                "spc_build_resumed_pushes_total", engine="csr"
            ).inc(start_rank)
        registry.gauge("spc_label_total_entries", engine="csr").set(
            total_entries
        )
        registry.gauge("spc_label_avg_size", engine="csr").set(
            total_entries / n if n else 0.0
        )
        registry.histogram("spc_build_seconds", engine="csr").observe(
            perf_counter() - build_start
        )
    return flat


def push_block_csr(rindptr, rindices, block_ranks):
    """Phase-1 candidate generation for one worker block (rank space).

    The vectorized counterpart of the deque loop in
    :mod:`repro.parallel.builder`: for each root rank in ``block_ranks``
    (increasing), run the rank-restricted sweep pruning against
    *block-local* candidate labels only, and collect every surviving
    ``(vertex, dist, count)``. Returns a list of
    ``(rank, verts, dists, counts, visits)`` with arrays in rank space.
    """
    n = rindptr.size - 1
    rows = _CanonicalRows(n)
    rank_dist = np.full(n + 2, INF_SENT, dtype=INT)
    dist = np.full(n, -1, dtype=INT)
    count = np.zeros(n, dtype=INT)
    max_degree = int((rindptr[1:] - rindptr[:-1]).max()) if n else 0
    threshold = count_guard_threshold(max_degree)
    exact_threshold = int(_FLOAT_EXACT) // (max_degree + 1)
    out = []
    empty = np.empty(0, dtype=INT)

    for r in block_ranks:
        root_ranks, root_dists = rows.row(r)
        if root_ranks.size:
            rank_dist[root_ranks] = root_dists
        dist[r] = 0
        count[r] = 1
        root = np.array([r], dtype=INT)
        visited = [root]
        frontier = root
        cand_verts, cand_dists, cand_counts = [], [], []
        visits = 1
        depth = 0
        while frontier.size:
            starts = rindptr[frontier]
            degrees = rindptr[frontier + 1] - starts
            neighbors = rindices[expand_ranges(starts, degrees)]
            forwarded = np.repeat(count[frontier], degrees)
            keep = neighbors > r
            neighbors = neighbors[keep]
            forwarded = forwarded[keep]
            open_mask = dist[neighbors] < 0
            neighbors = neighbors[open_mask]
            if neighbors.size == 0:
                break
            _scatter_add_counts(count, neighbors, forwarded[open_mask], n,
                                exact_threshold)
            new = np.unique(neighbors)
            depth += 1
            dist[new] = depth
            visited.append(new)
            visits += new.size
            if int(count[new].max()) > threshold:
                raise LabelingError(
                    "shortest-path count exceeds the int64 kernel guard; "
                    "use the python engine for this graph"
                )
            best, _ = rows.gather_best(new, rank_dist)
            kept = new[best >= depth]  # a block-local prune is always sound
            if kept.size:
                cand_verts.append(kept)
                cand_dists.append(np.full(kept.size, depth, dtype=INT))
                cand_counts.append(count[kept])
                rows.append(kept, r, depth)  # every candidate joins later pruning
            frontier = kept
        for touched in visited:
            dist[touched] = -1
            count[touched] = 0
        if root_ranks.size:
            rank_dist[root_ranks] = INF_SENT
        out.append((
            r,
            np.concatenate(cand_verts) if cand_verts else empty,
            np.concatenate(cand_dists) if cand_dists else empty,
            np.concatenate(cand_counts) if cand_counts else empty,
            visits,
        ))
    return out


def merge_candidates_csr(n, order_np, candidates_by_rank, stats=None):
    """Phase-2: replay the pruning joins in rank order, vectorized per push.

    ``candidates_by_rank[r]`` is ``(verts, dists, counts)`` in rank space
    (any order within a push — the stable finalize sorts rows by vertex).
    One batched join classifies a whole push's candidates at once; appends
    happen in the same rank order as the scalar merge, so the result is
    entry-for-entry identical. Returns a :class:`FlatLabels`.
    """
    rows = _CanonicalRows(n)
    rank_dist = np.full(n + 2, INF_SENT, dtype=INT)
    chunks = []
    zero = np.zeros(1, dtype=INT)
    one = np.ones(1, dtype=INT)
    for r in range(n):
        if stats is not None:
            stats.pushes += 1
        root_ranks, root_dists = rows.row(r)
        if root_ranks.size:
            rank_dist[root_ranks] = root_dists
        chunks.append((r, np.array([r], dtype=INT), zero, one, True))
        if stats is not None:
            stats.label_entries += 1  # the scalar merge counts the self-entry
        verts, dists, counts = candidates_by_rank[r]
        if verts.size:
            best, lengths = rows.gather_best(verts, rank_dist)
            if stats is not None:
                stats.join_terms += int(lengths.sum())
            canonical_mask = best > dists
            noncanonical_mask = best == dists
            emit_can = verts[canonical_mask]
            emit_non = verts[noncanonical_mask]
            if stats is not None:
                stats.prunes += int((best < dists).sum())
                stats.label_entries += emit_can.size + emit_non.size
            if emit_can.size:
                can_dists = dists[canonical_mask]
                chunks.append((r, emit_can, can_dists, counts[canonical_mask], True))
                rows.append(emit_can, r, can_dists)
            if emit_non.size:
                chunks.append((r, emit_non, dists[noncanonical_mask],
                               counts[noncanonical_mask], False))
        if root_ranks.size:
            rank_dist[root_ranks] = INF_SENT
    return _finalize_flat(n, order_np, chunks)
