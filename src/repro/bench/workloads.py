"""Query workloads for the experiments (the paper uses random pairs)."""

from repro.utils.rng import ensure_rng


def query_workload(n, queries=1000, seed=0, distinct=False):
    """``queries`` uniform random (s, t) pairs over ``range(n)``.

    The paper evaluates 1,000,000 random queries per graph; the harness
    default is scaled to the synthetic analogs but keeps the same uniform
    distribution.
    """
    rng = ensure_rng(seed)
    pairs = []
    for _ in range(queries):
        s = rng.randrange(n)
        t = rng.randrange(n)
        while distinct and t == s and n > 1:
            t = rng.randrange(n)
        pairs.append((s, t))
    return pairs


def stratified_query_workload(graph, per_bucket=100, seed=0, max_sources=64):
    """Pairs grouped by shortest distance: ``{distance: [(s, t), ...]}``.

    The paper reports a single average query time; stratifying by pair
    distance shows *where* the time goes (nearby pairs meet at low-rank
    hubs early; distant pairs scan further). BFS from sampled sources
    buckets candidate targets by distance, then each bucket is sampled
    down to ``per_bucket`` pairs.
    """
    from repro.graph.traversal import bfs_distances

    rng = ensure_rng(seed)
    n = graph.n
    if n == 0:
        return {}
    if n <= max_sources:
        sources = list(graph.vertices())
    else:
        sources = [rng.randrange(n) for _ in range(max_sources)]
    buckets = {}
    for s in sources:
        dist = bfs_distances(graph, s)
        for t, d in enumerate(dist):
            if t != s and d != float("inf"):
                buckets.setdefault(d, []).append((s, t))
    out = {}
    for d, pairs in sorted(buckets.items()):
        if len(pairs) > per_bucket:
            pairs = rng.sample(pairs, per_bucket)
        out[d] = pairs
    return out


def group_workload(n, groups=20, group_size=4, seed=0, exclude=()):
    """Random vertex groups for the group-betweenness experiments."""
    rng = ensure_rng(seed)
    pool = [v for v in range(n) if v not in set(exclude)]
    if group_size > len(pool):
        raise ValueError("group_size exceeds available vertices")
    return [sorted(rng.sample(pool, group_size)) for _ in range(groups)]
