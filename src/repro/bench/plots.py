"""Terminal renderings of the paper's figures.

The evaluation figures are grouped bar charts (Figures 5-9) and CDFs
(Figure 10). The harness renders them as aligned ASCII bars so a report
reader can see the *shape* — who wins, by how much — without a plotting
stack. Log-scale bars are used where the paper's axes are log-scale.
"""

import math

FULL_BLOCK = "█"
HALF_BLOCK = "▌"


def _bar(value, maximum, width, log_scale):
    if value <= 0 or maximum <= 0:
        return ""
    if log_scale:
        # Map [1, max] logarithmically onto the width; values below 1
        # still get a sliver so they are visible.
        span = math.log10(max(maximum, 10))
        fraction = max(0.0, math.log10(max(value, 1.0))) / span
    else:
        fraction = value / maximum
    cells = fraction * width
    whole = int(cells)
    text = FULL_BLOCK * whole
    if cells - whole >= 0.5:
        text += HALF_BLOCK
    return text or HALF_BLOCK


def bar_chart(rows, label_key, series, title=None, width=40, log_scale=False,
              value_format=".1f"):
    """Render a grouped bar chart.

    ``rows`` are dicts; ``label_key`` names the group label column and
    ``series`` is a list of ``(key, series_name)`` pairs — one bar per
    series within each group, mirroring the paper's grouped bars.
    """
    lines = []
    if title:
        lines.append(title)
    values = [row.get(key, 0) or 0 for row in rows for key, _ in series]
    maximum = max(values, default=0)
    label_width = max(
        [len(str(row.get(label_key, ""))) for row in rows]
        + [len(name) for _, name in series]
        + [1]
    )
    for row in rows:
        label = str(row.get(label_key, ""))
        for index, (key, name) in enumerate(series):
            value = row.get(key, 0) or 0
            head = label if index == 0 else ""
            bar = _bar(value, maximum, width, log_scale)
            lines.append(
                f"{head:<{label_width}} {name:<12} {bar} {format(value, value_format)}"
            )
        if len(series) > 1:
            lines.append("")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def cdf_chart(values, title=None, width=50, height=10):
    """Render an empirical CDF as a coarse ASCII curve (Figure 10 style).

    The x axis spans the observed value range (log2 buckets, like the
    paper's axis); each row prints the fraction of observations at or
    below the bucket's upper edge.
    """
    from repro.utils.stats import cumulative_distribution

    xs, fs = cumulative_distribution(values)
    lines = []
    if title:
        lines.append(title)
    if not xs:
        lines.append("(no data)")
        return "\n".join(lines)
    low = max(1, min(xs))
    high = max(xs)
    buckets = []
    edge = low
    while edge < high:
        edge *= 2
        buckets.append(edge)
    if not buckets:
        buckets = [high]
    for edge in buckets:
        fraction = 0.0
        for x, f in zip(xs, fs):
            if x <= edge:
                fraction = f
            else:
                break
        bar = FULL_BLOCK * int(round(fraction * width))
        lines.append(f"|L| <= {edge:>8}  {bar:<{width}} {fraction:6.1%}")
    return "\n".join(lines)
