"""Experiment harness: workloads, drivers for every table/figure, reporting."""

from repro.bench.harness import (
    QueryTiming,
    attach_metrics,
    compare_builders,
    compare_engines,
    format_table,
    time_batched_queries,
    time_construction,
    time_queries,
)
from repro.bench.workloads import query_workload

__all__ = [
    "QueryTiming",
    "attach_metrics",
    "compare_builders",
    "compare_engines",
    "format_table",
    "time_batched_queries",
    "time_construction",
    "time_queries",
    "query_workload",
]
