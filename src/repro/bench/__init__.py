"""Experiment harness: workloads, drivers for every table/figure, reporting."""

from repro.bench.harness import format_table, time_queries
from repro.bench.workloads import query_workload

__all__ = ["format_table", "time_queries", "query_workload"]
