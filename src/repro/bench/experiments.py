"""Drivers for every table and figure of the paper's evaluation (§6).

Each ``exp_*`` function builds whatever it measures and returns plain
dict rows, so the pytest benchmarks, the ``run_all`` report writer and ad
hoc scripts share one implementation. Absolute numbers are not expected
to match the paper (synthetic analogs, pure Python); the *shape* — which
variant wins, reduction ratios, ratio percentiles — is the reproduction
target and is what EXPERIMENTS.md compares.
"""

import time

from repro.baselines.bfs_counting import BFSCountingOracle
from repro.baselines.pl_spc import PLSPCIndex
from repro.bench.harness import time_queries
from repro.bench.workloads import group_workload, query_workload
from repro.core.hp_spc import build_labels
from repro.core.index import SPCIndex
from repro.datasets.registry import dataset_notations, load_dataset, load_delaunay, paper_stats
from repro.reductions.pipeline import ReducedSPCIndex, reduction_report
from repro.theory.planar_order import planar_separator_order
from repro.utils.rng import ensure_rng
from repro.utils.stats import percentile

INF = float("inf")

HP_SPC = ()
HP_SPC_PLUS = ("shell", "equivalence")
HP_SPC_STAR = ("shell", "equivalence", "independent-set")


def _build(graph, ordering, reductions, scheme="filtered"):
    """Build the requested paper variant, timing construction."""
    if reductions:
        return ReducedSPCIndex.build(
            graph, ordering=ordering, reductions=reductions, scheme=scheme
        )
    return SPCIndex.build(graph, ordering=ordering)


def exp_table3(scale=1.0, queries=200, seed=0):
    """Table 3: dataset statistics plus average online-BFS query time."""
    rows = []
    for notation in dataset_notations():
        graph = load_dataset(notation, scale=scale)
        oracle = BFSCountingOracle(graph)
        pairs = query_workload(graph.n, queries, seed=seed)
        avg_seconds, _ = time_queries(oracle, pairs)
        paper_n, paper_m, paper_bfs = paper_stats(notation)
        rows.append(
            {
                "dataset": notation,
                "n": graph.n,
                "m": graph.m,
                "bfs_ms": avg_seconds * 1e3,
                "paper_n": paper_n,
                "paper_m": paper_m,
                "paper_bfs_ms": paper_bfs,
            }
        )
    return rows


def exp1_ordering(scale=1.0, queries=500, seed=0, notations=None):
    """Exp-1 / Figure 5: HP-SPC+ under degree vs significant-path orders."""
    rows = []
    for notation in notations or dataset_notations():
        graph = load_dataset(notation, scale=scale)
        pairs = query_workload(graph.n, queries, seed=seed)
        row = {"dataset": notation, "n": graph.n, "m": graph.m}
        for key, ordering in (("D", "degree"), ("S", "significant-path")):
            index = _build(graph, ordering, HP_SPC_PLUS)
            avg_seconds, _ = time_queries(index, pairs)
            row[f"index_s_{key}"] = index.build_seconds
            row[f"size_bytes_{key}"] = index.size_bytes()
            row[f"query_us_{key}"] = avg_seconds * 1e6
        rows.append(row)
    return rows


def exp2_performance(scale=1.0, queries=500, seed=0, notations=None):
    """Exp-2 / Figure 6: HP-SPC_S vs HP-SPC+_S vs HP-SPC*_S (+ HP-SPC*_D)."""
    variants = (
        ("HP-SPC_S", "significant-path", HP_SPC, "filtered"),
        ("HP-SPC+_S", "significant-path", HP_SPC_PLUS, "filtered"),
        ("HP-SPC*_S", "significant-path", HP_SPC_STAR, "filtered"),
        ("HP-SPC*_D", "degree", HP_SPC_STAR, "filtered"),
    )
    rows = []
    for notation in notations or dataset_notations():
        graph = load_dataset(notation, scale=scale)
        pairs = query_workload(graph.n, queries, seed=seed)
        for label, ordering, reductions, scheme in variants:
            index = _build(graph, ordering, reductions, scheme)
            avg_seconds, _ = time_queries(index, pairs)
            rows.append(
                {
                    "dataset": notation,
                    "variant": label,
                    "index_s": index.build_seconds,
                    "size_bytes": index.size_bytes(),
                    "entries": index.total_entries(),
                    "query_us": avg_seconds * 1e6,
                }
            )
    return rows


def exp3_query_schemes(scale=1.0, queries=500, seed=0, notations=None):
    """Exp-3 / Figure 7: filtered vs direct query schemes of HP-SPC*_S."""
    rows = []
    for notation in notations or dataset_notations():
        graph = load_dataset(notation, scale=scale)
        pairs = query_workload(graph.n, queries, seed=seed)
        index = _build(graph, "significant-path", HP_SPC_STAR, "filtered")
        filtered_seconds, _ = time_queries(index, pairs)
        direct_seconds, _ = time_queries(index.with_scheme("direct"), pairs)
        rows.append(
            {
                "dataset": notation,
                "filtered_us": filtered_seconds * 1e6,
                "direct_us": direct_seconds * 1e6,
                "reduction_pct": 100.0 * (1.0 - filtered_seconds / direct_seconds),
            }
        )
    return rows


def exp4_reductions(scale=1.0, notations=None):
    """Exp-4 / Figure 8: vertices removed by shell / equiv / shell+equiv."""
    rows = []
    for notation in notations or dataset_notations():
        graph = load_dataset(notation, scale=scale)
        report = reduction_report(graph)
        report["dataset"] = notation
        rows.append(report)
    return rows


#: Table 4's 90th percentile and maximum, as printed in the paper.
PAPER_TABLE4_TAIL = {
    "FB": (3.10, 49.67), "GW": (3.00, 742.00), "WI": (3.39, 457.00),
    "GO": (1.36, 7645.84), "DB": (2.67, 45.33), "BE": (1.69, 346.00),
    "YT": (6.78, 4735.00), "PE": (7.79, 468.36), "FL": (5.11, 885.50),
    "IN": (18.33, 48451.00),
}


def exp5_labels(scale=1.0, queries=2000, seed=0, notations=None):
    """Exp-5: Figure 9 (|L^c| vs |L^nc|), Table 4 (approximation ratio
    percentiles), Figure 10 (label size distribution).

    The ratio/table-4 part runs the *plain* HP-SPC labels (the paper
    computes spc_approx from L^c alone) so exact and approximate counts
    come from the same labeling.
    """
    figure9 = []
    table4 = []
    figure10 = []
    histograms = {}
    for notation in notations or dataset_notations():
        graph = load_dataset(notation, scale=scale)
        reduced = _build(graph, "significant-path", HP_SPC_PLUS)
        figure9.append(
            {
                "dataset": notation,
                "canonical": reduced.labels.canonical_size(),
                "noncanonical": reduced.labels.noncanonical_size(),
                "ratio": (
                    reduced.labels.noncanonical_size()
                    / max(1, reduced.labels.canonical_size())
                ),
            }
        )
        plain = SPCIndex.build(graph, ordering="significant-path")
        ratios = []
        for s, t in query_workload(graph.n, queries, seed=seed):
            dist, exact = plain.count_with_distance(s, t)
            if exact == 0:
                continue
            approx = plain.count_approximate(s, t)
            ratios.append(exact / approx if approx else INF)
        row = {"dataset": notation}
        for q in (40, 50, 60, 70, 80, 90):
            row[f"p{q}"] = percentile(ratios, q)
        row["max"] = max(ratios)
        paper_p90, paper_max = PAPER_TABLE4_TAIL.get(notation, ("", ""))
        row["paper_p90"] = paper_p90
        row["paper_max"] = paper_max
        table4.append(row)
        sizes = plain.labels.size_histogram()
        histograms[notation] = sizes
        figure10.append(
            {
                "dataset": notation,
                "min": min(sizes),
                "p25": percentile(sizes, 25),
                "p50": percentile(sizes, 50),
                "p75": percentile(sizes, 75),
                "max": max(sizes),
            }
        )
    return {
        "figure9": figure9,
        "table4": table4,
        "figure10": figure10,
        "histograms": histograms,
    }


#: Table 5 as printed in the paper (hours, GB, microseconds).
PAPER_TABLE5 = {
    "PL-SPC": (0.59, 131.50, 94.10),
    "HP-SPC_P": (7.06, 51.64, 54.23),
    "HP-SPC_D": (0.72, 14.44, 25.63),
    "HP-SPC_S": (1.02, 23.04, 39.22),
}


def exp6_planar(n=350, queries=500, seed=0):
    """Exp-6 / Table 5: PL-SPC vs HP-SPC_P vs HP-SPC_D vs HP-SPC_S on Delaunay.

    Sizes use the paper's wide Exp-6 packing (32+32+128 bits per entry);
    the paper's own Table 5 values ride along for side-by-side reporting.
    """
    graph, points = load_delaunay(n=n, seed=20)
    pairs = query_workload(graph.n, queries, seed=seed)
    order, tree = planar_separator_order(graph, points=points, return_tree=True)
    rows = []

    pl = PLSPCIndex.build(graph, order=order)
    avg, _ = time_queries(pl, pairs)
    rows.append(
        {
            "variant": "PL-SPC",
            "index_s": pl.build_seconds,
            "size_bytes": pl.size_bytes(192),
            "entries": pl.total_entries(),
            "query_us": avg * 1e6,
        }
    )
    for label, ordering in (
        ("HP-SPC_P", list(order)),
        ("HP-SPC_D", "degree"),
        ("HP-SPC_S", "significant-path"),
    ):
        index = SPCIndex.build(graph, ordering=ordering)
        avg, _ = time_queries(index, pairs)
        rows.append(
            {
                "variant": label,
                "index_s": index.build_seconds,
                "size_bytes": index.size_bytes(192),
                "entries": index.total_entries(),
                "query_us": avg * 1e6,
            }
        )
    for row in rows:
        hours, gigabytes, micros = PAPER_TABLE5[row["variant"]]
        row["paper_hr"] = hours
        row["paper_gb"] = gigabytes
        row["paper_us"] = micros
    return rows


def exp_theory_bounds(seed=0):
    """§5 checks: measured label sizes vs the (α, β) bounds per theorem."""
    import math

    from repro.generators.classic import random_tree
    from repro.generators.planar import triangular_lattice
    from repro.graph.traversal import approximate_diameter
    from repro.theory.bounds import boundedness, highway_bound, planar_bound, treewidth_bound
    from repro.theory.highway import highway_order
    from repro.theory.treewidth import centroid_order, min_degree_decomposition

    rows = []
    # Theorem 5.1 — planar.
    graph, points = triangular_lattice(14, 14)
    order = planar_separator_order(graph, points=points)
    labels = build_labels(graph, ordering=order)
    total, biggest = boundedness(labels)
    alpha, beta = planar_bound(graph.n)
    rows.append(
        {
            "theorem": "5.1 planar",
            "n": graph.n,
            "total": total,
            "max": biggest,
            "alpha": round(alpha),
            "beta": round(beta, 1),
        }
    )
    # Theorem 5.2 — treewidth (a tree: ω = 1).
    graph = random_tree(256, seed=seed)
    decomposition = min_degree_decomposition(graph)
    order, width = centroid_order(graph, decomposition)
    labels = build_labels(graph, ordering=order)
    total, biggest = boundedness(labels)
    alpha, beta = treewidth_bound(graph.n, width)
    rows.append(
        {
            "theorem": "5.2 treewidth",
            "n": graph.n,
            "total": total,
            "max": biggest,
            "alpha": round(alpha),
            "beta": round(beta, 1),
        }
    )
    # Theorem 5.3 — highway dimension (grid-like road analog).
    graph, _ = triangular_lattice(12, 12)
    order = highway_order(graph, seed=seed)
    labels = build_labels(graph, ordering=order)
    total, biggest = boundedness(labels)
    diameter = approximate_diameter(graph)
    beta_meas = biggest / max(1.0, math.log2(max(2, diameter)))
    rows.append(
        {
            "theorem": "5.3 highway",
            "n": graph.n,
            "total": total,
            "max": biggest,
            "alpha": "h*n*logD",
            "beta": f"h≈{beta_meas:.1f}",
        }
    )
    return rows


def exp_directed(n=150, queries=300, seed=0):
    """§7: directed index vs online Dijkstra on a random weighted digraph."""
    import random as random_module

    from repro.directed.index import DirectedSPCIndex
    from repro.graph.digraph import WeightedDigraph
    from repro.graph.traversal import spc_dijkstra

    rng = random_module.Random(seed)
    edges = [
        (u, v, rng.choice((1, 2, 3)))
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < 6.0 / n
    ]
    digraph = WeightedDigraph.from_edges(n, edges)
    pairs = query_workload(n, queries, seed=seed)
    rows = []
    for label, reductions in (
        ("HP-SPC-Dij", ()),
        ("HP-SPC-Dij*", ("shell", "equivalence", "independent-set")),
    ):
        index = DirectedSPCIndex.build(digraph, reductions=reductions)
        avg, _ = time_queries(index, pairs)
        rows.append(
            {
                "variant": label,
                "index_s": index.build_seconds,
                "entries": index.total_entries(),
                "query_us": avg * 1e6,
            }
        )
    started = time.perf_counter()
    for s, t in pairs:
        spc_dijkstra(digraph, s, t)
    dijkstra_avg = (time.perf_counter() - started) / len(pairs)
    rows.append(
        {"variant": "Dijkstra (online)", "index_s": 0.0, "entries": 0,
         "query_us": dijkstra_avg * 1e6}
    )
    return rows


def exp_ablations(scale=0.5, queries=300, seed=0):
    """Design-choice ablations (DESIGN.md): pruning, ordering, reduction
    composition order, and the §6 future-work L^nc budget curve."""
    import random as random_module

    from repro.core.approx import accuracy_curve
    from repro.reductions.equivalence import EquivalenceReduction
    from repro.reductions.shell import ShellReduction

    rows = {"pruning": [], "ordering": [], "reduction_order": [], "budget": []}

    social = load_dataset("FB", scale=scale)
    for label, prune in (("with pruning joins", True), ("without (PL-SPC style)", False)):
        started = time.perf_counter()
        labels = build_labels(social, ordering="degree", prune=prune)
        rows["pruning"].append(
            {
                "config": label,
                "build_s": time.perf_counter() - started,
                "entries": labels.total_entries(),
            }
        )

    random_order = list(social.vertices())
    random_module.Random(13).shuffle(random_order)
    for label, spec in (
        ("random", random_order),
        ("degree", "degree"),
        ("betweenness", "betweenness"),
        ("significant-path", "significant-path"),
    ):
        started = time.perf_counter()
        labels = build_labels(social, ordering=spec)
        rows["ordering"].append(
            {
                "config": label,
                "build_s": time.perf_counter() - started,
                "entries": labels.total_entries(),
            }
        )

    web = load_dataset("IN", scale=scale)
    shell_first = ShellReduction.compute(web)
    removed_a = shell_first.removed_count + EquivalenceReduction.compute(
        shell_first.graph_reduced
    ).removed_count
    equiv_first = EquivalenceReduction.compute(web)
    removed_b = equiv_first.removed_count + ShellReduction.compute(
        equiv_first.graph_reduced
    ).removed_count
    rows["reduction_order"] = [
        {"config": "shell then equivalence", "removed": removed_a,
         "fraction": removed_a / web.n},
        {"config": "equivalence then shell", "removed": removed_b,
         "fraction": removed_b / web.n},
    ]

    labels = build_labels(social, ordering="significant-path")
    pairs = query_workload(social.n, queries, seed=seed)
    for row in accuracy_curve(labels, pairs, budgets=[0, 1, 2, 4, 8, None]):
        rows["budget"].append(
            {
                "config": "full L^nc" if row["budget"] is None else f"budget {row['budget']}",
                "entries": row["entries"],
                "exact_pct": 100.0 * row["exact_fraction"],
                "mean_ratio": row["mean_ratio"],
            }
        )
    return rows


def exp_applications(scale=0.5, groups=10, group_size=4, pair_count=300, seed=0):
    """§1 application: GBC pair-matrix construction via oracle vs BFS."""
    from repro.applications.group_betweenness import (
        GroupBetweennessEvaluator,
        group_betweenness_exact,
    )

    graph = load_dataset("FB", scale=scale)
    rng = ensure_rng(seed)
    pairs = [
        (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(pair_count)
    ]
    group_list = group_workload(graph.n, groups=groups, group_size=group_size, seed=seed)
    rows = []

    index = ReducedSPCIndex.build(graph, ordering="significant-path", reductions=HP_SPC_PLUS)
    evaluator = GroupBetweennessEvaluator(index, pairs)
    started = time.perf_counter()
    oracle_scores = [evaluator.evaluate(group) for group in group_list]
    oracle_seconds = time.perf_counter() - started
    rows.append(
        {
            "method": "hub-labeling oracle",
            "setup_s": index.build_seconds,
            "eval_s": oracle_seconds,
            "score_sum": sum(oracle_scores),
        }
    )

    started = time.perf_counter()
    exact_scores = [group_betweenness_exact(graph, group, pairs) for group in group_list]
    exact_seconds = time.perf_counter() - started
    rows.append(
        {
            "method": "BFS (exact baseline)",
            "setup_s": 0.0,
            "eval_s": exact_seconds,
            "score_sum": sum(exact_scores),
        }
    )
    return rows
