"""Benchmark plumbing: query timing and plain-text table rendering."""

import time


def time_queries(oracle, pairs, repeat=1):
    """Average seconds per ``count_with_distance`` query over ``pairs``.

    ``repeat`` replays the workload to smooth out timer noise on small
    pair sets. Returns ``(avg_seconds, total_queries)``.
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("empty query workload")
    query = oracle.count_with_distance
    started = time.perf_counter()
    for _ in range(repeat):
        for s, t in pairs:
            query(s, t)
    elapsed = time.perf_counter() - started
    total = repeat * len(pairs)
    return elapsed / total, total


def time_batched_queries(flat, pairs, repeat=1):
    """Average seconds per query through the flat batched engine.

    Answers the whole workload with one
    :func:`repro.core.batch_query.count_many_arrays` call per repeat.
    Returns ``(avg_seconds, total_queries)`` like :func:`time_queries`.
    """
    import numpy as np

    from repro.core.batch_query import count_many_arrays

    pairs = list(pairs)
    if not pairs:
        raise ValueError("empty query workload")
    sources = np.fromiter((s for s, _ in pairs), dtype=np.int64, count=len(pairs))
    targets = np.fromiter((t for _, t in pairs), dtype=np.int64, count=len(pairs))
    started = time.perf_counter()
    for _ in range(repeat):
        count_many_arrays(flat, sources, targets)
    elapsed = time.perf_counter() - started
    total = repeat * len(pairs)
    return elapsed / total, total


def compare_engines(index, pairs, repeat=1):
    """Time the python and flat engines on one workload.

    Returns a dict with per-query seconds for both engines and the
    flat-over-python ``speedup`` (>1 means the flat engine is faster).
    """
    python_avg, total = time_queries(index, pairs, repeat=repeat)
    flat_avg, _ = time_batched_queries(index.to_flat(), pairs, repeat=repeat)
    return {
        "queries": total,
        "python_us_per_query": python_avg * 1e6,
        "flat_us_per_query": flat_avg * 1e6,
        "speedup": (python_avg / flat_avg) if flat_avg > 0 else float("inf"),
    }


def format_table(rows, columns, title=None):
    """Render dict rows as an aligned text table (harness stdout format).

    ``columns`` is a list of ``(key, header, format_spec)``; format_spec
    may be ``None`` for plain ``str``.
    """
    headers = [header for _, header, _ in columns]
    rendered = []
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else str(value))
        rendered.append(cells)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def markdown_table(rows, columns, title=None):
    """Render dict rows as a GitHub-flavored markdown table."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(header for _, header, _ in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
