"""Benchmark plumbing: query timing and plain-text table rendering."""

import time


def time_queries(oracle, pairs, repeat=1):
    """Average seconds per ``count_with_distance`` query over ``pairs``.

    ``repeat`` replays the workload to smooth out timer noise on small
    pair sets. Returns ``(avg_seconds, total_queries)``.
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("empty query workload")
    query = oracle.count_with_distance
    started = time.perf_counter()
    for _ in range(repeat):
        for s, t in pairs:
            query(s, t)
    elapsed = time.perf_counter() - started
    total = repeat * len(pairs)
    return elapsed / total, total


def format_table(rows, columns, title=None):
    """Render dict rows as an aligned text table (harness stdout format).

    ``columns`` is a list of ``(key, header, format_spec)``; format_spec
    may be ``None`` for plain ``str``.
    """
    headers = [header for _, header, _ in columns]
    rendered = []
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else str(value))
        rendered.append(cells)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def markdown_table(rows, columns, title=None):
    """Render dict rows as a GitHub-flavored markdown table."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(header for _, header, _ in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
