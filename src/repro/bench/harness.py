"""Benchmark plumbing: query/construction timing and plain-text tables.

Timing methodology: every timer here reports the **best of ``repeat``**
runs, not the mean over runs. A run can only be slowed down by noise
(scheduler preemption, cache pollution, GC), never sped up, so the
minimum is the best estimator of the workload's intrinsic cost and it
stabilizes far faster than the mean. Per-query p50/p95 come from the
best run so the percentiles describe latency spread, not machine noise.
"""

import time


def _percentile(sorted_values, q):
    """Linear-interpolated quantile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    position = (len(sorted_values) - 1) * q
    lo = int(position)
    hi = min(lo + 1, len(sorted_values) - 1)
    fraction = position - lo
    return sorted_values[lo] * (1.0 - fraction) + sorted_values[hi] * fraction


class QueryTiming:
    """Result of a query-timing run.

    Unpacks as the legacy ``(seconds_per_query, queries)`` 2-tuple —
    ``avg, total = time_queries(...)`` keeps working — and additionally
    carries best-of-repeat and percentile detail:

    * ``seconds_per_query`` — best run's total / queries per run
    * ``queries`` — total queries executed (``repeat * len(pairs)``)
    * ``p50_seconds`` / ``p95_seconds`` — per-query latency percentiles
      within the best run (for the batched engine these describe
      run-level variation instead; see :func:`time_batched_queries`)
    * ``repeats`` — number of runs timed
    * ``best_run_seconds`` — wall time of the fastest run
    """

    __slots__ = ("seconds_per_query", "queries", "p50_seconds", "p95_seconds",
                 "repeats", "best_run_seconds")

    def __init__(self, seconds_per_query, queries, p50_seconds, p95_seconds,
                 repeats, best_run_seconds):
        self.seconds_per_query = seconds_per_query
        self.queries = queries
        self.p50_seconds = p50_seconds
        self.p95_seconds = p95_seconds
        self.repeats = repeats
        self.best_run_seconds = best_run_seconds

    def __iter__(self):
        return iter((self.seconds_per_query, self.queries))

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (f"QueryTiming({self.seconds_per_query * 1e6:.2f} us/query, "
                f"p95={self.p95_seconds * 1e6:.2f} us, "
                f"queries={self.queries}, repeats={self.repeats})")


def time_queries(oracle, pairs, repeat=1):
    """Time ``count_with_distance`` per query; best of ``repeat`` runs.

    Each query is clocked individually so the returned
    :class:`QueryTiming` carries per-query p50/p95 from the fastest run
    (the per-call ``perf_counter`` overhead, ~100 ns, is included in all
    figures — negligible against the µs-scale label scans timed here).
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("empty query workload")
    query = oracle.count_with_distance
    clock = time.perf_counter
    best_durations = None
    best_total = float("inf")
    for _ in range(repeat):
        durations = []
        for s, t in pairs:
            started = clock()
            query(s, t)
            durations.append(clock() - started)
        run_total = sum(durations)
        if run_total < best_total:
            best_total = run_total
            best_durations = durations
    best_durations.sort()
    return QueryTiming(
        seconds_per_query=best_total / len(pairs),
        queries=repeat * len(pairs),
        p50_seconds=_percentile(best_durations, 0.50),
        p95_seconds=_percentile(best_durations, 0.95),
        repeats=repeat,
        best_run_seconds=best_total,
    )


def time_batched_queries(flat, pairs, repeat=1):
    """Time the flat batched engine; best of ``repeat`` runs.

    The whole workload is answered by one
    :func:`repro.core.batch_query.count_many_arrays` call per run, so
    individual queries cannot be clocked: ``p50_seconds``/``p95_seconds``
    are percentiles of the per-run *average* across runs (run-to-run
    noise), not per-query latency. With ``repeat=1`` all three figures
    coincide.
    """
    import numpy as np

    from repro.core.batch_query import count_many_arrays

    pairs = list(pairs)
    if not pairs:
        raise ValueError("empty query workload")
    sources = np.fromiter((s for s, _ in pairs), dtype=np.int64, count=len(pairs))
    targets = np.fromiter((t for _, t in pairs), dtype=np.int64, count=len(pairs))
    run_averages = []
    for _ in range(repeat):
        started = time.perf_counter()
        count_many_arrays(flat, sources, targets)
        run_averages.append((time.perf_counter() - started) / len(pairs))
    run_averages.sort()
    best_average = run_averages[0]
    return QueryTiming(
        seconds_per_query=best_average,
        queries=repeat * len(pairs),
        p50_seconds=_percentile(run_averages, 0.50),
        p95_seconds=_percentile(run_averages, 0.95),
        repeats=repeat,
        best_run_seconds=best_average * len(pairs),
    )


def compare_engines(index, pairs, repeat=1):
    """Time the python and flat query engines on one workload.

    Returns a dict with per-query seconds for both engines (best of
    ``repeat``), their p95s, and the flat-over-python ``speedup``
    (>1 means the flat engine is faster).
    """
    python_timing = time_queries(index, pairs, repeat=repeat)
    flat_timing = time_batched_queries(index.to_flat(), pairs, repeat=repeat)
    python_avg = python_timing.seconds_per_query
    flat_avg = flat_timing.seconds_per_query
    return {
        "queries": python_timing.queries,
        "python_us_per_query": python_avg * 1e6,
        "python_p95_us": python_timing.p95_seconds * 1e6,
        "flat_us_per_query": flat_avg * 1e6,
        "flat_p95_us": flat_timing.p95_seconds * 1e6,
        "speedup": (python_avg / flat_avg) if flat_avg > 0 else float("inf"),
    }


def _timed_build(graph, engine, ordering, workers, repeat):
    """Best-of-repeat construction; returns ``(result_dict, last_index)``."""
    from repro.core.index import SPCIndex

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best_seconds = float("inf")
    index = None
    for _ in range(repeat):
        built = SPCIndex.build(graph, ordering=ordering, collect_stats=True,
                               workers=workers, engine=engine)
        if built.build_seconds < best_seconds:
            best_seconds = built.build_seconds
            index = built
    result = {
        "engine": engine,
        "ordering": ordering,
        "workers": workers,
        "repeats": repeat,
        "seconds": best_seconds,
        "entries": index.total_entries(),
        "build_stats": index.build_stats.as_dict(),
    }
    return result, index


def time_construction(graph, engine="python", ordering="degree", workers=1,
                      repeat=1):
    """Time index construction; best of ``repeat`` builds.

    Returns a dict with ``engine``/``ordering``/``workers``/``repeats``,
    the best build's wall ``seconds``, the labeling's ``entries``, and
    the :meth:`~repro.core.hp_spc.BuildStats.as_dict` counters of the
    fastest build (counters are deterministic, so every build agrees).
    """
    result, _ = _timed_build(graph, engine, ordering, workers, repeat)
    return result


def compare_builders(graph, engines=("python", "csr"), ordering="degree",
                     workers=1, repeat=1, check_identical=True):
    """Time several construction engines on one graph.

    Returns ``{"engines": {name: time_construction-dict}, "speedup",
    "identical"}`` where ``speedup`` is first engine's seconds over the
    last engine's (>1 means the last — conventionally ``csr`` — is
    faster) and ``identical`` reports whether all engines produced
    entry-for-entry equal labelings (``None`` when not checked).
    """
    engines = tuple(engines)
    if not engines:
        raise ValueError("need at least one engine")
    results = {}
    flats = []
    for engine in engines:
        result, index = _timed_build(graph, engine, ordering, workers, repeat)
        results[engine] = result
        if check_identical:
            flats.append(index.to_flat())
    identical = None
    if check_identical:
        identical = all(flats[0].equals(other) for other in flats[1:])
    first_seconds = results[engines[0]]["seconds"]
    last_seconds = results[engines[-1]]["seconds"]
    return {
        "engines": results,
        "speedup": (first_seconds / last_seconds) if last_seconds > 0
        else float("inf"),
        "identical": identical,
    }


def attach_metrics(payload, registry=None):
    """Embed a metric snapshot into a ``BENCH_*.json`` payload dict.

    When the (given or process-global) registry is enabled, sets
    ``payload["metrics"]`` to :func:`repro.observability.metrics.snapshot`
    so recorded bench runs carry the same counters and histograms an
    operator would scrape live. A disabled registry leaves the payload
    untouched — bench scripts can call this unconditionally. Returns the
    payload for chaining.
    """
    from repro.observability.metrics import get_registry, snapshot

    registry = registry if registry is not None else get_registry()
    if registry.enabled:
        payload["metrics"] = snapshot(registry)
    return payload


def format_table(rows, columns, title=None):
    """Render dict rows as an aligned text table (harness stdout format).

    ``columns`` is a list of ``(key, header, format_spec)``; format_spec
    may be ``None`` for plain ``str``.
    """
    headers = [header for _, header, _ in columns]
    rendered = []
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else str(value))
        rendered.append(cells)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def markdown_table(rows, columns, title=None):
    """Render dict rows as a GitHub-flavored markdown table."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(header for _, header, _ in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
