"""Typed exceptions raised across the library.

Every error the library raises deliberately derives from :class:`ReproError`
so callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Malformed graph input (bad vertex ids, self-loops where banned, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid for the graph."""

    def __init__(self, vertex, n):
        super().__init__(f"vertex {vertex!r} is not in range [0, {n})")
        self.vertex = vertex
        self.n = n


class OrderingError(ReproError):
    """A vertex ordering is not a permutation of the graph's vertices."""


class LabelingError(ReproError):
    """A labeling is inconsistent (violates ESPC or cover constraints)."""


class SerializationError(ReproError):
    """An index could not be encoded to / decoded from its binary form."""


class CountOverflowError(SerializationError):
    """A shortest-path count does not fit in the configured bit width.

    The paper caps 31-bit counts at ``2**31 - 1``; strict mode raises this
    instead of saturating.
    """

    def __init__(self, count, bits):
        super().__init__(f"count {count} does not fit in {bits} bits")
        self.count = count
        self.bits = bits


class CheckpointError(SerializationError):
    """A construction checkpoint is missing, corrupt, or inconsistent with
    the build it is being resumed into (wrong graph, wrong order)."""


class StaleIndexError(SerializationError):
    """A persisted index does not match the graph it is being served for.

    Raised when the stored graph fingerprint (n, m, degree hash) disagrees
    with the live graph — the index is from an older or different graph.
    """

    def __init__(self, expected, found, context="index"):
        super().__init__(
            f"{context}: graph fingerprint mismatch "
            f"(index built for {found}, graph is {expected})"
        )
        self.expected = expected
        self.found = found


class ParallelBuildError(ReproError):
    """Parallel construction could not complete even after worker retries
    (and sequential fallback was disabled)."""
