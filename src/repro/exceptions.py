"""Typed exceptions raised across the library.

Every error the library raises deliberately derives from :class:`ReproError`
so callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Malformed graph input (bad vertex ids, self-loops where banned, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid for the graph."""

    def __init__(self, vertex, n):
        super().__init__(f"vertex {vertex!r} is not in range [0, {n})")
        self.vertex = vertex
        self.n = n


class GraphParseError(GraphError):
    """A graph file could not be parsed (malformed token, truncated header).

    Always names the file and, when the failure is tied to one, the
    1-based line number — so operators can fix the input instead of
    staring at a bare ``ValueError`` from ``int()``.
    """

    def __init__(self, path, message, line=None):
        location = f"{path}:{line}" if line is not None else str(path)
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.line = line


class OrderingError(ReproError):
    """A vertex ordering is not a permutation of the graph's vertices."""


class LabelingError(ReproError):
    """A labeling is inconsistent (violates ESPC or cover constraints)."""


class SerializationError(ReproError):
    """An index could not be encoded to / decoded from its binary form."""


class CountOverflowError(SerializationError):
    """A shortest-path count does not fit in the configured bit width.

    The paper caps 31-bit counts at ``2**31 - 1``; strict mode raises this
    instead of saturating.
    """

    def __init__(self, count, bits):
        super().__init__(f"count {count} does not fit in {bits} bits")
        self.count = count
        self.bits = bits


class CheckpointError(SerializationError):
    """A construction checkpoint is missing, corrupt, or inconsistent with
    the build it is being resumed into (wrong graph, wrong order)."""


class StaleIndexError(SerializationError):
    """A persisted index does not match the graph it is being served for.

    Raised when the stored graph fingerprint (n, m, degree hash) disagrees
    with the live graph — the index is from an older or different graph.
    """

    def __init__(self, expected, found, context="index"):
        super().__init__(
            f"{context}: graph fingerprint mismatch "
            f"(index built for {found}, graph is {expected})"
        )
        self.expected = expected
        self.found = found


class ParallelBuildError(ReproError):
    """Parallel construction could not complete even after worker retries
    (and sequential fallback was disabled)."""


class QueryError(ReproError):
    """Base class for declarative query-layer failures (:mod:`repro.query`)."""


class QuerySyntaxError(QueryError):
    """The compact textual query form could not be parsed.

    Names the offending statement (1-based) and what was expected, so a
    CLI user can fix the expression instead of reading a traceback.
    """

    def __init__(self, message, statement=None):
        location = f"statement {statement}: " if statement is not None else ""
        super().__init__(f"{location}{message}")
        self.statement = statement


class PlanError(QueryError):
    """No available backend can execute an operator of the query.

    Raised at planning time (before any work runs) when the engine was
    constructed without the resources an operator needs — e.g. a
    :class:`~repro.query.ast.TopKBetweenness` with no graph, no oracle
    and no index to sample from.
    """


class ServingError(ReproError):
    """Base class for query-serving failures (:mod:`repro.serving`).

    These are *flow-control* errors — the service protecting itself under
    load or failure — never wrong answers: a query either completes
    exactly or raises one of these.
    """


class DeadlineExceeded(ServingError):
    """A query ran out of its per-request deadline budget.

    Raised cooperatively at scan/level checkpoints, so a slow degraded
    path costs at most one checkpoint interval past the budget.
    """

    def __init__(self, budget, elapsed):
        super().__init__(
            f"deadline of {budget * 1e3:.1f} ms exceeded "
            f"after {elapsed * 1e3:.1f} ms"
        )
        self.budget = budget
        self.elapsed = elapsed


class ServiceOverloaded(ServingError):
    """The admission queue is full; the request was shed, not queued.

    ``retry_after`` is the service's hint (seconds) for when capacity is
    likely to be available again.
    """

    def __init__(self, in_flight, queued, retry_after):
        super().__init__(
            f"service overloaded ({in_flight} in flight, {queued} queued); "
            f"retry after {retry_after * 1e3:.0f} ms"
        )
        self.in_flight = in_flight
        self.queued = queued
        self.retry_after = retry_after


class CircuitOpenError(ServingError):
    """The degraded-path circuit breaker is open: fail fast, do not BFS.

    ``retry_after`` is the time (seconds) until the breaker will admit a
    half-open probe.
    """

    def __init__(self, retry_after, failures):
        super().__init__(
            f"circuit open after {failures} consecutive degraded-path "
            f"failures; next probe in {retry_after * 1e3:.0f} ms"
        )
        self.retry_after = retry_after
        self.failures = failures
