"""Evaluation datasets: synthetic analogs of the paper's 10 graphs."""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_notations,
    load_dataset,
    load_delaunay,
    paper_stats,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_notations",
    "load_dataset",
    "load_delaunay",
    "paper_stats",
]
