"""The evaluation graphs (Table 3), reproduced as synthetic analogs.

The paper runs on 10 public graphs of 0.06M-7.4M vertices (SNAP, KONECT,
LAW) in C++; pure-Python indexing cannot reach those scales, so every
dataset is replaced by a *structure-matched* synthetic analog at a
benchmark-friendly default size (hundreds of vertices, scalable via the
``scale`` parameter). The generator family per graph follows its class:

* social networks (FB, YT, PE, FL)   — preferential attachment, with the
  density tuned to the original's average degree;
* location-based social (GW)         — geometric graph + social overlay;
* interaction network (WI)           — dense-hub interaction model;
* web graphs (GO, BE, IN)            — copying model (neighborhood-
  duplicating, the structure §4.2 exploits);
* coauthorship (DB)                  — overlapping-clique affiliation.

Each analog is then augmented with explicit 1-shell fringe and
neighborhood-equivalent twins (:mod:`repro.generators.augment`) in
per-dataset proportions chosen to mirror Figure 8's reduction profile —
e.g. the shell cut dominates on YT/FL, equivalence dominates on the web
graphs, PE reduces least. The original statistics are kept alongside
(``paper_n``, ``paper_m``, ``paper_bfs_ms``) so EXPERIMENTS.md can print
paper-vs-measured rows. The Exp-6 Delaunay instance comes from scipy,
mirroring the paper's "Build Planar Graphs" script.
"""

from collections import namedtuple

from repro.generators.augment import add_twins, attach_fringe
from repro.generators.planar import delaunay_graph
from repro.generators.random_graphs import (
    barabasi_albert_graph,
    random_geometric_graph,
)
from repro.generators.social import affiliation_graph, interaction_graph
from repro.generators.web import copying_model_graph
from repro.graph.graph import Graph

DatasetSpec = namedtuple(
    "DatasetSpec",
    [
        "notation", "name", "kind", "paper_n", "paper_m", "paper_bfs_ms",
        "builder", "base_n", "fringe", "twins",
    ],
)


def _social(n, m_links, seed):
    return barabasi_albert_graph(n, m_links, seed=seed)


def _gowalla(n, seed):
    """Geometric substrate plus a preferential-attachment overlay."""
    geo = random_geometric_graph(n, radius=0.06, seed=seed)
    overlay = barabasi_albert_graph(n, 2, seed=seed + 1)
    edges = set(geo.edges()) | set(overlay.edges())
    return Graph.from_edges(n, edges)


def _make_builder(kind, **params):
    if kind == "social":
        return lambda n, seed: _social(n, params["m"], seed)
    if kind == "geo-social":
        return lambda n, seed: _gowalla(n, seed)
    if kind == "interaction":
        return lambda n, seed: interaction_graph(
            n, hubs=max(10, n // 20), hub_density=0.5, noise_edges=params["noise"], seed=seed
        )
    if kind == "web":
        return lambda n, seed: copying_model_graph(
            n, out_degree=params["out_degree"], beta=params["beta"], seed=seed
        )
    if kind == "coauthorship":
        return lambda n, seed: affiliation_graph(
            n, groups=max(2, n // 3), group_size_mean=params["size"], memberships=2, seed=seed
        )
    raise ValueError(f"unknown dataset kind {kind!r}")


DATASETS = {
    "FB": DatasetSpec("FB", "Facebook", "social", 63731, 817035, 7.59,
                      _make_builder("social", m=8), 450, 0.10, 0.06),
    "GW": DatasetSpec("GW", "Gowalla", "geo-social", 196591, 950327, 13.25,
                      _make_builder("geo-social"), 450, 0.35, 0.06),
    "WI": DatasetSpec("WI", "WikiConflict", "interaction", 118100, 2027871, 14.60,
                      _make_builder("interaction", noise=5), 420, 0.12, 0.10),
    "GO": DatasetSpec("GO", "Google", "web", 875713, 4322051, 95.01,
                      _make_builder("web", out_degree=5, beta=0.25), 550, 0.18, 0.40),
    "DB": DatasetSpec("DB", "DBLP", "coauthorship", 1314050, 5362414, 176.10,
                      _make_builder("coauthorship", size=4), 550, 0.30, 0.12),
    "BE": DatasetSpec("BE", "Berkstan", "web", 685230, 6649470, 48.73,
                      _make_builder("web", out_degree=9, beta=0.2), 500, 0.10, 0.35),
    "YT": DatasetSpec("YT", "Youtube", "social", 3223589, 9375374, 432.62,
                      _make_builder("social", m=3), 400, 1.00, 0.06),
    "PE": DatasetSpec("PE", "Petster", "social", 623766, 15695166, 129.73,
                      _make_builder("social", m=12), 420, 0.05, 0.05),
    "FL": DatasetSpec("FL", "Flickr", "social", 2302925, 22838276, 622.98,
                      _make_builder("social", m=9), 400, 0.95, 0.10),
    "IN": DatasetSpec("IN", "Indochina", "web", 7414866, 150984819, 1010.68,
                      _make_builder("web", out_degree=12, beta=0.15), 550, 0.35, 0.35),
}

#: Table 3 order, largest last — matches the paper's figures.
NOTATION_ORDER = ("FB", "GW", "WI", "GO", "DB", "BE", "YT", "PE", "FL", "IN")


def dataset_notations():
    """The 10 notations in the paper's (Table 3) order."""
    return list(NOTATION_ORDER)


def load_dataset(notation, scale=1.0, seed=None):
    """Build the analog graph for a notation.

    ``scale`` multiplies the default vertex count (1.0 ≈ benchmark size);
    ``seed`` defaults to a per-dataset deterministic value so repeated
    harness runs see identical graphs. Fringe trees and equivalence twins
    are implanted per the dataset's Figure 8 profile.
    """
    try:
        spec = DATASETS[notation]
    except KeyError:
        raise KeyError(
            f"unknown dataset {notation!r}; expected one of {sorted(DATASETS)}"
        ) from None
    n = max(16, int(round(spec.base_n * scale)))
    if seed is None:
        seed = sum(ord(c) for c in notation) * 7919
    graph = spec.builder(n, seed)
    involved = set()
    if spec.twins:
        graph, involved = add_twins(graph, spec.twins, seed=seed + 1, return_involved=True)
    if spec.fringe:
        eligible = [v for v in range(graph.n) if v not in involved] or None
        graph = attach_fringe(graph, spec.fringe, seed=seed + 2, eligible=eligible)
    return graph


def load_delaunay(n=400, seed=20):
    """The Exp-6 planar instance (paper: n = 500,000), scaled down."""
    return delaunay_graph(n, seed=seed, return_points=True)


def paper_stats(notation):
    """``(n, m, bfs_ms)`` as reported in Table 3 of the paper."""
    spec = DATASETS[notation]
    return spec.paper_n, spec.paper_m, spec.paper_bfs_ms
