"""R-MAT (recursive matrix) generator — the standard web/social synthesizer.

Chakrabarti et al.'s model: each edge picks a quadrant of the adjacency
matrix recursively with probabilities ``(a, b, c, d)``; skewed
probabilities produce the heavy-tailed, community-ish structure of web
and social crawls. Used as an alternative dataset family alongside the
copying and preferential-attachment models.
"""

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def rmat_graph(scale, edge_factor=8, a=0.57, b=0.19, c=0.19, seed=None):
    """Undirected R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` is the target edges-per-vertex before deduplication
    (the Graph500 convention); ``d = 1 - a - b - c``. Self-loops and
    duplicates are dropped, so the realised edge count is a bit lower.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum <= 1")
    rng = ensure_rng(seed)
    n = 1 << scale
    edges = set()
    for _ in range(edge_factor * n):
        u = v = 0
        for _ in range(scale):
            u <<= 1
            v <<= 1
            roll = rng.random()
            if roll < a:
                pass
            elif roll < a + b:
                v |= 1
            elif roll < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(n, edges)
