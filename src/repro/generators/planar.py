"""Planar graphs with coordinates: Delaunay triangulations and grids.

Exp-6 of the paper compares against PL-SPC [12] on a Delaunay
triangulation of random plane points (built with scipy, mirroring the
paper's "Build Planar Graphs" script). Coordinates are returned alongside
the graph because the geometric separator (§5.1 machinery) uses them.
"""

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def delaunay_graph(n, seed=None, return_points=False):
    """Delaunay triangulation of ``n`` uniform random points in a square.

    The paper's Delaunay instance (n = 500,000) is scaled down by callers;
    the structure — planar, ~3n edges, enormous shortest-path counts — is
    what the experiment needs.
    """
    import numpy as np
    from scipy.spatial import Delaunay

    if n < 3:
        raise ValueError("a triangulation needs at least 3 points")
    rng = ensure_rng(seed)
    points = np.array([[rng.random(), rng.random()] for _ in range(n)])
    triangulation = Delaunay(points)
    edges = set()
    for simplex in triangulation.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        edges.add((min(a, b), max(a, b)))
        edges.add((min(b, c), max(b, c)))
        edges.add((min(a, c), max(a, c)))
    graph = Graph.from_edges(n, edges)
    if return_points:
        return graph, [(float(x), float(y)) for x, y in points]
    return graph


def grid_with_coordinates(rows, cols):
    """A grid graph plus unit coordinates, for geometric separator tests."""
    from repro.generators.classic import grid_graph

    graph = grid_graph(rows, cols)
    points = [(float(c), float(r)) for r in range(rows) for c in range(cols)]
    return graph, points


def triangular_lattice(rows, cols):
    """A triangulated grid (each unit square gets one diagonal).

    Planar, deterministic, and with many equal-length paths — a compact
    stand-in for Delaunay in unit tests that must not depend on scipy.
    """
    from repro.generators.classic import grid_graph

    base = grid_graph(rows, cols)
    edges = list(base.edges())
    for r in range(rows - 1):
        for c in range(cols - 1):
            v = r * cols + c
            edges.append((v, v + cols + 1))
    graph = Graph.from_edges(rows * cols, edges)
    points = [(float(c), float(r)) for r in range(rows) for c in range(cols)]
    return graph, points
