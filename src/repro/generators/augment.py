"""Structural augmentation: implant 1-shell fringe and equivalence twins.

The paper's graphs carry heavy core-fringe structure (YT and FL lose over
half their vertices to the 1-shell cut) and many neighborhood-equivalent
vertices (web graphs full of pages copying link lists). Random generators
produce little of either, so the dataset analogs implant them explicitly:
``attach_fringe`` hangs random pendant trees off the core (pure 1-shell
mass), ``add_twins`` duplicates the neighborhoods of random vertices
(exact ≡-classes, adjacent or not). Both grow the graph by a controlled
vertex fraction, keeping the reduction experiments' shape faithful.
"""

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def attach_fringe(graph, fraction, seed=None, max_tree_size=6, eligible=None):
    """Grow the graph by ``fraction`` pendant-tree vertices.

    Each tree's root attaches to a random vertex drawn from ``eligible``
    (default: all) and grows by random-parent insertion up to
    ``max_tree_size`` vertices; tree sizes are drawn uniformly. All added
    vertices land in the 1-shell. Passing the non-twin vertices as
    ``eligible`` keeps previously implanted equivalence classes intact.
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    rng = ensure_rng(seed)
    attach_pool = list(eligible) if eligible is not None else list(range(graph.n))
    if not attach_pool and fraction > 0:
        raise ValueError("no eligible attachment vertices")
    edges = list(graph.edges())
    next_id = graph.n
    target = int(round(graph.n * fraction))
    while target > 0:
        size = min(target, rng.randint(1, max_tree_size))
        attach = rng.choice(attach_pool)
        members = []
        for _ in range(size):
            parent = rng.choice(members) if members and rng.random() < 0.6 else None
            if parent is None:
                edges.append((attach, next_id))
            else:
                edges.append((parent, next_id))
            members.append(next_id)
            next_id += 1
        target -= size
    return Graph.from_edges(next_id, edges)


def add_twins(graph, fraction, seed=None, adjacent_probability=0.3, return_involved=False):
    """Grow the graph by ``fraction`` twin vertices.

    Each new vertex copies a random existing vertex's neighborhood —
    open (independent-set class) or, with ``adjacent_probability``,
    closed (clique class, adding the mutual edge). Prototypes are drawn
    from the original vertices so classes can exceed size two. With
    ``return_involved`` the set of prototypes and copies is returned too,
    so later augmentation can avoid touching class members (attaching new
    structure to a member splits its class; common neighbors are safe).
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    rng = ensure_rng(seed)
    base_n = graph.n
    # Distribute the twin budget over random prototypes, then *blow up*:
    # every copy of u is joined to every copy of each base neighbor of u.
    # This is the only construction under which copies of different
    # prototypes do not split each other's classes.
    copies = [[v] for v in range(base_n)]
    adjacent_class = [False] * base_n
    next_id = base_n
    involved = set()
    budget = int(round(base_n * fraction))
    candidates = [v for v in range(base_n) if graph.degree(v) > 0]
    while budget > 0 and candidates:
        prototype = rng.choice(candidates)
        if len(copies[prototype]) == 1:
            adjacent_class[prototype] = rng.random() < adjacent_probability
            involved.add(prototype)
        copies[prototype].append(next_id)
        involved.add(next_id)
        next_id += 1
        budget -= 1
    edges = []
    for u, w in graph.edges():
        for cu in copies[u]:
            for cw in copies[w]:
                edges.append((cu, cw))
    for v in range(base_n):
        if adjacent_class[v] and len(copies[v]) > 1:
            members = copies[v]
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    edges.append((a, b))
    out = Graph.from_edges(next_id, edges)
    if return_involved:
        return out, involved
    return out
