"""Web-graph analog: the linear-growth copying model.

The paper's GO / BE / IN datasets are web crawls; their signature is that
many pages copy another page's link list, creating large groups of
neighborhood-equivalent vertices — exactly the structure the §4.2
reduction exploits. The copying model (Kumar et al.) reproduces this: each
new vertex picks a prototype and copies each of the prototype's links with
probability ``1 - beta``, otherwise linking uniformly at random.
"""

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def copying_model_graph(n, out_degree=4, beta=0.3, seed=None):
    """Undirected copying-model graph on ``n`` vertices.

    ``out_degree`` links are created per new vertex; with probability
    ``1 - beta`` a link copies the prototype's corresponding link, making
    near-duplicate neighborhoods common (web-graph analog for GO/BE/IN).
    """
    rng = ensure_rng(seed)
    if out_degree < 1:
        raise ValueError("out_degree must be positive")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be a probability")
    seed_size = min(n, out_degree + 1)
    edges = [(i, j) for i in range(seed_size) for j in range(i + 1, seed_size)]
    link_lists = {v: [w for w in range(seed_size) if w != v] for v in range(seed_size)}
    for source in range(seed_size, n):
        prototype = rng.randrange(source)
        prototype_links = link_lists[prototype]
        links = set()
        for slot in range(out_degree):
            if prototype_links and rng.random() >= beta:
                target = prototype_links[slot % len(prototype_links)]
            else:
                target = rng.randrange(source)
            if target != source:
                links.add(target)
        link_lists[source] = sorted(links)
        edges.extend((target, source) for target in links)
    return Graph.from_edges(n, edges)
