"""Random graph models used to synthesise the evaluation datasets."""

import math

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def gnp_random_graph(n, p, seed=None):
    """Erdős–Rényi ``G(n, p)`` via geometric edge skipping (O(n + m))."""
    rng = ensure_rng(seed)
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    edges = []
    if p > 0:
        if p >= 1.0:
            edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
            return Graph.from_edges(n, edges)
        log_q = math.log(1.0 - p)
        v, w = 1, -1
        while v < n:
            w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                edges.append((v, w))
    return Graph.from_edges(n, edges)


def gnm_random_graph(n, m, seed=None):
    """Uniform random graph with exactly ``m`` distinct edges."""
    rng = ensure_rng(seed)
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges in a simple graph on {n} vertices")
    chosen = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        chosen.add((u, v))
    return Graph.from_edges(n, chosen)


def barabasi_albert_graph(n, m, seed=None):
    """Preferential attachment: each new vertex links to ``m`` earlier ones.

    Produces the heavy-tailed degree distribution of the paper's social
    graphs (FB/YT/PE/FL analogs) and a dense core with tree-like fringe.
    """
    rng = ensure_rng(seed)
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    edges = []
    # Repeated-vertex list: sampling from it is preferential attachment.
    repeated = []
    targets = list(range(m))
    for source in range(m, n):
        new_edges = {(target, source) for target in targets}
        edges.extend(new_edges)
        for target in targets:
            repeated.append(target)
        repeated.extend(source for _ in range(len(targets)))
        seen = set()
        targets = []
        while len(targets) < m:
            candidate = rng.choice(repeated)
            if candidate not in seen:
                seen.add(candidate)
                targets.append(candidate)
    return Graph.from_edges(n, edges)


def watts_strogatz_graph(n, k, p, seed=None):
    """Small-world ring lattice with rewiring probability ``p``."""
    rng = ensure_rng(seed)
    if k % 2 or k < 2:
        raise ValueError("k must be even and >= 2")
    if k >= n:
        raise ValueError("k must be smaller than n")
    edge_set = set()
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            w = (v + offset) % n
            edge_set.add((min(v, w), max(v, w)))
    edges = list(edge_set)
    rewired = set(edges)
    for index, (u, v) in enumerate(edges):
        if rng.random() < p:
            for _ in range(8):  # a few attempts; keep the edge if unlucky
                w = rng.randrange(n)
                if w != u and (min(u, w), max(u, w)) not in rewired:
                    rewired.discard((u, v))
                    rewired.add((min(u, w), max(u, w)))
                    break
    return Graph.from_edges(n, rewired)


def random_geometric_graph(n, radius, seed=None, return_points=False):
    """Unit-square geometric graph: points closer than ``radius`` are joined.

    Grid-bucketed neighbor search keeps it near-linear. The GW (Gowalla,
    location-based) analog mixes this with a social overlay.
    """
    rng = ensure_rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    cell = max(radius, 1e-9)
    buckets = {}
    for i, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)
    edges = []
    r2 = radius * radius
    for (cx, cy), members in buckets.items():
        neighborhood = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighborhood.extend(buckets.get((cx + dx, cy + dy), ()))
        for i in members:
            xi, yi = points[i]
            for j in neighborhood:
                if j <= i:
                    continue
                xj, yj = points[j]
                if (xi - xj) ** 2 + (yi - yj) ** 2 <= r2:
                    edges.append((i, j))
    graph = Graph.from_edges(n, edges)
    return (graph, points) if return_points else graph


def configuration_like_graph(degree_sequence, seed=None):
    """Simple-graph approximation of the configuration model.

    Stubs are paired at random; self-loops and duplicates are dropped, so
    realised degrees can fall slightly short of the request. Good enough
    for generating graphs with a prescribed heavy tail.
    """
    rng = ensure_rng(seed)
    stubs = []
    for v, d in enumerate(degree_sequence):
        if d < 0:
            raise ValueError("degrees must be non-negative")
        stubs.extend(v for _ in range(d))
    rng.shuffle(stubs)
    edges = set()
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(len(degree_sequence), edges)
