"""Deterministic classic graphs (paths, cycles, grids, trees, ...)."""

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def path_graph(n):
    """The path ``0 - 1 - ... - (n-1)``."""
    return Graph.from_edges(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n):
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def complete_graph(n):
    """The complete graph ``K_n``."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_edges(n, edges)


def star_graph(n):
    """A star: center 0 joined to leaves ``1..n-1``."""
    return Graph.from_edges(n, ((0, i) for i in range(1, n)))


def complete_bipartite_graph(a, b):
    """``K_{a,b}``: left part ``0..a-1``, right part ``a..a+b-1``.

    Between opposite-corner vertices of the same side there are ``b``
    (resp. ``a``) shortest paths — a handy counting stress shape.
    """
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Graph.from_edges(a + b, edges)


def grid_graph(rows, cols):
    """The ``rows x cols`` grid; vertex ``(r, c)`` has id ``r * cols + c``.

    Grids have hugely many shortest paths (binomial coefficients), which
    exercises big-count handling.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph.from_edges(rows * cols, edges)


def random_tree(n, seed=None):
    """A uniform-ish random tree: vertex ``i`` attaches to a random earlier one.

    Trees have exactly one shortest path per connected pair, the base case
    of the 1-shell reduction (§4.1).
    """
    rng = ensure_rng(seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return Graph.from_edges(n, edges)


def binary_tree(depth):
    """The complete binary tree with ``2**(depth+1) - 1`` vertices."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return Graph.from_edges(n, edges)


def barbell_graph(clique_size, bridge_length):
    """Two cliques joined by a path — a crisp core/bridge test shape."""
    if clique_size < 1:
        raise ValueError("clique size must be positive")
    edges = []
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((i, j))
            edges.append((clique_size + bridge_length + i, clique_size + bridge_length + j))
    previous = 0
    for k in range(bridge_length):
        edges.append((previous, clique_size + k))
        previous = clique_size + k
    edges.append((previous, clique_size + bridge_length))
    return Graph.from_edges(2 * clique_size + bridge_length, edges)
