"""Social/coauthorship analogs: overlapping-group (affiliation) models.

DBLP-style coauthorship graphs are unions of small cliques (papers); the
affiliation model reproduces that: vertices join random groups and each
group becomes a clique. Caveman graphs are the classic clustered-community
shape used in smaller tests.
"""

from repro.graph.graph import Graph
from repro.utils.rng import ensure_rng


def affiliation_graph(n, groups, group_size_mean=4, memberships=2, seed=None):
    """Clique-overlap (DBLP analog): ``n`` authors across ``groups`` papers.

    Each author joins ``memberships`` random groups (papers); each group of
    authors becomes a clique. Gives high clustering, heavy clique overlap,
    and many degree-1 fringe authors — the structure that makes DB costly
    for HP-SPC in the paper's Exp-2.
    """
    rng = ensure_rng(seed)
    if groups < 1 or group_size_mean < 2:
        raise ValueError("need at least one group of size >= 2")
    members = [[] for _ in range(groups)]
    for author in range(n):
        for _ in range(memberships):
            members[rng.randrange(groups)].append(author)
    edges = set()
    for group in members:
        # Thin oversized groups down to around the requested mean size.
        if len(group) > 2 * group_size_mean:
            group = rng.sample(group, 2 * group_size_mean)
        unique = sorted(set(group))
        for i, u in enumerate(unique):
            for v in unique[i + 1 :]:
                edges.add((u, v))
    return Graph.from_edges(n, edges)


def caveman_graph(cliques, clique_size, rewire=1):
    """Connected caveman graph: ``cliques`` cliques joined in a ring.

    ``rewire`` edges per clique connect it to the next clique around the
    ring (1 reproduces the classic construction).
    """
    if cliques < 1 or clique_size < 2:
        raise ValueError("need cliques >= 1 and clique_size >= 2")
    n = cliques * clique_size
    edges = set()
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.add((base + i, base + j))
    if cliques > 1:
        for c in range(cliques):
            base = c * clique_size
            nxt = ((c + 1) % cliques) * clique_size
            for k in range(max(1, rewire)):
                edges.add((min(base + k % clique_size, nxt), max(base + k % clique_size, nxt)))
    return Graph.from_edges(n, {(u, v) for u, v in edges if u != v})


def interaction_graph(n, hubs=20, hub_density=0.6, noise_edges=3, seed=None):
    """WikiConflict analog: a dense hub core plus noisy peripheral edges.

    A small set of hub vertices is densely interconnected and every other
    vertex attaches to a few random hubs and peers, giving the dense,
    low-diameter interaction structure of WI.
    """
    rng = ensure_rng(seed)
    hubs = min(hubs, n)
    edges = set()
    for i in range(hubs):
        for j in range(i + 1, hubs):
            if rng.random() < hub_density:
                edges.add((i, j))
    for v in range(hubs, n):
        for _ in range(noise_edges):
            if rng.random() < 0.7:
                w = rng.randrange(hubs)
            else:
                w = rng.randrange(v)
            if w != v:
                edges.add((min(v, w), max(v, w)))
    return Graph.from_edges(n, edges)
