"""Graph generators: classic shapes, random models, web/social analogs, planar."""

from repro.generators.augment import add_twins, attach_fringe
from repro.generators.classic import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.generators.planar import delaunay_graph, grid_with_coordinates
from repro.generators.random_graphs import (
    barabasi_albert_graph,
    gnm_random_graph,
    gnp_random_graph,
    random_geometric_graph,
    watts_strogatz_graph,
)
from repro.generators.rmat import rmat_graph
from repro.generators.social import affiliation_graph, caveman_graph
from repro.generators.web import copying_model_graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "random_tree",
    "gnp_random_graph",
    "gnm_random_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "random_geometric_graph",
    "copying_model_graph",
    "affiliation_graph",
    "caveman_graph",
    "delaunay_graph",
    "grid_with_coordinates",
    "rmat_graph",
    "attach_fringe",
    "add_twins",
]
