"""Multiprocess HP-SPC: partition root pushes across workers, merge in rank order.

The hub-pushing loop of §3.2 looks sequential — the pruning join at each
popped vertex reads canonical labels built by *earlier* pushes — but the
expensive part of a push (the rank-restricted BFS that finds trough
distances and counts in ``G_w``) depends only on the graph and the vertex
order, not on the labels. That is the observation behind parallel PLL-style
builders (PSPC): farm the BFS work out, keep the label-dependent decisions
centralized.

Two phases:

1. **Candidate generation (parallel).** Roots are dealt round-robin to
   ``workers`` blocks by rank. Each worker walks its roots in rank order and
   runs the restricted BFS of Algorithm 1, pruning against *block-local*
   candidate labels only. Local pruning is sound: every local label entry is
   a real path length through a higher-ranked hub, so a local prune implies
   the sequential join (whose canonical labels form an exact distance cover
   over already-pushed hubs) also prunes. It under-prunes — candidates are a
   superset of the true labels — but for every vertex the sequential builder
   keeps, no trough shortest path crosses a pruned vertex, so the candidate
   ``(dist, count)`` equals the sequential BFS value exactly.

2. **Classification (sequential merge).** Replay roots in rank order against
   the true canonical labels, applying the line-8 join to each candidate:
   drop (``best < d``), non-canonical (``best == d``), canonical
   (``best > d``). Appends happen in the same (rank, BFS-pop) order as the
   sequential builder, so the result is entry-for-entry identical.

Adaptive orderings (significant-path) need the push tree of the previous
push to choose the next root, which serializes the schedule — they stay on
:func:`repro.core.hp_spc.build_labels`.

Workers are *supervised*: each block is submitted as its own task with an
optional per-task timeout, failed or timed-out blocks are retried (with
linear backoff) on a fresh pool up to ``max_retries`` times, and when a
block still cannot complete the builder falls back to the sequential
engine — same bit-identical labels, just slower — recording every retry,
timeout and fallback in :class:`~repro.core.hp_spc.BuildStats`.
"""

import multiprocessing
import time
from collections import deque

from repro.core.labels import LabelSet
from repro.core.ordering import resolve_static_order  # noqa: F401  (re-export)
from repro.exceptions import ParallelBuildError
from repro.observability.events import get_event_log
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_tracer

INF = float("inf")

# Worker-global state, set once per process by the pool initializer so the
# adjacency is not re-pickled per task (and is shared for free under fork).
_WORKER = {}


def _init_worker(adjacency, rank_of, fault=None):
    _WORKER["adj"] = adjacency
    _WORKER["rank_of"] = rank_of
    _WORKER["fault"] = fault


def _init_worker_csr(rindptr, rindices, fault=None):
    _WORKER["rindptr"] = rindptr
    _WORKER["rindices"] = rindices
    _WORKER["fault"] = fault


def _trigger_fault(block_index):
    """Chaos-testing hook: fire the injected worker fault, if any."""
    fault = _WORKER.get("fault")
    if fault is not None:
        fault.trigger(block_index)


def _push_block_csr(task):
    """Phase 1 on the numpy kernels: candidates for one block, rank space."""
    from repro.kernels.hub_push import push_block_csr

    block_index, block_ranks = task
    _trigger_fault(block_index)
    return push_block_csr(_WORKER["rindptr"], _WORKER["rindices"], block_ranks)


def _run_supervised(context, initializer, initargs, func, payloads, workers,
                    task_timeout, max_retries, retry_backoff, stats):
    """Run ``func`` over indexed ``payloads`` with timeout + bounded retries.

    Each payload is submitted as ``func((index, payload))``. A task that
    raises is retried on a fresh pool; a task that exceeds ``task_timeout``
    seconds is counted as timed out and retried likewise (the old pool —
    including any wedged or silently-dead worker — is terminated by the
    pool's context manager). After ``max_retries`` failed rounds a
    :class:`ParallelBuildError` is raised; the caller decides whether to
    fall back to the sequential engine.
    """
    registry = get_registry()
    metered = registry.enabled
    results = [None] * len(payloads)
    pending = list(range(len(payloads)))
    attempt = 0
    while pending:
        failed = []
        with context.Pool(processes=workers, initializer=initializer,
                          initargs=initargs) as pool:
            handles = [(i, pool.apply_async(func, ((i, payloads[i]),)))
                       for i in pending]
            for i, handle in handles:
                try:
                    results[i] = handle.get(task_timeout)
                except multiprocessing.TimeoutError:
                    failed.append(i)
                    if stats is not None:
                        stats.worker_timeouts += 1
                    if metered:
                        registry.counter(
                            "spc_build_worker_timeouts_total").inc()
                except Exception:
                    failed.append(i)
                    if stats is not None:
                        stats.worker_failures += 1
                    if metered:
                        registry.counter(
                            "spc_build_worker_failures_total").inc()
        if not failed:
            break
        attempt += 1
        if attempt > max_retries:
            raise ParallelBuildError(
                f"{len(failed)} worker block(s) kept failing after "
                f"{max_retries} retries"
            )
        if stats is not None:
            stats.worker_retries += len(failed)
        if metered:
            registry.counter("spc_build_worker_retries_total").inc(len(failed))
        get_event_log().emit("build.worker_retry", attempt=attempt,
                             blocks=len(failed))
        if retry_backoff:
            time.sleep(retry_backoff * attempt)
        pending = failed
    return results


def _push_block(task):
    """Phase 1: candidates for one block of roots, in increasing rank order.

    ``task`` is ``(block_index, block)`` where ``block`` is a list of
    ``(rank, root)``. Returns a list of ``(rank, root, candidates, visits)``
    where ``candidates`` holds ``(v, dist, count)`` in BFS pop order — the
    exact trough values the sequential builder would compute, for a
    superset of its kept vertices.
    """
    block_index, block = task
    _trigger_fault(block_index)
    adj = _WORKER["adj"]
    rank_of = _WORKER["rank_of"]
    n = len(rank_of)
    local = [[] for _ in range(n)]  # block-local (hub, dist) labels for pruning
    hub_dist = [INF] * n
    dist = [INF] * n
    count = [0] * n
    out = []
    for rank, w in block:
        touched = []
        for hub, hub_distance in local[w]:
            hub_dist[hub] = hub_distance
            touched.append(hub)
        local[w].append((w, 0))
        dist[w] = 0
        count[w] = 1
        queue = deque([w])
        visited = [w]
        candidates = []
        visits = 0
        while queue:
            v = queue.popleft()
            dv = dist[v]
            visits += 1
            if v != w:
                best = min(
                    (hub_dist[hub] + hub_distance for hub, hub_distance in local[v]),
                    default=INF,
                )
                if best < dv:
                    continue  # sound: a real shorter path through H_w exists
                candidates.append((v, dv, count[v]))
                local[v].append((w, dv))
            forwarded = count[v]
            next_dist = dv + 1
            for v2 in adj[v]:
                if rank_of[v2] <= rank:
                    continue  # restrict to G_w: only lower-ranked vertices
                d2 = dist[v2]
                if d2 is INF:
                    dist[v2] = next_dist
                    count[v2] = forwarded
                    queue.append(v2)
                    visited.append(v2)
                elif d2 == next_dist:
                    count[v2] += forwarded
        for v in visited:
            dist[v] = INF
            count[v] = 0
        for hub in touched:
            hub_dist[hub] = INF
        out.append((rank, w, candidates, visits))
    return out


def _merge_candidates(n, order, candidates_by_rank, stats=None):
    """Phase 2: replay the pruning joins in rank order (sequential, cheap)."""
    labels = LabelSet(n)
    canonical = labels._canonical  # hot-path alias; LabelSet owns the lists
    noncanonical = labels._noncanonical
    hub_dist = [INF] * n
    for rank, w in enumerate(order):
        if stats is not None:
            stats.pushes += 1
        touched = []
        for _, hub, hub_distance, _ in canonical[w]:
            hub_dist[hub] = hub_distance
            touched.append(hub)
        canonical[w].append((rank, w, 0, 1))
        if stats is not None:
            stats.label_entries += 1
        for v, d, c in candidates_by_rank[rank]:
            row = canonical[v]
            best = min(
                (hub_dist[hub] + hub_distance for _, hub, hub_distance, _ in row),
                default=INF,
            )
            if stats is not None:
                stats.join_terms += len(row)
            if best < d:
                if stats is not None:
                    stats.prunes += 1
                continue
            if best == d:
                noncanonical[v].append((rank, w, d, c))
            else:
                canonical[v].append((rank, w, d, c))
            if stats is not None:
                stats.label_entries += 1
        for hub in touched:
            hub_dist[hub] = INF
    labels.set_order(order)
    labels.finalize()
    return labels


def build_labels_parallel(graph, workers=None, ordering="degree", stats=None,
                          engine="csr", task_timeout=None, max_retries=2,
                          retry_backoff=0.1, fallback="sequential",
                          as_flat=False, _fault=None):
    """Run HP-SPC with ``workers`` processes; result is bit-identical to
    :func:`repro.core.hp_spc.build_labels` under the same (static) ordering.

    ``engine`` picks the per-worker BFS implementation: ``"csr"`` (default)
    runs the vectorized :func:`repro.kernels.hub_push.push_block_csr` sweep
    over the shared rank-space CSR and classifies with the batched
    :func:`repro.kernels.hub_push.merge_candidates_csr` replay; ``"python"``
    keeps the original deque workers (arbitrary-precision counts).

    ``stats`` (a :class:`~repro.core.hp_spc.BuildStats`) is filled with the
    merge-phase counters plus the workers' BFS pop totals; ``visits`` and
    ``label_entries`` count phase-1 work, which is a superset of the
    sequential builder's (local pruning is weaker than global pruning).

    ``workers=None`` uses ``os.cpu_count()``; with one worker (or a tiny
    graph) this simply calls the sequential builder.

    ``as_flat=True`` (csr engine only) returns the merged
    :class:`~repro.core.flat_labels.FlatLabels` directly instead of
    thawing it into a ``LabelSet`` — the freeze-free path callers like
    :meth:`SPCIndex.build` use to skip the LabelSet round trip entirely.

    Fault tolerance: each block is a supervised task. Blocks whose worker
    raises are retried up to ``max_retries`` times with ``retry_backoff``
    seconds of linear backoff; ``task_timeout`` (seconds) additionally
    bounds each block so a worker that *dies silently* (OOM-kill, SIGKILL)
    or wedges is detected and retried rather than hanging the build. When a
    block keeps failing, ``fallback="sequential"`` (default) reruns the
    whole build on the in-process sequential engine — same labels,
    recorded in ``stats.sequential_fallbacks`` — while ``fallback=None``
    raises :class:`~repro.exceptions.ParallelBuildError`. ``_fault`` is the
    chaos-test hook (:mod:`repro.testing.faults`), injected into workers.
    """
    from repro.core.hp_spc import build_labels

    if engine not in ("python", "csr"):
        raise ValueError(f"unknown construction engine {engine!r}; "
                         "expected 'python' or 'csr'")
    if as_flat and engine != "csr":
        raise ValueError("as_flat=True requires engine='csr'")
    if fallback not in (None, "sequential"):
        raise ValueError(f"unknown fallback {fallback!r}; "
                         "expected 'sequential' or None")
    n = graph.n
    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(int(workers), max(1, n)))
    order = resolve_static_order(graph, ordering)

    def _sequential(ordering_list):
        if as_flat:
            from repro.kernels.hub_push import build_flat_labels_csr

            return build_flat_labels_csr(graph, ordering=ordering_list,
                                         stats=stats)
        return build_labels(graph, ordering=ordering_list, stats=stats,
                            engine=engine)

    if workers == 1 or n < 4:
        return _sequential(list(order))

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()

    def _sequential_fallback(error):
        if fallback is None:
            raise error
        if stats is not None:
            stats.sequential_fallbacks += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("spc_build_sequential_fallbacks_total").inc()
        get_event_log().emit("build.sequential_fallback", error=str(error))
        return _sequential(list(order))

    if engine == "csr":
        import numpy as np

        from repro.kernels.hub_push import _rank_space_csr, merge_candidates_csr

        order_np = np.asarray(order, dtype=np.int64)
        rank_of_np = np.empty(n, dtype=np.int64)
        rank_of_np[order_np] = np.arange(n, dtype=np.int64)
        rindptr, rindices = _rank_space_csr(graph, order_np, rank_of_np)
        blocks = [list(range(k, n, workers)) for k in range(workers)]
        tracer = get_tracer()
        try:
            with tracer.span("parallel.phase1", engine="csr",
                             workers=workers):
                results = _run_supervised(
                    context, _init_worker_csr, (rindptr, rindices, _fault),
                    _push_block_csr, blocks, workers,
                    task_timeout, max_retries, retry_backoff, stats,
                )
        except ParallelBuildError as error:
            return _sequential_fallback(error)
        candidates_by_rank = [None] * n
        visits = 0
        for block_result in results:
            for rank, verts, dists, counts, block_visits in block_result:
                candidates_by_rank[rank] = (verts, dists, counts)
                visits += block_visits
        with tracer.span("parallel.phase2", engine="csr"):
            flat = merge_candidates_csr(n, order_np, candidates_by_rank,
                                        stats=stats)
        if stats is not None:
            stats.visits += visits
        return flat if as_flat else flat.to_label_set()

    rank_of = [0] * n
    for rank, v in enumerate(order):
        rank_of[v] = rank
    # Round-robin by rank: every worker gets a share of the high-ranked
    # (expensive, strongly-pruning) roots, which balances load and seeds
    # each block's local pruning with the most useful hubs.
    blocks = [
        [(rank, w) for rank, w in enumerate(order) if rank % workers == k]
        for k in range(workers)
    ]
    tracer = get_tracer()
    try:
        with tracer.span("parallel.phase1", engine="python", workers=workers):
            results = _run_supervised(
                context, _init_worker, (graph.adjacency, rank_of, _fault),
                _push_block, blocks, workers,
                task_timeout, max_retries, retry_backoff, stats,
            )
    except ParallelBuildError as error:
        return _sequential_fallback(error)

    candidates_by_rank = [None] * n
    visits = 0
    for block_result in results:
        for rank, _, candidates, block_visits in block_result:
            candidates_by_rank[rank] = candidates
            visits += block_visits
    with tracer.span("parallel.phase2", engine="python"):
        labels = _merge_candidates(n, order, candidates_by_rank, stats=stats)
    if stats is not None:
        stats.visits += visits
    return labels
