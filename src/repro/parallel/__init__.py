"""Parallel HP-SPC construction (PSPC-style root partitioning).

``build_labels_parallel`` splits the hub pushes across worker processes
and deterministically merges the per-worker fragments, producing a
:class:`~repro.core.labels.LabelSet` identical to the sequential builder's.
"""

from repro.parallel.builder import build_labels_parallel, resolve_static_order

__all__ = ["build_labels_parallel", "resolve_static_order"]
