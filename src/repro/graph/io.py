"""Read/write graphs in common text formats.

Supports the formats the paper's datasets ship in (SNAP/KONECT edge lists),
plus METIS and unweighted DIMACS, so a user can point the library at the
original downloads when hardware allows.

Every malformed input — non-integer tokens, negative or out-of-range
vertex ids, truncated headers, undecodable bytes, empty files — raises a
typed :class:`~repro.exceptions.GraphParseError` carrying the file path
and (when one applies) the 1-based line number. Parsers never leak a bare
``ValueError``/``IndexError`` from ``int()`` or token indexing: a graph
file fed by an operator is untrusted input.
"""

from repro.exceptions import GraphError, GraphParseError
from repro.graph.digraph import WeightedDigraph
from repro.graph.graph import Graph


def _parse_int(token, path, line_no, what):
    """``int(token)`` with a typed, located error on garbage."""
    try:
        return int(token)
    except ValueError:
        raise GraphParseError(path, f"non-integer {what} {token!r}",
                              line=line_no) from None


def _read_lines(path):
    """Yield ``(line_no, line)``; undecodable bytes become a typed error."""
    with open(path, errors="strict") as handle:
        line_no = 0
        while True:
            try:
                line = handle.readline()
            except UnicodeDecodeError as exc:
                raise GraphParseError(
                    path, f"not a text file ({exc.reason} at byte "
                    f"{exc.start})", line=line_no + 1,
                ) from None
            if not line:
                return
            line_no += 1
            yield line_no, line


def _parse_endpoint_lines(path, comments, want_weight, default_weight):
    """Shared edge-list scanner: ``(raw_edges, ids, saw_content)``."""
    raw_edges = []
    ids = set()
    saw_content = False
    for line_no, line in _read_lines(path):
        line = line.strip()
        if not line:
            continue
        if any(line.startswith(c) for c in comments):
            saw_content = True
            continue
        saw_content = True
        parts = line.split()
        if len(parts) < 2:
            raise GraphParseError(path, "expected at least two columns",
                                  line=line_no)
        u = _parse_int(parts[0], path, line_no, "endpoint")
        v = _parse_int(parts[1], path, line_no, "endpoint")
        if u < 0 or v < 0:
            raise GraphParseError(
                path, f"negative vertex id {min(u, v)}", line=line_no
            )
        weight = default_weight
        if want_weight and len(parts) >= 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise GraphParseError(path, f"non-numeric weight {parts[2]!r}",
                                      line=line_no) from None
            if weight == int(weight):
                weight = int(weight)
        ids.add(u)
        ids.add(v)
        raw_edges.append((u, v, weight))
    if not saw_content:
        raise GraphParseError(path, "empty graph file")
    return raw_edges, ids


def read_edge_list(path, comments=("#", "%"), directed=False, default_weight=1):
    """Read a whitespace-separated edge list.

    Vertex ids may be arbitrary non-negative integers; they are compacted to
    ``0..n-1`` preserving numeric order. Lines starting with any prefix in
    ``comments`` are skipped (SNAP uses ``#``, KONECT uses ``%``). A third
    column, when present and ``directed``, is the edge weight.

    Returns ``(graph, id_map)`` where ``id_map`` maps original -> dense ids.
    A file with comments but no edges is a legitimate empty graph; a file
    with no content at all raises :class:`GraphParseError`.
    """
    raw_edges, ids = _parse_endpoint_lines(path, comments, directed,
                                           default_weight)
    id_map = {old: new for new, old in enumerate(sorted(ids))}
    if directed:
        edges = [(id_map[u], id_map[v], w) for u, v, w in raw_edges if u != v]
        try:
            return WeightedDigraph.from_edges(len(id_map), edges), id_map
        except GraphError as exc:
            # Constructor rejections (e.g. a non-positive weight) are
            # still *parse* failures from the caller's point of view.
            raise GraphParseError(path, str(exc)) from exc
    edges = [(id_map[u], id_map[v]) for u, v, _ in raw_edges if u != v]
    return Graph.from_edges(len(id_map), edges), id_map


def write_edge_list(graph, path, header=True):
    """Write an undirected graph as a SNAP-style edge list."""
    with open(path, "w") as handle:
        if header:
            handle.write(f"# undirected graph: {graph.n} vertices, {graph.m} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_weighted_edge_list(path, comments=("#", "%"), default_weight=1):
    """Read a 3-column edge list as an undirected weighted graph.

    Like :func:`read_edge_list` but keeps the third column as the edge
    weight (``default_weight`` when absent). Returns
    ``(weighted_graph, id_map)``.
    """
    from repro.weighted.graph import WeightedGraph

    raw_edges, ids = _parse_endpoint_lines(path, comments, True, default_weight)
    id_map = {old: new for new, old in enumerate(sorted(ids))}
    edges = [(id_map[u], id_map[v], w) for u, v, w in raw_edges if u != v]
    try:
        return WeightedGraph.from_edges(len(id_map), edges), id_map
    except GraphError as exc:
        # See read_edge_list: constructor rejections are parse failures.
        raise GraphParseError(path, str(exc)) from exc


def write_weighted_edge_list(graph, path, header=True):
    """Write a weighted undirected graph as a 3-column edge list."""
    with open(path, "w") as handle:
        if header:
            handle.write(f"# weighted graph: {graph.n} vertices, {graph.m} edges\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")


def read_metis(path):
    """Read a graph in METIS format (1-indexed adjacency lines).

    Blank adjacency lines are legitimate — they are isolated vertices —
    so only comment lines are skipped.
    """
    lines = []
    for line_no, line in _read_lines(path):
        if not line.startswith("%"):
            lines.append((line_no, line.strip()))
    while lines and not lines[0][1]:
        lines.pop(0)
    if not lines:
        raise GraphParseError(path, "empty METIS file")
    head_no, head_line = lines[0]
    head = head_line.split()
    if len(head) < 2:
        raise GraphParseError(path, "truncated METIS header (need 'n m')",
                              line=head_no)
    n = _parse_int(head[0], path, head_no, "vertex count")
    m = _parse_int(head[1], path, head_no, "edge count")
    if n < 0 or m < 0:
        raise GraphParseError(path, f"negative METIS header field ({n} {m})",
                              line=head_no)
    adjacency_lines = lines[1 : 1 + n]
    trailing = lines[1 + n :]
    if len(adjacency_lines) != n or any(text for _, text in trailing):
        raise GraphParseError(
            path, f"expected {n} adjacency lines, got {len(lines) - 1}"
        )
    edges = []
    for u, (line_no, line) in enumerate(adjacency_lines):
        for token in line.split():
            v = _parse_int(token, path, line_no, "neighbor") - 1
            if not (0 <= v < n):
                raise GraphParseError(path, f"neighbor {token} out of range "
                                      f"[1, {n}]", line=line_no)
            if u != v:
                edges.append((u, v))
    graph = Graph.from_edges(n, edges)
    if graph.m != m:
        raise GraphParseError(path, f"header claims {m} edges, file has {graph.m}")
    return graph


def write_metis(graph, path):
    """Write a graph in METIS format."""
    with open(path, "w") as handle:
        handle.write(f"{graph.n} {graph.m}\n")
        for v in graph.vertices():
            handle.write(" ".join(str(w + 1) for w in graph.neighbors(v)) + "\n")


def read_dimacs(path):
    """Read an unweighted graph in DIMACS ``p edge`` format."""
    n = None
    edges = []
    for line_no, line in _read_lines(path):
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) < 4:
                raise GraphParseError(path, "truncated problem line "
                                      "(need 'p edge N M')", line=line_no)
            n = _parse_int(parts[2], path, line_no, "vertex count")
            if n < 0:
                raise GraphParseError(path, f"negative vertex count {n}",
                                      line=line_no)
        elif parts[0] in ("e", "a"):
            if n is None:
                raise GraphParseError(path, "edge before problem line",
                                      line=line_no)
            if len(parts) < 3:
                raise GraphParseError(path, "truncated edge line "
                                      "(need 'e U V')", line=line_no)
            u = _parse_int(parts[1], path, line_no, "endpoint") - 1
            v = _parse_int(parts[2], path, line_no, "endpoint") - 1
            for w in (u, v):
                if not (0 <= w < n):
                    raise GraphParseError(path, f"endpoint {w + 1} out of "
                                          f"range [1, {n}]", line=line_no)
            if u != v:
                edges.append((u, v))
    if n is None:
        raise GraphParseError(path, "missing problem line")
    return Graph.from_edges(n, edges)


def write_dimacs(graph, path):
    """Write an unweighted graph in DIMACS ``p edge`` format."""
    with open(path, "w") as handle:
        handle.write(f"p edge {graph.n} {graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"e {u + 1} {v + 1}\n")
