"""Read/write graphs in common text formats.

Supports the formats the paper's datasets ship in (SNAP/KONECT edge lists),
plus METIS and unweighted DIMACS, so a user can point the library at the
original downloads when hardware allows.
"""

from repro.exceptions import GraphError
from repro.graph.digraph import WeightedDigraph
from repro.graph.graph import Graph


def read_edge_list(path, comments=("#", "%"), directed=False, default_weight=1):
    """Read a whitespace-separated edge list.

    Vertex ids may be arbitrary non-negative integers; they are compacted to
    ``0..n-1`` preserving numeric order. Lines starting with any prefix in
    ``comments`` are skipped (SNAP uses ``#``, KONECT uses ``%``). A third
    column, when present and ``directed``, is the edge weight.

    Returns ``(graph, id_map)`` where ``id_map`` maps original -> dense ids.
    """
    raw_edges = []
    ids = set()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or any(line.startswith(c) for c in comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_no}: expected at least two columns")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{line_no}: non-integer endpoint") from exc
            weight = default_weight
            if directed and len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise GraphError(f"{path}:{line_no}: non-numeric weight") from exc
                if weight == int(weight):
                    weight = int(weight)
            ids.add(u)
            ids.add(v)
            raw_edges.append((u, v, weight))
    id_map = {old: new for new, old in enumerate(sorted(ids))}
    if directed:
        edges = [(id_map[u], id_map[v], w) for u, v, w in raw_edges if u != v]
        return WeightedDigraph.from_edges(len(id_map), edges), id_map
    edges = [(id_map[u], id_map[v]) for u, v, _ in raw_edges if u != v]
    return Graph.from_edges(len(id_map), edges), id_map


def write_edge_list(graph, path, header=True):
    """Write an undirected graph as a SNAP-style edge list."""
    with open(path, "w") as handle:
        if header:
            handle.write(f"# undirected graph: {graph.n} vertices, {graph.m} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_weighted_edge_list(path, comments=("#", "%"), default_weight=1):
    """Read a 3-column edge list as an undirected weighted graph.

    Like :func:`read_edge_list` but keeps the third column as the edge
    weight (``default_weight`` when absent). Returns
    ``(weighted_graph, id_map)``.
    """
    from repro.weighted.graph import WeightedGraph

    raw_edges = []
    ids = set()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or any(line.startswith(c) for c in comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_no}: expected at least two columns")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{line_no}: non-integer endpoint") from exc
            weight = default_weight
            if len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise GraphError(f"{path}:{line_no}: non-numeric weight") from exc
                if weight == int(weight):
                    weight = int(weight)
            ids.add(u)
            ids.add(v)
            raw_edges.append((u, v, weight))
    id_map = {old: new for new, old in enumerate(sorted(ids))}
    edges = [(id_map[u], id_map[v], w) for u, v, w in raw_edges if u != v]
    return WeightedGraph.from_edges(len(id_map), edges), id_map


def write_weighted_edge_list(graph, path, header=True):
    """Write a weighted undirected graph as a 3-column edge list."""
    with open(path, "w") as handle:
        if header:
            handle.write(f"# weighted graph: {graph.n} vertices, {graph.m} edges\n")
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")


def read_metis(path):
    """Read a graph in METIS format (1-indexed adjacency lines).

    Blank adjacency lines are legitimate — they are isolated vertices —
    so only comment lines are skipped.
    """
    with open(path) as handle:
        lines = [ln.strip() for ln in handle if not ln.startswith("%")]
    while lines and not lines[0]:
        lines.pop(0)
    if not lines:
        raise GraphError(f"{path}: empty METIS file")
    head = lines[0].split()
    if len(head) < 2:
        raise GraphError(f"{path}: malformed METIS header")
    n, m = int(head[0]), int(head[1])
    adjacency_lines = lines[1 : 1 + n]
    trailing = lines[1 + n :]
    if len(adjacency_lines) != n or any(trailing):
        raise GraphError(f"{path}: expected {n} adjacency lines, got {len(lines) - 1}")
    edges = []
    for u, line in enumerate(adjacency_lines):
        for token in line.split():
            v = int(token) - 1
            if not (0 <= v < n):
                raise GraphError(f"{path}: neighbor {token} out of range")
            if u != v:
                edges.append((u, v))
    graph = Graph.from_edges(n, edges)
    if graph.m != m:
        raise GraphError(f"{path}: header claims {m} edges, file has {graph.m}")
    return graph


def write_metis(graph, path):
    """Write a graph in METIS format."""
    with open(path, "w") as handle:
        handle.write(f"{graph.n} {graph.m}\n")
        for v in graph.vertices():
            handle.write(" ".join(str(w + 1) for w in graph.neighbors(v)) + "\n")


def read_dimacs(path):
    """Read an unweighted graph in DIMACS ``p edge`` format."""
    n = None
    edges = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphError(f"{path}:{line_no}: malformed problem line")
                n = int(parts[2])
            elif parts[0] in ("e", "a"):
                if n is None:
                    raise GraphError(f"{path}:{line_no}: edge before problem line")
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                if u != v:
                    edges.append((u, v))
    if n is None:
        raise GraphError(f"{path}: missing problem line")
    return Graph.from_edges(n, edges)


def write_dimacs(graph, path):
    """Write an unweighted graph in DIMACS ``p edge`` format."""
    with open(path, "w") as handle:
        handle.write(f"p edge {graph.n} {graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"e {u + 1} {v + 1}\n")
