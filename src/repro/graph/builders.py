"""Convenience constructors bridging other graph representations."""

from repro.exceptions import GraphError
from repro.graph.digraph import WeightedDigraph
from repro.graph.graph import Graph


def graph_from_adjacency_dict(adjacency):
    """Build a :class:`Graph` from ``{vertex: iterable_of_neighbors}``.

    Keys and neighbor ids must together form ``0..n-1``. The dict only needs
    to mention each edge in one direction; symmetry is restored here.
    """
    vertices = set(adjacency)
    for neighbors in adjacency.values():
        vertices.update(neighbors)
    if vertices and (min(vertices) < 0 or max(vertices) >= len(vertices)):
        raise GraphError("adjacency dict vertices must be dense 0..n-1")
    n = len(vertices)
    edges = [(u, v) for u, neighbors in adjacency.items() for v in neighbors]
    return Graph.from_edges(n, edges)


def graph_from_networkx(nx_graph):
    """Convert a networkx graph; node labels are relabelled to ``0..n-1``.

    Returns ``(graph, node_to_id)``. Used by tests that cross-check against
    networkx oracles; the library's own algorithms never go through here.
    """
    nodes = sorted(nx_graph.nodes(), key=repr)
    node_to_id = {node: i for i, node in enumerate(nodes)}
    edges = [(node_to_id[u], node_to_id[v]) for u, v in nx_graph.edges() if u != v]
    return Graph.from_edges(len(nodes), edges), node_to_id


def graph_to_networkx(graph):
    """Convert to a networkx graph (for oracle comparisons in tests)."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(graph.vertices())
    out.add_edges_from(graph.edges())
    return out


def digraph_to_networkx(digraph):
    """Convert a :class:`WeightedDigraph` to a weighted networkx DiGraph."""
    import networkx as nx

    out = nx.DiGraph()
    out.add_nodes_from(digraph.vertices())
    for u, v, w in digraph.edges():
        out.add_edge(u, v, weight=w)
    return out


def disjoint_union(*graphs):
    """Disjoint union of graphs, vertex ids shifted left to right."""
    edges = []
    offset = 0
    for graph in graphs:
        edges.extend((u + offset, v + offset) for u, v in graph.edges())
        offset += graph.n
    return Graph.from_edges(offset, edges)


def with_pendant_trees(graph, trees):
    """Attach pendant trees to a graph (crafting 1-shell structure).

    ``trees`` is an iterable of ``(attach_vertex, parent_list)`` pairs:
    ``parent_list[i]`` is the parent of new vertex ``i`` of the tree, where
    parent ``-1`` means the attach vertex in the base graph. Returns the
    grown graph; new vertices are appended after the originals. Used by
    tests and generators to create graphs with non-trivial 1-shells.
    """
    edges = list(graph.edges())
    next_id = graph.n
    for attach, parents in trees:
        if not (0 <= attach < graph.n):
            raise GraphError(f"attach vertex {attach} not in base graph")
        base = next_id
        for i, parent in enumerate(parents):
            if parent == -1:
                edges.append((attach, base + i))
            elif 0 <= parent < i:
                edges.append((base + parent, base + i))
            else:
                raise GraphError(f"tree parent {parent} must be -1 or an earlier tree vertex")
        next_id += len(parents)
    return Graph.from_edges(next_id, edges)


def undirect(digraph):
    """Forget directions and weights (the paper's directed->undirected step)."""
    edges = [(u, v) for u, v, _ in digraph.edges()]
    return Graph.from_edges(digraph.n, edges)


def digraph_from_graph(graph, weight=1):
    """Alias of :meth:`WeightedDigraph.from_undirected` for discoverability."""
    return WeightedDigraph.from_undirected(graph, weight=weight)
