"""Weighted directed simple graph, for the §7 extension.

Edge weights are strictly positive (the paper assumes ``l(e) > 0`` so that
Dijkstra-based hub pushing is well defined).
"""

from repro.exceptions import GraphError, VertexError


class WeightedDigraph:
    """An immutable weighted digraph on vertices ``0..n-1``.

    Adjacency is stored in both directions: ``out_neighbors(v)`` and
    ``in_neighbors(v)`` each yield ``(neighbor, weight)`` pairs sorted by
    neighbor id. Weights may be ints or floats but must be positive.
    """

    __slots__ = ("_out", "_in", "_m")

    def __init__(self, out_adjacency, in_adjacency):
        self._out = tuple(tuple(row) for row in out_adjacency)
        self._in = tuple(tuple(row) for row in in_adjacency)
        self._m = sum(len(row) for row in self._out)

    @classmethod
    def from_edges(cls, n, edges, dedup=True):
        """Build from an iterable of ``(u, v, weight)`` triples.

        ``(u, v)`` and ``(v, u)`` are distinct edges. Duplicate ``(u, v)``
        entries raise unless ``dedup``, in which case the *minimum* weight
        wins (the only duplicate a shortest-path algorithm can observe).
        """
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        weight_of = [dict() for _ in range(n)]
        for u, v, w in edges:
            if not (isinstance(u, int) and isinstance(v, int)):
                raise GraphError(f"edge endpoints must be ints, got ({u!r}, {v!r})")
            if not (0 <= u < n):
                raise VertexError(u, n)
            if not (0 <= v < n):
                raise VertexError(v, n)
            if u == v:
                raise GraphError(f"self-loop at vertex {u}")
            if w <= 0:
                raise GraphError(f"edge ({u}, {v}) has non-positive weight {w}")
            if v in weight_of[u]:
                if not dedup:
                    raise GraphError(f"duplicate edge ({u}, {v})")
                weight_of[u][v] = min(weight_of[u][v], w)
            else:
                weight_of[u][v] = w
        out_adjacency = [sorted(row.items()) for row in weight_of]
        in_rows = [[] for _ in range(n)]
        for u, row in enumerate(out_adjacency):
            for v, w in row:
                in_rows[v].append((u, w))
        in_adjacency = [sorted(row) for row in in_rows]
        return cls(out_adjacency, in_adjacency)

    @classmethod
    def from_undirected(cls, graph, weight=1):
        """Lift an undirected :class:`~repro.graph.graph.Graph`.

        Each undirected edge becomes two directed edges of weight
        ``weight``, which makes directed results directly comparable with
        the undirected pipeline in tests.
        """
        edges = []
        for u, v in graph.edges():
            edges.append((u, v, weight))
            edges.append((v, u, weight))
        return cls.from_edges(graph.n, edges)

    # -- accessors -----------------------------------------------------------

    @property
    def n(self):
        """Number of vertices."""
        return len(self._out)

    @property
    def m(self):
        """Number of directed edges."""
        return self._m

    def out_neighbors(self, v):
        """Sorted tuple of ``(successor, weight)`` pairs."""
        self._check_vertex(v)
        return self._out[v]

    def in_neighbors(self, v):
        """Sorted tuple of ``(predecessor, weight)`` pairs."""
        self._check_vertex(v)
        return self._in[v]

    def out_degree(self, v):
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v):
        self._check_vertex(v)
        return len(self._in[v])

    def vertices(self):
        return range(len(self._out))

    def edges(self):
        """Yield every directed edge as ``(u, v, weight)``."""
        for u, row in enumerate(self._out):
            for v, w in row:
                yield u, v, w

    def weight(self, u, v):
        """Weight of edge ``(u, v)``; ``None`` when absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        for x, w in self._out[u]:
            if x == v:
                return w
            if x > v:
                return None
        return None

    def reverse(self):
        """The digraph with every edge flipped (used for backward searches)."""
        return WeightedDigraph(self._in, self._out)

    def induced_subgraph(self, keep):
        """Induced sub-digraph on ``keep``; see :meth:`Graph.induced_subgraph`."""
        keep_sorted = sorted(set(keep))
        for v in keep_sorted:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(keep_sorted)}
        edges = []
        for old in keep_sorted:
            for v, w in self._out[old]:
                if v in old_to_new:
                    edges.append((old_to_new[old], old_to_new[v], w))
        return WeightedDigraph.from_edges(len(keep_sorted), edges), old_to_new

    def __eq__(self, other):
        return isinstance(other, WeightedDigraph) and self._out == other._out

    def __hash__(self):
        return hash(self._out)

    def __repr__(self):
        return f"WeightedDigraph(n={self.n}, m={self.m})"

    def _check_vertex(self, v):
        if not (isinstance(v, int) and 0 <= v < len(self._out)):
            raise VertexError(v, len(self._out))
