"""Undirected, unweighted, simple graph.

This is the substrate every algorithm in the paper runs on (§2): vertices
are dense integers ``0..n-1``; the adjacency of each vertex is a sorted
tuple, so the structure is immutable after construction and neighbor scans
are cache-friendly Python loops. :meth:`Graph.csr` additionally exposes a
cached numpy CSR view for the vectorized kernels in :mod:`repro.kernels`.
"""

from bisect import bisect_left

from repro.exceptions import GraphError, VertexError


class Graph:
    """An immutable undirected simple graph on vertices ``0..n-1``.

    Construct with :meth:`from_edges` (the validating front door) or pass a
    prebuilt adjacency to ``__init__`` (trusted internal path used by the
    reductions, which already produce clean adjacencies).
    """

    __slots__ = ("_adj", "_m", "_csr")

    def __init__(self, adjacency):
        self._adj = tuple(tuple(neighbors) for neighbors in adjacency)
        self._m = sum(len(neighbors) for neighbors in self._adj) // 2
        self._csr = None

    @classmethod
    def from_edges(cls, n, edges, allow_self_loops=False, dedup=True):
        """Build a graph on ``n`` vertices from an iterable of ``(u, v)``.

        Self-loops raise :class:`GraphError` unless ``allow_self_loops``
        (they are then *dropped*, since a simple graph cannot hold them, but
        shortest-path semantics are unaffected). Duplicate edges are merged
        when ``dedup`` is true and raise otherwise.
        """
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        seen = [set() for _ in range(n)]
        for u, v in edges:
            if not (isinstance(u, int) and isinstance(v, int)):
                raise GraphError(f"edge endpoints must be ints, got ({u!r}, {v!r})")
            if not (0 <= u < n):
                raise VertexError(u, n)
            if not (0 <= v < n):
                raise VertexError(v, n)
            if u == v:
                if allow_self_loops:
                    continue
                raise GraphError(f"self-loop at vertex {u}")
            if v in seen[u]:
                if dedup:
                    continue
                raise GraphError(f"duplicate edge ({u}, {v})")
            seen[u].add(v)
            seen[v].add(u)
        return cls(sorted(neighbors) for neighbors in seen)

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self):
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self):
        """Number of (undirected) edges."""
        return self._m

    def neighbors(self, v):
        """Sorted tuple of the neighbors of ``v`` (``nbr(v)`` in the paper)."""
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v):
        """Degree of ``v`` (``deg(v)`` in the paper)."""
        self._check_vertex(v)
        return len(self._adj[v])

    def vertices(self):
        """Range over all vertex ids."""
        return range(len(self._adj))

    def edges(self):
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adj):
            for v in neighbors:
                if u < v:
                    yield u, v

    def has_edge(self, u, v):
        """Whether ``(u, v)`` is an edge; O(log deg) bisect over sorted adjacency."""
        self._check_vertex(u)
        self._check_vertex(v)
        row = self._adj[u]
        i = bisect_left(row, v)
        return i < len(row) and row[i] == v

    @property
    def adjacency(self):
        """The raw tuple-of-tuples adjacency (read-only by construction)."""
        return self._adj

    def csr(self):
        """Cached CSR view ``(indptr, indices)`` as int64 numpy arrays.

        ``indices[indptr[v]:indptr[v + 1]]`` are the (sorted) neighbors of
        ``v``. Built once on first use and shared by every vectorized kernel
        (:mod:`repro.kernels`); both arrays are marked read-only so the view
        cannot drift from the tuple adjacency.
        """
        if self._csr is None:
            import numpy as np

            n = len(self._adj)
            degrees = np.fromiter(
                (len(neighbors) for neighbors in self._adj), np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            indices = np.fromiter(
                (w for neighbors in self._adj for w in neighbors),
                np.int64,
                count=int(indptr[-1]),
            )
            indptr.setflags(write=False)
            indices.setflags(write=False)
            self._csr = (indptr, indices)
        return self._csr

    # -- derived views -----------------------------------------------------

    def induced_subgraph(self, keep):
        """Induced subgraph on ``keep``, plus the old->new vertex mapping.

        Returns ``(subgraph, old_to_new)`` where ``old_to_new`` maps each
        kept original id to its dense id in the subgraph (and omits dropped
        vertices). Vertices keep their relative order.
        """
        keep_sorted = sorted(set(keep))
        for v in keep_sorted:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(keep_sorted)}
        adjacency = []
        for old in keep_sorted:
            adjacency.append(
                sorted(old_to_new[w] for w in self._adj[old] if w in old_to_new)
            )
        return Graph(adjacency), old_to_new

    def relabeled(self, permutation):
        """Return the graph with vertex ``v`` renamed ``permutation[v]``."""
        if sorted(permutation) != list(range(self.n)):
            raise GraphError("permutation must be a bijection on the vertex set")
        adjacency = [None] * self.n
        for v, neighbors in enumerate(self._adj):
            adjacency[permutation[v]] = sorted(permutation[w] for w in neighbors)
        return Graph(adjacency)

    def degree_sequence(self):
        """Degrees of all vertices, as a list indexed by vertex id."""
        return [len(neighbors) for neighbors in self._adj]

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other):
        return isinstance(other, Graph) and self._adj == other._adj

    def __hash__(self):
        return hash(self._adj)

    def __repr__(self):
        return f"Graph(n={self.n}, m={self.m})"

    def _check_vertex(self, v):
        if not (isinstance(v, int) and 0 <= v < len(self._adj)):
            raise VertexError(v, len(self._adj))
