"""k-core decomposition and the 1-shell structure of §4.1.

The *k-core* is the maximal subgraph in which every vertex has degree at
least ``k``; the *1-shell* is the set of vertices in the 1-core but not the
2-core. Every connected component of the 1-shell is a tree hanging off the
2-core through at most one edge, which is what makes the shell reduction
sound (Lemma 4.2).
"""

from collections import deque


def core_numbers(graph):
    """Core number of every vertex, by the linear peeling algorithm.

    ``core[v]`` is the largest ``k`` such that ``v`` belongs to the k-core.
    Isolated vertices have core number 0.
    """
    n = graph.n
    degree = [graph.degree(v) for v in range(n)]
    max_degree = max(degree, default=0)
    bins = [0] * (max_degree + 1)
    for d in degree:
        bins[d] += 1
    start = 0
    for d in range(max_degree + 1):
        bins[d], start = start, start + bins[d]
    position = [0] * n
    ordered = [0] * n
    for v in range(n):
        position[v] = bins[degree[v]]
        ordered[position[v]] = v
        bins[degree[v]] += 1
    for d in range(max_degree, 0, -1):
        bins[d] = bins[d - 1]
    if max_degree >= 0:
        bins[0] = 0
    core = degree[:]
    for i in range(n):
        v = ordered[i]
        for w in graph.neighbors(v):
            if core[w] > core[v]:
                dw = core[w]
                pw = position[w]
                first = bins[dw]
                u = ordered[first]
                if u != w:
                    ordered[first], ordered[pw] = w, u
                    position[w], position[u] = first, pw
                bins[dw] += 1
                core[w] -= 1
    return core


def k_core_vertices(graph, k):
    """Sorted list of vertices whose core number is at least ``k``."""
    return [v for v, c in enumerate(core_numbers(graph)) if c >= k]


def one_shell_vertices(graph):
    """Vertices in the 1-core but not the 2-core (the paper's 1-shell)."""
    return [v for v, c in enumerate(core_numbers(graph)) if c == 1]


def one_shell_components(graph):
    """Decompose the 1-shell into its tree components with access vertices.

    Returns a list of ``(component, access)`` pairs where ``component`` is a
    sorted list of 1-shell vertices and ``access`` is the 2-core vertex the
    component attaches to (``a(cc)`` in §4.1), or a vertex of the component
    itself when the component is isolated from the 2-core.
    """
    core = core_numbers(graph)
    in_shell = [c == 1 for c in core]
    seen = [False] * graph.n
    out = []
    for start in graph.vertices():
        if not in_shell[start] or seen[start]:
            continue
        seen[start] = True
        component = [start]
        access = None
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if in_shell[w]:
                    if not seen[w]:
                        seen[w] = True
                        component.append(w)
                        queue.append(w)
                elif core[w] >= 2:
                    # The unique edge from this tree into the 2-core.
                    access = w
        component.sort()
        if access is None:
            access = component[0]
        out.append((component, access))
    return out


def degeneracy(graph):
    """The degeneracy of the graph (the largest core number)."""
    return max(core_numbers(graph), default=0)
