"""Graph traversals: BFS distances/counts, BFS trees, Dijkstra counting.

These are the reference algorithms the hub labelings are validated against,
and the online baselines of the paper's evaluation (the "BFS Time" column
of Table 3).
"""

import heapq
from collections import deque

INF = float("inf")


def bfs_distances(graph, source):
    """Distances (edge counts) from ``source``; ``inf`` for unreachable."""
    dist = [INF] * graph.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for w in graph.neighbors(v):
            if dist[w] is INF:
                dist[w] = dv + 1
                queue.append(w)
    return dist


def bfs_count_from(graph, source, deadline=None):
    """Return ``(dist, count)`` arrays from ``source``.

    ``count[v]`` is ``spc(source, v)`` — the number of shortest paths —
    computed by the standard BFS counting recurrence (Brandes' Σ).
    ``deadline`` (duck-typed ``check()``) is consulted every few hundred
    dequeues, like :func:`spc_bfs`.
    """
    if deadline is not None:
        deadline.check()
    dist = [INF] * graph.n
    count = [0] * graph.n
    dist[source] = 0
    count[source] = 1
    queue = deque([source])
    processed = 0
    while queue:
        v = queue.popleft()
        if deadline is not None:
            processed += 1
            if not processed & 0xFF:
                deadline.check()
        dv = dist[v]
        cv = count[v]
        for w in graph.neighbors(v):
            dw = dist[w]
            if dw is INF:
                dist[w] = dv + 1
                count[w] = cv
                queue.append(w)
            elif dw == dv + 1:
                count[w] += cv
    return dist, count


def spc_bfs(graph, s, t, deadline=None):
    """Online shortest-path count ``spc(s, t)`` by a single BFS from ``s``.

    Returns ``(distance, count)``; ``(inf, 0)`` when disconnected. This is
    the online baseline of Table 3 and the test oracle everywhere.
    ``deadline`` (any object with a ``check()`` method, e.g.
    :class:`repro.serving.deadline.Deadline`) is consulted every few
    hundred dequeues so a bounded-latency caller never waits for a full
    sweep of a huge component.
    """
    if s == t:
        return 0, 1
    if deadline is not None:
        deadline.check()  # an already-blown budget must not start a sweep
    dist = [INF] * graph.n
    count = [0] * graph.n
    dist[s] = 0
    count[s] = 1
    queue = deque([s])
    target_dist = INF
    processed = 0
    while queue:
        v = queue.popleft()
        if deadline is not None:
            processed += 1
            if not processed & 0xFF:
                deadline.check()
        dv = dist[v]
        if dv >= target_dist:
            # Everything at the target's level is settled; counts into t
            # are final because all predecessors were dequeued earlier.
            break
        cv = count[v]
        for w in graph.neighbors(v):
            dw = dist[w]
            if dw is INF:
                dist[w] = dv + 1
                count[w] = cv
                if w == t:
                    target_dist = dv + 1
                queue.append(w)
            elif dw == dv + 1:
                count[w] += cv
    return (dist[t], count[t]) if count[t] else (INF, 0)


def bfs_tree(graph, source, blocked=None):
    """BFS tree from ``source`` avoiding ``blocked`` vertices.

    Returns ``(parent, order)``: ``parent[v]`` is the tree parent
    (``source`` maps to itself; untouched vertices map to ``None``), and
    ``order`` lists visited vertices in dequeue order. Used by the
    significant-path ordering (§3.4).
    """
    blocked = blocked or ()
    parent = [None] * graph.n
    parent[source] = source
    order = [source]
    queue = deque([source])
    block = set(blocked)
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if parent[w] is None and w not in block:
                parent[w] = v
                order.append(w)
                queue.append(w)
    return parent, order


def eccentricity(graph, source):
    """Largest finite BFS distance from ``source`` (0 for isolated vertices)."""
    dist = bfs_distances(graph, source)
    finite = [d for d in dist if d is not INF]
    return max(finite) if finite else 0


def approximate_diameter(graph, sweeps=4, seed=0):
    """Lower-bound the diameter by repeated double sweeps.

    Classic 2-sweep heuristic: BFS from a vertex, then from the farthest
    vertex found; the largest eccentricity observed is returned. Exact on
    trees, a good lower bound elsewhere — enough for the highway-dimension
    ordering's ``log D`` scale count (§5.3).
    """
    from repro.utils.rng import ensure_rng

    if graph.n == 0:
        return 0
    rng = ensure_rng(seed)
    best = 0
    start = 0
    for _ in range(max(1, sweeps)):
        dist = bfs_distances(graph, start)
        far, far_dist = start, 0
        for v, d in enumerate(dist):
            if d is not INF and d > far_dist:
                far, far_dist = v, d
        best = max(best, far_dist)
        start = far if far_dist else rng.randrange(graph.n)
    return best


def dijkstra_count_from(digraph, source, forward=True):
    """Weighted shortest distances and path counts from ``source``.

    ``forward=True`` follows out-edges (paths *from* the source);
    ``forward=False`` follows in-edges (paths *to* the source). Returns
    ``(dist, count)``. Strictly positive weights are assumed, which makes
    the count of a vertex final when it is popped.
    """
    dist = [INF] * digraph.n
    count = [0] * digraph.n
    dist[source] = 0
    count[source] = 1
    heap = [(0, source)]
    settled = [False] * digraph.n
    neighbors = digraph.out_neighbors if forward else digraph.in_neighbors
    while heap:
        dv, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        cv = count[v]
        for w, weight in neighbors(v):
            alt = dv + weight
            dw = dist[w]
            if alt < dw:
                dist[w] = alt
                count[w] = cv
                heapq.heappush(heap, (alt, w))
            elif alt == dw:
                count[w] += cv
    return dist, count


def spc_dijkstra(digraph, s, t):
    """Weighted online count: ``(distance, count)`` for paths ``s -> t``."""
    if s == t:
        return 0, 1
    dist, count = dijkstra_count_from(digraph, s, forward=True)
    return (dist[t], count[t]) if count[t] else (INF, 0)
