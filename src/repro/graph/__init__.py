"""Graph substrate: graph types, traversals, decompositions and I/O."""

from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.cores import core_numbers, k_core_vertices, one_shell_components
from repro.graph.digraph import WeightedDigraph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_count_from,
    bfs_distances,
    bfs_tree,
    dijkstra_count_from,
    eccentricity,
    spc_bfs,
)

__all__ = [
    "Graph",
    "WeightedDigraph",
    "bfs_distances",
    "bfs_count_from",
    "bfs_tree",
    "dijkstra_count_from",
    "eccentricity",
    "spc_bfs",
    "connected_components",
    "is_connected",
    "largest_component",
    "core_numbers",
    "k_core_vertices",
    "one_shell_components",
]
