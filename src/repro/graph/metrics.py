"""Descriptive graph statistics for dataset reports.

Used by the CLI's ``info`` command and the harness to characterise the
synthetic analogs the way the paper's Table 3 characterises its graphs
(plus the structural signals the reductions care about: 1-shell mass,
twin mass, degeneracy).
"""

from repro.graph.components import connected_components
from repro.graph.cores import core_numbers
from repro.graph.traversal import approximate_diameter
from repro.utils.rng import ensure_rng


def density(graph):
    """``2m / (n(n-1))``; 0 for graphs with fewer than two vertices."""
    if graph.n < 2:
        return 0.0
    return 2.0 * graph.m / (graph.n * (graph.n - 1))


def average_degree(graph):
    """``2m / n``; 0 for the empty graph."""
    if graph.n == 0:
        return 0.0
    return 2.0 * graph.m / graph.n


def degree_histogram(graph):
    """``counts[d]`` = number of vertices with degree ``d``."""
    counts = {}
    for v in graph.vertices():
        d = graph.degree(v)
        counts[d] = counts.get(d, 0) + 1
    if not counts:
        return []
    out = [0] * (max(counts) + 1)
    for d, c in counts.items():
        out[d] = c
    return out


def clustering_coefficient(graph, v):
    """Local clustering of ``v``: closed wedges over wedges."""
    neighbors = graph.neighbors(v)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for u in neighbors:
        for w in graph.neighbors(u):
            if w > u and w in neighbor_set:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph, samples=None, seed=0):
    """Mean local clustering; optionally over a vertex sample."""
    if graph.n == 0:
        return 0.0
    if samples is None or samples >= graph.n:
        vertices = list(graph.vertices())
    else:
        rng = ensure_rng(seed)
        vertices = [rng.randrange(graph.n) for _ in range(samples)]
    total = sum(clustering_coefficient(graph, v) for v in vertices)
    return total / len(vertices)


def graph_summary(graph, diameter_sweeps=4):
    """One-stop dataset characterisation (the report row for a graph)."""
    cores = core_numbers(graph)
    components = connected_components(graph)
    shell = sum(1 for c in cores if c == 1)
    return {
        "n": graph.n,
        "m": graph.m,
        "density": density(graph),
        "avg_degree": average_degree(graph),
        "max_degree": max(graph.degree_sequence(), default=0),
        "degeneracy": max(cores, default=0),
        "one_shell": shell,
        "one_shell_fraction": shell / graph.n if graph.n else 0.0,
        "components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
        "approx_diameter": approximate_diameter(graph, sweeps=diameter_sweeps),
        "avg_clustering": average_clustering(graph, samples=min(graph.n, 400)),
    }
