"""Connected components of undirected graphs."""

from collections import deque


def connected_components(graph):
    """List of components, each a sorted list of vertex ids."""
    seen = [False] * graph.n
    components = []
    for start in graph.vertices():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    queue.append(w)
        component.sort()
        components.append(component)
    return components


def component_ids(graph):
    """Array mapping each vertex to the index of its component."""
    ids = [-1] * graph.n
    for index, component in enumerate(connected_components(graph)):
        for v in component:
            ids[v] = index
    return ids


def is_connected(graph):
    """Whether the graph has exactly one connected component (or is empty)."""
    if graph.n == 0:
        return True
    return len(connected_components(graph)) == 1


def largest_component(graph):
    """Induced subgraph on the largest component, plus the old->new map.

    The paper's datasets are used whole (queries across components simply
    count zero paths), but generators use this to hand out connected
    instances when an experiment wants them.
    """
    components = connected_components(graph)
    if not components:
        return graph, {}
    biggest = max(components, key=len)
    return graph.induced_subgraph(biggest)
