"""The composed reduced indexes: HP-SPC+ and HP-SPC* (§4, §6).

Reductions compose left to right: the 1-shell cut produces ``G_s``, the
equivalence quotient produces ``G_e`` (with multiplicities), HP-SPC runs
on the final core graph, and the independent-set reduction drops the
labels of sink-ranked vertices. Queries unwind the same stack:

1. ``shr(s) == shr(t)``       -> unique tree path (Lemma 4.2);
2. ``eqr(s') == eqr(t')``     -> O(1) twin answer (Lemma 4.3);
3. otherwise                  -> label join on the core graph, through the
   :class:`~repro.reductions.independent_set.ISQueryEngine` when labels
   were dropped, with λ multiplicities when classes were merged.

The paper's named variants:

* ``HP-SPC``  — no reductions (:class:`repro.core.index.SPCIndex`);
* ``HP-SPC+`` — ``("shell", "equivalence")``;
* ``HP-SPC*`` — ``("shell", "equivalence", "independent-set")``.
"""

import time

from repro.core.hp_spc import BuildStats, build_labels
from repro.core.ordering import DegreeOrdering, StaticOrdering, resolve_ordering
from repro.reductions.equivalence import EquivalenceReduction
from repro.reductions.independent_set import ISQueryEngine, select_independent_set
from repro.reductions.shell import ShellReduction

INF = float("inf")

VALID_REDUCTIONS = ("shell", "equivalence", "independent-set")


class ReducedSPCIndex:
    """HP-SPC with any combination of the §4 reductions applied.

    Query API matches :class:`~repro.core.index.SPCIndex`: ``count``,
    ``distance``, ``count_with_distance`` — all in *original* vertex ids.
    """

    def __init__(self, graph, shell, equivalence, labels, engine, scheme, build_stats=None, build_seconds=None):
        self._graph = graph
        self._shell = shell
        self._equiv = equivalence
        self._labels = labels
        self._engine = engine
        self._scheme = scheme
        self._build_stats = build_stats
        self._build_seconds = build_seconds

    @classmethod
    def build(
        cls,
        graph,
        ordering="degree",
        reductions=("shell", "equivalence", "independent-set"),
        scheme="filtered",
        collect_stats=False,
    ):
        """Reduce, label, and wrap. See the module docstring for semantics."""
        reductions = tuple(reductions)
        for name in reductions:
            if name not in VALID_REDUCTIONS:
                raise ValueError(f"unknown reduction {name!r}; expected {VALID_REDUCTIONS}")
        if scheme not in ("filtered", "direct"):
            raise ValueError(f"unknown query scheme {scheme!r}")
        started = time.perf_counter()
        shell = ShellReduction.compute(graph) if "shell" in reductions else None
        core = shell.graph_reduced if shell else graph
        equiv = EquivalenceReduction.compute(core) if "equivalence" in reductions else None
        if equiv is not None:
            core = equiv.graph_reduced
        multiplicity = equiv.multiplicity if equiv else None

        stats = BuildStats() if collect_stats else None
        use_is = "independent-set" in reductions
        strategy = resolve_ordering(ordering)
        if use_is and isinstance(strategy, (DegreeOrdering, StaticOrdering)):
            # Static order: I is known before construction, so skip the
            # labels *and* the pruning joins of I vertices (§4.3 case (1)).
            if isinstance(strategy, DegreeOrdering):
                order = DegreeOrdering.static_order(core)
            else:
                order = list(strategy._order)
            rank_of = [0] * core.n
            for rank, v in enumerate(order):
                rank_of[v] = rank
            in_is = select_independent_set(core, rank_of)
            labels = build_labels(
                core, ordering=order, multiplicity=multiplicity, skip=in_is, stats=stats
            )
        elif use_is:
            # Online order (significant-path): labels are built first and
            # dropped once membership in I is known (§4.3 case (2)).
            labels = build_labels(core, ordering=strategy, multiplicity=multiplicity, stats=stats)
            in_is = select_independent_set(core, labels.rank_of)
            for v in core.vertices():
                if in_is[v]:
                    labels.drop_label(v)
        else:
            labels = build_labels(core, ordering=strategy, multiplicity=multiplicity, stats=stats)
            in_is = [False] * core.n
        engine = ISQueryEngine(labels, core, in_is, multiplicity)
        elapsed = time.perf_counter() - started
        return cls(graph, shell, equiv, labels, engine, scheme,
                   build_stats=stats, build_seconds=elapsed)

    # -- queries ---------------------------------------------------------------

    def count_with_distance(self, s, t):
        """``(sd(s,t), spc(s,t))`` in original vertex ids."""
        if s == t:
            return 0, 1
        offset = 0
        if self._shell is not None:
            if self._shell.same_representative(s, t):
                return self._shell.tree_distance(s, t), 1
            offset = self._shell.depth(s) + self._shell.depth(t)
            s = self._shell.project(s)
            t = self._shell.project(t)
        if self._equiv is not None:
            rs = self._equiv.eqr(s)
            rt = self._equiv.eqr(t)
            if rs == rt:
                dist, cnt = self._equiv.same_class_answer(s, t)
                return (dist + offset if cnt else INF), cnt
            s = self._equiv.old_to_new[rs]
            t = self._equiv.old_to_new[rt]
        dist, cnt = self._engine.query(s, t, self._scheme)
        if cnt == 0:
            return INF, 0
        return dist + offset, cnt

    def count(self, s, t):
        """``spc(s, t)``."""
        return self.count_with_distance(s, t)[1]

    def distance(self, s, t):
        """``sd(s, t)``; ``inf`` when disconnected."""
        return self.count_with_distance(s, t)[0]

    # -- introspection -------------------------------------------------------------

    @property
    def labels(self):
        """The core-graph :class:`~repro.core.labels.LabelSet`."""
        return self._labels

    @property
    def shell(self):
        return self._shell

    @property
    def equivalence(self):
        return self._equiv

    @property
    def engine(self):
        return self._engine

    @property
    def scheme(self):
        return self._scheme

    @property
    def build_stats(self):
        return self._build_stats

    @property
    def build_seconds(self):
        return self._build_seconds

    def with_scheme(self, scheme):
        """The same index answering with the other §4.3 query scheme."""
        if scheme not in ("filtered", "direct"):
            raise ValueError(f"unknown query scheme {scheme!r}")
        return ReducedSPCIndex(
            self._graph, self._shell, self._equiv, self._labels, self._engine,
            scheme, self._build_stats, self._build_seconds,
        )

    def total_entries(self):
        return self._labels.total_entries()

    def size_bytes(self, entry_bits=64):
        return self._labels.packed_size_bytes(entry_bits)

    def core_graph_size(self):
        """``(n, m)`` of the graph the labels were actually built on."""
        graph = self._engine._graph
        return graph.n, graph.m

    def __repr__(self):
        parts = []
        if self._shell is not None:
            parts.append("shell")
        if self._equiv is not None:
            parts.append("equivalence")
        if any(self._engine.independent_set):
            parts.append("independent-set")
        return (
            f"ReducedSPCIndex(n={self._graph.n}, reductions={'+'.join(parts) or 'none'}, "
            f"entries={self._labels.total_entries()})"
        )


def reduction_report(graph):
    """Fractions of vertices removed by shell / equiv / shell+equiv (Exp-4).

    Returns a dict with absolute counts and fractions for the three
    configurations of Figure 8.
    """
    n = graph.n or 1
    shell = ShellReduction.compute(graph)
    equiv_only = EquivalenceReduction.compute(graph)
    equiv_after_shell = EquivalenceReduction.compute(shell.graph_reduced)
    both_removed = shell.removed_count + equiv_after_shell.removed_count
    return {
        "n": graph.n,
        "shell_removed": shell.removed_count,
        "equiv_removed": equiv_only.removed_count,
        "both_removed": both_removed,
        "shell_fraction": shell.removed_count / n,
        "equiv_fraction": equiv_only.removed_count / n,
        "both_fraction": both_removed / n,
    }
