"""Reduction by 1-shell (§4.1).

Every connected component of the 1-shell (vertices in the 1-core but not
the 2-core) is a tree attached to the rest of the graph by at most one
edge. Cutting those trees preserves all shortest paths within the core
(Lemma 4.2): the representative ``shr(v)`` of a shell vertex is the access
vertex ``a(cc)`` its tree hangs from, and

* ``shr(s) == shr(t)``  ⟹  ``spc(s, t) = 1`` (tree paths are unique);
* otherwise ``spc_G(s, t) = spc_{G_s}(shr(s), shr(t))`` and
  ``sd_G(s, t) = depth(s) + depth(t) + sd_{G_s}(shr(s), shr(t))``.
"""

from collections import deque

from repro.graph.cores import one_shell_components

INF = float("inf")


class ShellReduction:
    """The computed 1-shell structure plus the reduced graph ``G_s``.

    Attributes of interest: :attr:`graph_reduced` (``G_s`` with dense
    ids), :meth:`shr`, :meth:`depth`, and the id maps ``old_to_new`` /
    ``new_to_old`` between the original graph and ``G_s``.
    """

    def __init__(self, graph, shr, depth, parent, graph_reduced, old_to_new):
        self._graph = graph
        self._shr = shr
        self._depth = depth
        self._parent = parent
        self.graph_reduced = graph_reduced
        self.old_to_new = old_to_new
        self.new_to_old = [None] * graph_reduced.n
        for old, new in old_to_new.items():
            self.new_to_old[new] = old

    @classmethod
    def compute(cls, graph):
        """Identify the 1-shell, root each tree at its access vertex, cut."""
        n = graph.n
        shr = list(range(n))
        depth = [0] * n
        parent = list(range(n))
        for component, access in one_shell_components(graph):
            members = set(component)
            queue = deque([access])
            # BFS from the access vertex, restricted to the tree: assigns
            # shr / depth / parent for every shell vertex of the component.
            seen_local = {access}
            while queue:
                u = queue.popleft()
                for w in graph.neighbors(u):
                    if w in members and w not in seen_local:
                        seen_local.add(w)
                        parent[w] = u
                        depth[w] = depth[u] + 1
                        shr[w] = access
                        queue.append(w)
        keep = [v for v in range(n) if shr[v] == v]
        reduced, old_to_new = graph.induced_subgraph(keep)
        return cls(graph, shr, depth, parent, reduced, old_to_new)

    # -- structure accessors ---------------------------------------------------

    def shr(self, v):
        """The 1-shell-based representative of ``v`` (original ids)."""
        return self._shr[v]

    def depth(self, v):
        """Tree distance from ``v`` to ``shr(v)`` (0 outside the shell)."""
        return self._depth[v]

    def removed_vertices(self):
        """Original ids of the vertices cut away with the shell."""
        return [v for v in range(self._graph.n) if self._shr[v] != v]

    @property
    def removed_count(self):
        return self._graph.n - self.graph_reduced.n

    # -- query pieces ------------------------------------------------------------

    def same_representative(self, s, t):
        return self._shr[s] == self._shr[t]

    def tree_distance(self, s, t):
        """Distance between ``s`` and ``t`` when ``shr(s) == shr(t)``.

        Both parent chains end at the shared access vertex, so the classic
        walk-up-to-LCA works across sibling trees too.
        """
        if self._shr[s] != self._shr[t]:
            raise ValueError("tree_distance requires shr(s) == shr(t)")
        a, b = s, t
        da, db = self._depth[a], self._depth[b]
        steps = 0
        while da > db:
            a = self._parent[a]
            da -= 1
            steps += 1
        while db > da:
            b = self._parent[b]
            db -= 1
            steps += 1
        while a != b:
            a = self._parent[a]
            b = self._parent[b]
            steps += 2
        return steps

    def project(self, v):
        """Map an original vertex to its ``G_s`` id (``shr`` then densify)."""
        return self.old_to_new[self._shr[v]]

    def __repr__(self):
        return (
            f"ShellReduction(n={self._graph.n} -> {self.graph_reduced.n}, "
            f"removed={self.removed_count})"
        )
