"""Reduction by neighborhood equivalence (§4.2).

``u ≡ v`` iff ``nbr(u)\\{v} == nbr(v)\\{u}``. Every non-singleton class is
either an independent set (identical open neighborhoods) or induces a
clique (identical closed neighborhoods) — and no vertex can sit in both
kinds at once, so two hashing passes find the full partition in linear
time.

Only class representatives are kept (graph ``G_e``); the lost counting
information is restored by λ path weights: a shortest path in ``G_e``
stands for ``∏ |eqc(v_i)|`` original paths over its internal vertices.
HP-SPC propagates the weights via the ``multiplicity`` hook, and queries
multiply hub terms by ``|eqc(h)|`` for non-endpoint hubs (Lemma 4.4).
Same-class queries are answered in O(1) by Lemma 4.3.
"""

INF = float("inf")


class EquivalenceReduction:
    """The equivalence partition plus the reduced graph ``G_e``.

    ``eqr``/``eqc_size``/``is_clique_class`` are keyed by the *input*
    graph's ids; ``old_to_new`` maps representative ids to dense ``G_e``
    ids and :attr:`multiplicity` carries ``|eqc(·)|`` per ``G_e`` vertex.
    """

    def __init__(self, graph, eqr, class_size, clique_class, graph_reduced, old_to_new):
        self._graph = graph
        self._eqr = eqr
        self._class_size = class_size
        self._clique_class = clique_class
        self.graph_reduced = graph_reduced
        self.old_to_new = old_to_new
        self.new_to_old = [None] * graph_reduced.n
        for old, new in old_to_new.items():
            self.new_to_old[new] = old
        self.multiplicity = [0] * graph_reduced.n
        for old, new in old_to_new.items():
            self.multiplicity[new] = class_size[old]

    @classmethod
    def compute(cls, graph):
        """Partition by ≡ with two hashing passes and build ``G_e``.

        Pass 1 groups identical *open* neighborhoods (non-adjacent classes,
        necessarily independent sets); pass 2 groups identical *closed*
        neighborhoods (adjacent classes, necessarily cliques). The two
        kinds cannot overlap on non-singleton classes, so the union of both
        passes' size-≥2 groups plus leftover singletons is the partition.
        """
        n = graph.n
        open_groups = {}
        for v in range(n):
            open_groups.setdefault(graph.neighbors(v), []).append(v)
        assigned = [False] * n
        eqr = list(range(n))
        class_size = [1] * n
        clique_class = [False] * n
        for members in open_groups.values():
            if len(members) < 2:
                continue
            rep = members[0]  # members are in increasing id order
            for v in members:
                assigned[v] = True
                eqr[v] = rep
                class_size[v] = len(members)
        closed_groups = {}
        for v in range(n):
            if assigned[v]:
                continue
            key = tuple(sorted(graph.neighbors(v) + (v,)))
            closed_groups.setdefault(key, []).append(v)
        for members in closed_groups.values():
            if len(members) < 2:
                continue
            rep = members[0]
            for v in members:
                eqr[v] = rep
                class_size[v] = len(members)
                clique_class[v] = True
        keep = [v for v in range(n) if eqr[v] == v]
        reduced, old_to_new = graph.induced_subgraph(keep)
        return cls(graph, eqr, class_size, clique_class, reduced, old_to_new)

    # -- partition accessors -----------------------------------------------------

    def eqr(self, v):
        """Representative of ``eqc(v)`` (input-graph ids)."""
        return self._eqr[v]

    def eqc_size(self, v):
        """``|eqc(v)|``."""
        return self._class_size[v]

    def is_clique_class(self, v):
        """Whether ``eqc(v)`` induces a clique (False: independent set)."""
        return self._clique_class[v]

    def removed_vertices(self):
        return [v for v in range(self._graph.n) if self._eqr[v] != v]

    @property
    def removed_count(self):
        return self._graph.n - self.graph_reduced.n

    # -- query pieces --------------------------------------------------------------

    def project(self, v):
        """Map an input vertex to its ``G_e`` id."""
        return self.old_to_new[self._eqr[v]]

    def same_class_answer(self, s, t):
        """Lemma 4.3's O(1) answer for ``s != t`` with ``eqr(s) == eqr(t)``.

        Returns ``(distance, count)``: adjacent twins are at distance 1
        with a unique path; independent twins sit at distance 2 with one
        path per shared neighbor (``deg(s)``), or are disconnected when
        their common neighborhood is empty.
        """
        if s == t or self._eqr[s] != self._eqr[t]:
            raise ValueError("same_class_answer requires distinct same-class vertices")
        if self._clique_class[s]:
            return 1, 1
        degree = self._graph.degree(s)
        if degree == 0:
            return INF, 0
        return 2, degree

    def __repr__(self):
        return (
            f"EquivalenceReduction(n={self._graph.n} -> {self.graph_reduced.n}, "
            f"removed={self.removed_count})"
        )
