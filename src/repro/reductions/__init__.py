"""Index-size reductions of §4: 1-shell, neighborhood equivalence, independent set."""

from repro.reductions.equivalence import EquivalenceReduction
from repro.reductions.independent_set import (
    select_independent_set,
    ISQueryEngine,
)
from repro.reductions.pipeline import ReducedSPCIndex, reduction_report
from repro.reductions.shell import ShellReduction

__all__ = [
    "ShellReduction",
    "EquivalenceReduction",
    "select_independent_set",
    "ISQueryEngine",
    "ReducedSPCIndex",
    "reduction_report",
]
