"""Reduction by independent set (§4.3).

``I = {v | every neighbor of v outranks v}`` is an independent set whose
members are hubs of nothing but themselves, so their labels can be dropped
and queries answered through their neighbors: ``spc(s, t) = spc(R_s, R_t)``
with ``R_v = nbr(v)`` for ``v ∈ I`` and ``{v}`` otherwise.

Composition with the equivalence reduction (the paper's HP-SPC* runs on
``G_e``) needs care the paper leaves implicit. With per-vertex
multiplicities ``mult(·)``, the λ-weighted count decomposes as

    spc_λ(s, t) = Σ_h  σ̂_{s,h} · σ̂_{t,h} · M(h)      over common hubs h
    σ̂_{v,h}    = Σ_{u ∈ R_v at minimal dist}  σ_{u,h} · K(u, h)

where ``K(u, h) = mult(u)`` unless ``u == h`` (a neighbor that *is* the
hub is accounted once, through ``M``), and ``M(h) = mult(h)`` unless ``h``
is a query endpoint that kept its label. Every hub pair whose distance sum
matches the minimum corresponds to a genuine shortest path: a walk of
length ``sd(s, t)`` cannot repeat a vertex, so the aggregation introduces
no phantom paths. Both §4.3 query schemes are implemented:

* *direct* — hash-join the (virtual) labels of ``R_s`` and ``R_t``;
* *filtered* — find ``sd`` and the on-path neighbors ``R_s(t), R_t(s)``
  from the small canonical labels first, then join full labels only for
  those neighbors.
"""

from repro.core.query import count_query

INF = float("inf")


def select_independent_set(graph, rank_of):
    """The §4.3 independent set for a rank assignment (vertex -> rank).

    ``v ∈ I`` iff every neighbor has a *smaller* rank index (was pushed
    earlier, i.e. outranks ``v``). Isolated vertices qualify vacuously.
    """
    in_set = [False] * graph.n
    for v in graph.vertices():
        rv = rank_of[v]
        if all(rank_of[u] < rv for u in graph.neighbors(v)):
            in_set[v] = True
    return in_set


class ISQueryEngine:
    """Answers λ-weighted count queries when some labels were dropped.

    Operates on the (possibly equivalence-reduced) core graph; endpoints
    are core-graph vertex ids. ``multiplicity`` may be ``None`` for the
    plain (non-equivalence) pipeline.
    """

    def __init__(self, labels, graph, in_independent_set, multiplicity=None):
        self._labels = labels
        self._graph = graph
        self._in_is = in_independent_set
        self._mult = multiplicity

    @property
    def independent_set(self):
        return self._in_is

    def query(self, s, t, scheme="filtered"):
        """``(distance, λ-count)`` between core vertices ``s`` and ``t``."""
        if s == t:
            return 0, 1
        s_dropped = self._in_is[s]
        t_dropped = self._in_is[t]
        if not s_dropped and not t_dropped:
            return count_query(self._labels, s, t, self._mult)
        if scheme == "direct":
            return self._direct(s, t, s_dropped, t_dropped)
        if scheme == "filtered":
            return self._filtered(s, t, s_dropped, t_dropped)
        raise ValueError(f"unknown query scheme {scheme!r}; use 'direct' or 'filtered'")

    # -- shared pieces -----------------------------------------------------------

    def _side(self, v, dropped):
        """The label-bearing stand-ins for ``v``: ``[(u, offset)] ...``."""
        if dropped:
            return [(u, 1) for u in self._graph.neighbors(v)]
        return [(v, 0)]

    def _k_factor(self, u, hub, dropped_side):
        """K(u, hub): multiplicity of a neighbor that becomes internal."""
        if self._mult is None or not dropped_side or u == hub:
            return 1
        return self._mult[u]

    def _m_factor(self, hub, s, t, s_dropped, t_dropped):
        """M(hub): multiplicity of the meeting hub, minus endpoint cases."""
        if self._mult is None:
            return 1
        if (hub == s and not s_dropped) or (hub == t and not t_dropped):
            return 1
        return self._mult[hub]

    def _aggregate(self, side, dropped_side, label_of):
        """Hash-join side labels into ``hub -> (min_dist, summed_count)``."""
        agg = {}
        for u, offset in side:
            for _, hub, dist, cnt in label_of(u):
                total = dist + offset
                term = cnt * self._k_factor(u, hub, dropped_side)
                found = agg.get(hub)
                if found is None or total < found[0]:
                    agg[hub] = (total, term)
                elif total == found[0]:
                    agg[hub] = (total, found[1] + term)
        return agg

    # -- direct scheme --------------------------------------------------------------

    def _direct(self, s, t, s_dropped, t_dropped):
        labels = self._labels
        side_s = self._side(s, s_dropped)
        side_t = self._side(t, t_dropped)
        agg_s = self._aggregate(side_s, s_dropped, labels.merged)
        delta = INF
        sigma = 0
        for u, offset in side_t:
            k_side = t_dropped
            for _, hub, dist, cnt in labels.merged(u):
                found = agg_s.get(hub)
                if found is None:
                    continue
                total = found[0] + dist + offset
                if total > delta:
                    continue
                term = (
                    found[1]
                    * cnt
                    * self._k_factor(u, hub, k_side)
                    * self._m_factor(hub, s, t, s_dropped, t_dropped)
                )
                if total < delta:
                    delta = total
                    sigma = term
                else:
                    sigma += term
        if sigma == 0:
            return INF, 0
        return delta, sigma

    # -- filtered scheme -----------------------------------------------------------

    def _filtered(self, s, t, s_dropped, t_dropped):
        labels = self._labels
        side_s = self._side(s, s_dropped)
        side_t = self._side(t, t_dropped)
        # Phase 1: distances only, over the small canonical labels.
        dist_s = self._canonical_distance_map(side_s)
        delta = INF
        keep_t = []
        for u, offset in side_t:
            best = INF
            for _, hub, dist, _ in labels.canonical(u):
                found = dist_s.get(hub)
                if found is not None and found + dist < best:
                    best = found + dist
            total = best + offset
            if total < delta:
                delta = total
                keep_t = [(u, offset)]
            elif total == delta and total != INF:
                keep_t.append((u, offset))
        if delta == INF:
            return INF, 0
        if len(side_s) == 1:
            # A kept endpoint is trivially on-path; skip the reverse pass.
            keep_s = side_s
        else:
            dist_t = self._canonical_distance_map(side_t)
            keep_s = []
            for u, offset in side_s:
                best = INF
                for _, hub, dist, _ in labels.canonical(u):
                    found = dist_t.get(hub)
                    if found is not None and found + dist < best:
                        best = found + dist
                if best + offset == delta:
                    keep_s.append((u, offset))
        # Phase 2: the direct join, restricted to on-path neighbors, with
        # the full (canonical + non-canonical) labels.
        agg_s = self._aggregate(keep_s, s_dropped, labels.merged)
        sigma = 0
        for u, offset in keep_t:
            for _, hub, dist, cnt in labels.merged(u):
                found = agg_s.get(hub)
                if found is None:
                    continue
                if found[0] + dist + offset != delta:
                    continue
                sigma += (
                    found[1]
                    * cnt
                    * self._k_factor(u, hub, t_dropped)
                    * self._m_factor(hub, s, t, s_dropped, t_dropped)
                )
        if sigma == 0:
            return INF, 0
        return delta, sigma

    def _canonical_distance_map(self, side):
        """``hub -> min over side of (sd(u, hub) + offset)`` from L^c."""
        out = {}
        for u, offset in side:
            for _, hub, dist, _ in self._labels.canonical(u):
                total = dist + offset
                if total < out.get(hub, INF):
                    out[hub] = total
        return out
