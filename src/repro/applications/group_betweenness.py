"""Group betweenness from the counting oracle (§1, [44]).

The group betweenness of a vertex set C is

    B̈(C) = Σ_{s,t}  spc_C(s, t) / spc(s, t)

over connected unordered pairs ``{s, t}`` with ``s ≠ t`` and
``s, t ∉ C``, where ``spc_C`` counts the shortest paths meeting C.

[44]'s GBC pipeline precomputes pairwise distance/count/path-betweenness
matrices for *all* pairs — the "unaffordable overhead" that motivates the
paper. Here the counting oracle replaces that precomputation: the number
of s-t shortest paths *avoiding* C follows from oracle queries alone via
the forward DP over C's members ordered by distance from s:

    A(c) = spc(s, c) − Σ_{c' strictly between s and c}  A(c') · spc(c', c)

(A(c) = paths from s to c meeting C only at c), so

    spc_C(s, t) = Σ_{c on an s-t shortest path}  A(c) · spc(c, t).

Every quantity is a pair query — O(|C|²) queries per pair, zero graph
searches. :func:`group_betweenness_exact` is the BFS ground truth.

The oracle paths compile to :class:`~repro.query.ast.Batch` es of
:class:`~repro.query.ast.Count` nodes: one batch gathers ``(s,t)`` plus
all member anchors (a ``count_with_distance`` answers distance *and*
count, so the DP reuses it for both), a second batch gathers the inner
``(c', c)`` pairs — the engine coalesces each batch into a single
vectorized ``count_many`` on batching-capable backends.
"""

from collections import deque

from repro.query.ast import Batch, Count
from repro.query.engine import QueryEngine

INF = float("inf")


def _pair_engine(oracle):
    return QueryEngine(oracle=oracle, cache=None)


def spc_through_group(oracle, s, t, group):
    """``(spc(s,t), spc_C(s,t))`` using only oracle pair queries."""
    return _spc_through_group(_pair_engine(oracle), s, t, group)


def _spc_through_group(engine, s, t, group):
    members = list(group)
    first = engine.run(Batch(
        (Count(s, t),)
        + tuple(Count(s, c) for c in members)
        + tuple(Count(c, t) for c in members)
    ))
    sd_st, total = first[0]
    if total == 0:
        return 0, 0
    k = len(members)
    # Members that lie on at least one s-t shortest path, with their
    # spc(s,c)/spc(c,t) counts carried along from the same batch.
    on_path = []
    for c, (d_sc, sc), (d_ct, ct) in zip(members, first[1:1 + k],
                                         first[1 + k:]):
        if d_sc + d_ct == sd_st:
            on_path.append((d_sc, c, sc, ct))
    if not on_path:
        return total, 0
    on_path.sort(key=lambda row: (row[0], row[1]))
    inner_nodes = tuple(
        Count(on_path[j][1], on_path[i][1])
        for i in range(len(on_path)) for j in range(i)
    )
    inner = engine.run(Batch(inner_nodes)) if inner_nodes else ()
    # A(c): shortest s->c paths whose only group vertex is c.
    arrivals = []
    through = 0
    offset = 0
    for d_sc, c, sc, ct in on_path:
        a = sc
        for j, (d_prev, c_prev, a_prev) in enumerate(arrivals):
            d_pc, pc = inner[offset + j]
            if d_prev + d_pc == d_sc:
                a -= a_prev * pc
        offset += len(arrivals)
        arrivals.append((d_sc, c, a))
        through += a * ct
    return total, through


def group_betweenness_oracle(oracle, group, pairs):
    """B̈(C) restricted to the given (s, t) pairs, via oracle queries only."""
    engine = _pair_engine(oracle)
    group_set = set(group)
    total = 0.0
    for s, t in pairs:
        if s == t or s in group_set or t in group_set:
            continue
        spc, through = _spc_through_group(engine, s, t, group)
        if spc:
            total += through / spc
    return total


def group_betweenness_exact(graph, group, pairs=None):
    """Ground-truth B̈(C) by BFS counting with and without C.

    ``spc_C(s,t) = spc(s,t) − [sd unchanged] · spc_{G−C}(s,t)``. With
    ``pairs=None`` all unordered non-group pairs are used.
    """
    group_set = set(group)
    n = graph.n
    if pairs is None:
        pairs = [(s, t) for s in range(n) for t in range(s + 1, n)]
    blocked = [v in group_set for v in range(n)]
    full_cache = {}
    avoid_cache = {}

    def bfs(source, avoid):
        dist = [INF] * n
        count = [0] * n
        dist[source] = 0
        count[source] = 1
        queue = deque([source])
        while queue:
            v = queue.popleft()
            dv = dist[v]
            cv = count[v]
            for w in graph.neighbors(v):
                if avoid and blocked[w]:
                    continue
                dw = dist[w]
                if dw == INF:
                    dist[w] = dv + 1
                    count[w] = cv
                    queue.append(w)
                elif dw == dv + 1:
                    count[w] += cv
        return dist, count

    total = 0.0
    for s, t in pairs:
        if s == t or s in group_set or t in group_set:
            continue
        if s not in full_cache:
            full_cache[s] = bfs(s, avoid=False)
            avoid_cache[s] = bfs(s, avoid=True)
        dist, count = full_cache[s]
        if count[t] == 0:
            continue
        dist_a, count_a = avoid_cache[s]
        avoiding = count_a[t] if dist_a[t] == dist[t] else 0
        total += (count[t] - avoiding) / count[t]
    return total


def pairwise_matrices(oracle, vertices):
    """The D and Σ matrices of [44]'s GBC, filled by oracle queries.

    Returns ``(D, Sigma)`` as dicts keyed by vertex pairs — the online
    construction step whose cost the hub labeling slashes (§1).
    """
    vertices = list(vertices)
    distance = {}
    sigma = {}
    if not vertices:
        return distance, sigma
    engine = _pair_engine(oracle)
    nodes = tuple(Count(x, y) for x in vertices for y in vertices)
    answers = iter(engine.run(Batch(nodes)))
    for x in vertices:
        for y in vertices:
            d, c = next(answers)
            distance[(x, y)] = d
            sigma[(x, y)] = c
    return distance, sigma


class GroupBetweennessEvaluator:
    """Evaluate many groups against a fixed pair workload.

    Wraps an oracle (hub-labeling index, count matrix, or online BFS
    adapter) and scores successive candidate groups — the "estimate the
    group betweenness distribution" workload of §1.
    """

    def __init__(self, oracle, pairs):
        self._oracle = oracle
        self._engine = _pair_engine(oracle)
        self._pairs = list(pairs)

    def evaluate(self, group):
        """B̈(C) over this evaluator's pair workload."""
        group_set = set(group)
        total = 0.0
        for s, t in self._pairs:
            if s == t or s in group_set or t in group_set:
                continue
            spc, through = _spc_through_group(self._engine, s, t, group)
            if spc:
                total += through / spc
        return total

    def evaluate_incrementally(self, group):
        """Scores of every prefix C_1 ⊆ C_2 ⊆ ... ⊆ C (the GBC iteration).

        [44] evaluates a group one member at a time; the i-th entry here
        is B̈({v_1, ..., v_i}).
        """
        return [self.evaluate(group[: i + 1]) for i in range(len(group))]
