"""Group betweenness from the counting oracle (§1, [44]).

The group betweenness of a vertex set C is

    B̈(C) = Σ_{s,t}  spc_C(s, t) / spc(s, t)

over connected unordered pairs ``{s, t}`` with ``s ≠ t`` and
``s, t ∉ C``, where ``spc_C`` counts the shortest paths meeting C.

[44]'s GBC pipeline precomputes pairwise distance/count/path-betweenness
matrices for *all* pairs — the "unaffordable overhead" that motivates the
paper. Here the counting oracle replaces that precomputation: the number
of s-t shortest paths *avoiding* C follows from oracle queries alone via
the forward DP over C's members ordered by distance from s:

    A(c) = spc(s, c) − Σ_{c' strictly between s and c}  A(c') · spc(c', c)

(A(c) = paths from s to c meeting C only at c), so

    spc_C(s, t) = Σ_{c on an s-t shortest path}  A(c) · spc(c, t).

Every quantity is a pair query — O(|C|²) queries per pair, zero graph
searches. :func:`group_betweenness_exact` is the BFS ground truth.
"""

from collections import deque

INF = float("inf")


def spc_through_group(oracle, s, t, group):
    """``(spc(s,t), spc_C(s,t))`` using only oracle pair queries."""
    sd_st, total = oracle.count_with_distance(s, t)
    if total == 0:
        return 0, 0
    # Members that lie on at least one s-t shortest path.
    on_path = []
    for c in group:
        d_sc, _ = oracle.count_with_distance(s, c)
        d_ct, _ = oracle.count_with_distance(c, t)
        if d_sc + d_ct == sd_st:
            on_path.append((d_sc, c))
    if not on_path:
        return total, 0
    on_path.sort()
    # A(c): shortest s->c paths whose only group vertex is c.
    arrivals = []
    through = 0
    for d_sc, c in on_path:
        _, sc = oracle.count_with_distance(s, c)
        a = sc
        for d_prev, c_prev, a_prev in arrivals:
            d_pc, pc = oracle.count_with_distance(c_prev, c)
            if d_prev + d_pc == d_sc:
                a -= a_prev * pc
        arrivals.append((d_sc, c, a))
        _, ct = oracle.count_with_distance(c, t)
        through += a * ct
    return total, through


def group_betweenness_oracle(oracle, group, pairs):
    """B̈(C) restricted to the given (s, t) pairs, via oracle queries only."""
    group_set = set(group)
    total = 0.0
    for s, t in pairs:
        if s == t or s in group_set or t in group_set:
            continue
        spc, through = spc_through_group(oracle, s, t, group)
        if spc:
            total += through / spc
    return total


def group_betweenness_exact(graph, group, pairs=None):
    """Ground-truth B̈(C) by BFS counting with and without C.

    ``spc_C(s,t) = spc(s,t) − [sd unchanged] · spc_{G−C}(s,t)``. With
    ``pairs=None`` all unordered non-group pairs are used.
    """
    group_set = set(group)
    n = graph.n
    if pairs is None:
        pairs = [(s, t) for s in range(n) for t in range(s + 1, n)]
    blocked = [v in group_set for v in range(n)]
    full_cache = {}
    avoid_cache = {}

    def bfs(source, avoid):
        dist = [INF] * n
        count = [0] * n
        dist[source] = 0
        count[source] = 1
        queue = deque([source])
        while queue:
            v = queue.popleft()
            dv = dist[v]
            cv = count[v]
            for w in graph.neighbors(v):
                if avoid and blocked[w]:
                    continue
                dw = dist[w]
                if dw == INF:
                    dist[w] = dv + 1
                    count[w] = cv
                    queue.append(w)
                elif dw == dv + 1:
                    count[w] += cv
        return dist, count

    total = 0.0
    for s, t in pairs:
        if s == t or s in group_set or t in group_set:
            continue
        if s not in full_cache:
            full_cache[s] = bfs(s, avoid=False)
            avoid_cache[s] = bfs(s, avoid=True)
        dist, count = full_cache[s]
        if count[t] == 0:
            continue
        dist_a, count_a = avoid_cache[s]
        avoiding = count_a[t] if dist_a[t] == dist[t] else 0
        total += (count[t] - avoiding) / count[t]
    return total


def pairwise_matrices(oracle, vertices):
    """The D and Σ matrices of [44]'s GBC, filled by oracle queries.

    Returns ``(D, Sigma)`` as dicts keyed by vertex pairs — the online
    construction step whose cost the hub labeling slashes (§1).
    """
    distance = {}
    sigma = {}
    for x in vertices:
        for y in vertices:
            d, c = oracle.count_with_distance(x, y)
            distance[(x, y)] = d
            sigma[(x, y)] = c
    return distance, sigma


class GroupBetweennessEvaluator:
    """Evaluate many groups against a fixed pair workload.

    Wraps an oracle (hub-labeling index, count matrix, or online BFS
    adapter) and scores successive candidate groups — the "estimate the
    group betweenness distribution" workload of §1.
    """

    def __init__(self, oracle, pairs):
        self._oracle = oracle
        self._pairs = list(pairs)

    def evaluate(self, group):
        """B̈(C) over this evaluator's pair workload."""
        return group_betweenness_oracle(self._oracle, group, self._pairs)

    def evaluate_incrementally(self, group):
        """Scores of every prefix C_1 ⊆ C_2 ⊆ ... ⊆ C (the GBC iteration).

        [44] evaluates a group one member at a time; the i-th entry here
        is B̈({v_1, ..., v_i}).
        """
        return [self.evaluate(group[: i + 1]) for i in range(len(group))]
