"""Consumers of the counting oracle: betweenness analyses and ranking (§1)."""

from repro.applications.betweenness import (
    brandes_betweenness,
    pair_dependency,
    sampled_betweenness,
)
from repro.applications.centrality import (
    all_closeness,
    all_harmonic,
    closeness_centrality,
    harmonic_centrality,
)
from repro.applications.group_betweenness import (
    GroupBetweennessEvaluator,
    group_betweenness_exact,
    pairwise_matrices,
    spc_through_group,
)
from repro.applications.relevance import relevance_ranking

__all__ = [
    "brandes_betweenness",
    "pair_dependency",
    "sampled_betweenness",
    "closeness_centrality",
    "harmonic_centrality",
    "all_closeness",
    "all_harmonic",
    "group_betweenness_exact",
    "spc_through_group",
    "pairwise_matrices",
    "GroupBetweennessEvaluator",
    "relevance_ranking",
]
