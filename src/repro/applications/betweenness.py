"""Betweenness centrality: exact (Brandes [15]) and oracle-sampled.

Brandes' O(n·m) accumulation is the ground truth; the sampled estimator
shows what a counting oracle buys for betweenness-*related* analysis
(§1): with ``sd``/``spc`` answered from labels, each sampled pair
contributes its dependency to every candidate vertex with three oracle
queries per (pair, vertex) — no graph traversals at estimation time
(the VC-dimension sampling bounds of [48] apply to the pair sample).

:func:`sampled_betweenness` compiles to a
:class:`~repro.query.ast.TopKBetweenness` query and runs through
:class:`~repro.query.engine.QueryEngine`, whose sampling loop replays
the exact rng/accumulation sequence this module historically used — the
driver is a thin AST front-end now, and the same query serves from any
backend the planner picks.
"""

from collections import deque

from repro.query.ast import TopKBetweenness
from repro.query.engine import QueryEngine


def brandes_betweenness(graph, normalized=False):
    """Betweenness centrality of every vertex of an undirected graph.

    Pair contributions are ``σ_st(v) / σ_st`` summed over unordered pairs
    ``{s, t}`` with ``s ≠ t`` (each unordered pair counted once, matching
    networkx's convention for undirected graphs).
    """
    n = graph.n
    centrality = [0.0] * n
    for s in range(n):
        # Single-source shortest paths with counting and predecessor lists.
        dist = [-1] * n
        sigma = [0] * n
        preds = [[] for _ in range(n)]
        dist[s] = 0
        sigma[s] = 1
        order = []
        queue = deque([s])
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in graph.neighbors(v):
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        # Dependency accumulation in reverse BFS order.
        delta = [0.0] * n
        for w in reversed(order):
            coefficient = (1.0 + delta[w]) / sigma[w]
            for v in preds[w]:
                delta[v] += sigma[v] * coefficient
            if w != s:
                centrality[w] += delta[w]
    # Each unordered pair was visited from both endpoints.
    for v in range(n):
        centrality[v] /= 2.0
    if normalized and n > 2:
        scale = 2.0 / ((n - 1) * (n - 2))
        centrality = [c * scale for c in centrality]
    return centrality


def pair_dependency(oracle, s, t, v):
    """``δ_st(v) = σ_st(v) / σ_st`` from three oracle queries.

    ``σ_st(v) = σ_sv · σ_vt`` when ``v`` lies strictly inside a shortest
    s-t path (``sd(s,v) + sd(v,t) = sd(s,t)``), else 0. Endpoints score 0
    by convention.
    """
    if v == s or v == t:
        return 0.0
    dist_st, sigma_st = oracle.count_with_distance(s, t)
    if sigma_st == 0:
        return 0.0
    dist_sv, sigma_sv = oracle.count_with_distance(s, v)
    if sigma_sv == 0 or dist_sv >= dist_st:
        return 0.0
    dist_vt, sigma_vt = oracle.count_with_distance(v, t)
    if sigma_vt == 0 or dist_sv + dist_vt != dist_st:
        return 0.0
    return (sigma_sv * sigma_vt) / sigma_st


def sampled_betweenness(oracle, n, vertices=None, samples=500, seed=0):
    """Estimate betweenness by uniform pair sampling over the oracle.

    Returns ``{v: estimate}`` for the requested ``vertices`` (default:
    all). The estimator is unbiased for the unordered-pair betweenness:
    each sample draws a pair ``{s, t}`` uniformly and adds ``δ_st(v)``;
    estimates are rescaled by ``C(n, 2) / samples``.
    """
    if n < 2:
        return {v: 0.0 for v in (vertices or range(n))}
    engine = QueryEngine(oracle=oracle, n=n, cache=None)
    node = TopKBetweenness(
        samples=samples, seed=seed,
        vertices=tuple(vertices) if vertices is not None else None,
    )
    return dict(engine.run(node))
