"""Count-aware relevance ranking (the paper's Figure 1 motivation).

Among equally-distant candidates, the one connected to the source by more
shortest paths is more relevant — the exact scenario (s, t₁, t₂) of §1.

The driver compiles to a :class:`~repro.query.ast.Relevance` query: the
sort convention (distance asc, count desc, id asc) lives in the query
engine now and any planner-chosen backend answers it identically.
"""

from repro.query.ast import Relevance
from repro.query.engine import QueryEngine


def relevance_ranking(oracle, source, candidates):
    """Rank ``candidates`` by (distance asc, shortest-path count desc).

    Returns ``[(vertex, distance, count), ...]`` best first; unreachable
    candidates sort last. Works with any object exposing
    ``count_with_distance``.
    """
    engine = QueryEngine(oracle=oracle, cache=None)
    return list(engine.run(Relevance(source, tuple(candidates))))


def most_relevant(oracle, source, candidates):
    """The single best candidate (ties broken by smaller id); None if none reachable."""
    ranked = relevance_ranking(oracle, source, candidates)
    if not ranked or ranked[0][2] == 0:
        return None
    return ranked[0][0]
