"""Count-aware relevance ranking (the paper's Figure 1 motivation).

Among equally-distant candidates, the one connected to the source by more
shortest paths is more relevant — the exact scenario (s, t₁, t₂) of §1.
"""


def relevance_ranking(oracle, source, candidates):
    """Rank ``candidates`` by (distance asc, shortest-path count desc).

    Returns ``[(vertex, distance, count), ...]`` best first; unreachable
    candidates sort last. Works with any object exposing
    ``count_with_distance``.
    """
    scored = []
    for v in candidates:
        dist, count = oracle.count_with_distance(source, v)
        scored.append((v, dist, count))
    scored.sort(key=lambda row: (row[1], -row[2], row[0]))
    return scored


def most_relevant(oracle, source, candidates):
    """The single best candidate (ties broken by smaller id); None if none reachable."""
    ranked = relevance_ranking(oracle, source, candidates)
    if not ranked or ranked[0][2] == 0:
        return None
    return ranked[0][0]
