"""Closeness-style centralities from the inverted label index.

The inverted index answers a full single-source sweep in one pass over
the posting lists, which makes distance-aggregating centralities cheap
once the counting index exists — another §1-style consumer that never
touches the graph at evaluation time.

Sweeps are expressed as :class:`~repro.query.ast.SingleSource` queries
compiled through :class:`~repro.query.engine.QueryEngine` (the inverted
index rides the oracle backend, keeping its one-pass ``single_source``);
only the aggregation math lives here.
"""

from repro.core.inverted import InvertedLabelIndex
from repro.query.ast import SingleSource
from repro.query.engine import QueryEngine

INF = float("inf")


def _sweep_engine(inverted):
    """A query engine over the inverted index's sweep-capable oracle."""
    return QueryEngine(oracle=inverted, cache=None)


def _closeness_from_sweep(dist, n, wf_improved):
    reachable = [d for d in dist if d != INF]
    r = len(reachable)  # includes the source itself at distance 0
    total = sum(reachable)
    if r <= 1 or total == 0:
        return 0.0
    closeness = (r - 1) / total
    if wf_improved and n > 1:
        closeness *= (r - 1) / (n - 1)
    return closeness


def _harmonic_from_sweep(dist, v):
    return sum(1.0 / d for u, d in enumerate(dist) if u != v and d != INF and d > 0)


def closeness_centrality(inverted, v, wf_improved=True):
    """Closeness of ``v``: ``(r-1) / Σ dist`` over reachable vertices.

    With ``wf_improved`` (Wasserman-Faust, networkx's default) the value
    scales by ``(r-1)/(n-1)`` so vertices in small components don't win
    by default. Returns 0.0 for isolated vertices.
    """
    dist, _ = _sweep_engine(inverted).run(SingleSource(v))
    return _closeness_from_sweep(dist, len(dist), wf_improved)


def harmonic_centrality(inverted, v):
    """Harmonic centrality: ``Σ_{u != v} 1 / dist(v, u)`` (∞ -> 0)."""
    dist, _ = _sweep_engine(inverted).run(SingleSource(v))
    return _harmonic_from_sweep(dist, v)


def all_closeness(labels_or_inverted, wf_improved=True):
    """Closeness for every vertex; accepts labels or a prebuilt inverted index."""
    inverted = _as_inverted(labels_or_inverted)
    engine = _sweep_engine(inverted)
    out = []
    for v in range(inverted.labels.n):
        dist, _ = engine.run(SingleSource(v))
        out.append(_closeness_from_sweep(dist, len(dist), wf_improved))
    return out


def all_harmonic(labels_or_inverted):
    """Harmonic centrality for every vertex."""
    inverted = _as_inverted(labels_or_inverted)
    engine = _sweep_engine(inverted)
    out = []
    for v in range(inverted.labels.n):
        dist, _ = engine.run(SingleSource(v))
        out.append(_harmonic_from_sweep(dist, v))
    return out


def _as_inverted(labels_or_inverted):
    if isinstance(labels_or_inverted, InvertedLabelIndex):
        return labels_or_inverted
    return InvertedLabelIndex(labels_or_inverted)
