"""Budgeted approximate counting — the future work §6 sketches.

Exp-5 shows ``L^c`` alone underestimates badly on a tail of queries, and
the paper closes with: "Adding some entries from L^nc to L^c may help to
improve the accuracy. But thus far, we are unaware of a way to do this
with a provable approximation guarantee."

This module implements the natural budgeted heuristic so the trade-off
can be *measured*: keep, per vertex, the full canonical label plus the
``budget`` highest-ranked non-canonical entries. High-ranked hubs cover
the most paths (that is what the orderings optimise), so early ``L^nc``
entries recover most of the missing mass. The estimate stays a lower
bound: every retained entry still covers each of its paths exactly once,
so no query can overcount. No guarantee is claimed — matching the
paper's open-problem framing — but the accuracy/size curve is exactly
what the ablation benchmark reports.
"""

from repro.core.query import merge_join_rows

INF = float("inf")


class BudgetedApproximator:
    """Query-time counting over ``L^c`` plus a per-vertex ``L^nc`` budget.

    ``budget=0`` reproduces Exp-5's canonical-only approximation;
    ``budget=None`` keeps everything and is exact.
    """

    def __init__(self, labels, budget):
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative or None")
        self._labels = labels
        self._budget = budget
        self._rows = [self._trim(v) for v in range(labels.n)]

    def _trim(self, v):
        canonical = self._labels.canonical(v)
        noncanonical = self._labels.noncanonical(v)
        if self._budget is not None:
            # Entries are rank-sorted; the prefix holds the highest ranks.
            noncanonical = noncanonical[: self._budget]
        if not noncanonical:
            return list(canonical)
        row = []
        i = j = 0
        while i < len(canonical) and j < len(noncanonical):
            if canonical[i][0] <= noncanonical[j][0]:
                row.append(canonical[i])
                i += 1
            else:
                row.append(noncanonical[j])
                j += 1
        row.extend(canonical[i:])
        row.extend(noncanonical[j:])
        return row

    @property
    def budget(self):
        return self._budget

    def count_with_distance(self, s, t):
        """``(sd, estimate)``; the distance is exact, the count a lower bound."""
        if s == t:
            return 0, 1
        return merge_join_rows(self._rows[s], self._rows[t], s, t)

    def count(self, s, t):
        return self.count_with_distance(s, t)[1]

    def distance(self, s, t):
        return self.count_with_distance(s, t)[0]

    def retained_entries(self):
        """Σ_v of retained entries — the approximation's index size."""
        return sum(len(row) for row in self._rows)


def accuracy_curve(labels, pairs, budgets, exact_counts=None):
    """Measure estimate quality per budget over a pair workload.

    Returns one row per budget: retained entry total, mean ratio
    ``exact / estimate``, the fraction of exactly-answered queries, and
    the worst ratio. ``exact_counts`` may pre-supply ``{(s,t): count}``;
    otherwise exact counts come from the full labels.
    """
    if exact_counts is None:
        full = BudgetedApproximator(labels, None)
        exact_counts = {}
        for s, t in pairs:
            exact_counts[(s, t)] = full.count(s, t)
    rows = []
    for budget in budgets:
        approximator = BudgetedApproximator(labels, budget)
        ratios = []
        exact_hits = 0
        for s, t in pairs:
            exact = exact_counts[(s, t)]
            if exact == 0:
                continue
            estimate = approximator.count(s, t)
            ratios.append(exact / estimate)
            if estimate == exact:
                exact_hits += 1
        rows.append(
            {
                "budget": budget,
                "entries": approximator.retained_entries(),
                "mean_ratio": sum(ratios) / len(ratios) if ratios else 1.0,
                "exact_fraction": exact_hits / len(ratios) if ratios else 1.0,
                "max_ratio": max(ratios) if ratios else 1.0,
            }
        )
    return rows
