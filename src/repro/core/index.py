"""High-level index facade over HP-SPC labels.

:class:`SPCIndex` is the plain (unreduced) index of §3; the reduced
variants HP-SPC+ and HP-SPC* live in :mod:`repro.reductions.pipeline` and
share the same query surface, so callers can swap them freely.
"""

from repro.core.hp_spc import BuildStats, build_labels
from repro.core.query import (
    count_canonical_only,
    count_query,
    distance_query,
)

INF = float("inf")


class SPCIndex:
    """A queryable shortest-path-counting index (plain HP-SPC).

    Build once with :meth:`build`, then answer ``count``/``distance``
    queries in label-scan time without touching the graph.

    >>> from repro.generators.classic import cycle_graph
    >>> index = SPCIndex.build(cycle_graph(4))
    >>> index.count(0, 2)   # two ways around the 4-cycle
    2
    >>> index.distance(0, 2)
    2
    """

    def __init__(self, labels, build_stats=None, build_seconds=None):
        self._labels = labels
        self._build_stats = build_stats
        self._build_seconds = build_seconds
        self._flat = None
        self._stale_reason = None

    @classmethod
    def build(cls, graph, ordering="degree", collect_stats=False, workers=1,
              engine="python", checkpoint=None, batch_size=None,
              spill_dir=None, mmap_dir=None):
        """Run HP-SPC on ``graph`` under ``ordering`` and wrap the labels.

        ``workers > 1`` partitions the hub pushes across that many
        processes (:mod:`repro.parallel`); ``engine="csr"`` builds with the
        vectorized kernels of :mod:`repro.kernels.hub_push` (static
        orderings, int64 counts) and keeps the frozen
        :class:`~repro.core.flat_labels.FlatLabels` as the primary store —
        the tuple-based :class:`LabelSet` is thawed lazily on first use of
        a python-engine query. ``engine="csr-batch"`` is the rank-batched
        large-graph engine (:mod:`repro.kernels.batch_push`): single
        process, freeze-free, memory-frugal columns, with ``batch_size``
        (ranks per shared sweep, auto-sized by default), ``spill_dir``
        (stream emission chunks to disk during the build) and ``mmap_dir``
        (memory-map the final label columns) knobs. Every combination
        produces bit-identical labels under the same static ordering.

        ``checkpoint`` (a :class:`~repro.io.checkpoint.BuildCheckpoint`)
        periodically persists rank-watermark progress and resumes an
        interrupted build from it; sequential ``python``/``csr`` engines
        only — the parallel builder has its own retry/fallback supervision.
        """
        import time

        stats = BuildStats() if collect_stats else None
        started = time.perf_counter()
        flat = None
        if engine != "csr-batch" and (batch_size is not None
                                      or spill_dir is not None
                                      or mmap_dir is not None):
            raise ValueError(
                "batch_size/spill_dir/mmap_dir require engine='csr-batch'"
            )
        if engine == "csr-batch":
            from repro.kernels.batch_push import build_flat_labels_batched

            if workers is None or workers > 1:
                raise ValueError(
                    "engine='csr-batch' is single-process (its parallelism "
                    "is in-process rank batching); use workers=1"
                )
            if checkpoint is not None:
                from repro.core.hp_spc import _reject_batch_knobs

                _reject_batch_knobs(checkpoint=checkpoint)
            flat = build_flat_labels_batched(
                graph, ordering=ordering, stats=stats, batch_size=batch_size,
                spill_dir=spill_dir, mmap_dir=mmap_dir,
            )
            labels = None
        elif workers is None or workers > 1:
            if checkpoint is not None:
                raise ValueError(
                    "checkpoint resume is only supported for sequential builds "
                    "(workers=1); the parallel builder supervises its own tasks"
                )
            from repro.parallel import build_labels_parallel

            result = build_labels_parallel(
                graph, workers=workers, ordering=ordering, stats=stats,
                engine=engine, as_flat=(engine == "csr"),
            )
            if engine == "csr":
                flat = result  # freeze-free: keep the CSR columns primary
                labels = None
            else:
                labels = result
        elif engine == "csr":
            from repro.kernels.hub_push import build_flat_labels_csr

            flat = build_flat_labels_csr(graph, ordering=ordering, stats=stats,
                                         checkpoint=checkpoint)
            labels = None
        else:
            labels = build_labels(graph, ordering=ordering, stats=stats,
                                  engine=engine, checkpoint=checkpoint)
        elapsed = time.perf_counter() - started
        index = cls(labels, build_stats=stats, build_seconds=elapsed)
        index._flat = flat
        return index

    @classmethod
    def from_flat(cls, flat, build_stats=None, build_seconds=None):
        """Wrap an existing :class:`~repro.core.flat_labels.FlatLabels`.

        Entry point for flat labelings loaded from SPCF files
        (:func:`repro.io.flat_store.load_flat_labels`, possibly
        memory-mapped): the flat columns stay primary and the tuple-based
        labels thaw lazily, exactly like a csr-engine build.
        """
        index = cls(None, build_stats=build_stats, build_seconds=build_seconds)
        index._flat = flat
        return index

    # -- queries -------------------------------------------------------------

    def count(self, s, t):
        """``spc(s, t)``: the number of shortest paths (0 if disconnected)."""
        return count_query(self.labels, s, t)[1]

    def distance(self, s, t):
        """``sd(s, t)``; ``inf`` when disconnected."""
        return distance_query(self.labels, s, t)

    def count_with_distance(self, s, t):
        """``(sd(s,t), spc(s,t))`` in one label scan."""
        return count_query(self.labels, s, t)

    def count_approximate(self, s, t):
        """The Exp-5 canonical-only estimate (may undercount, never over)."""
        return count_canonical_only(self.labels, s, t)[1]

    # -- batched (flat-engine) queries ---------------------------------------

    def to_flat(self):
        """Freeze the labels into a :class:`~repro.core.flat_labels.FlatLabels`.

        The flat view is built once and cached; it shares no state with the
        tuple-based labels, so both engines stay usable side by side.
        """
        if self._flat is None:
            from repro.core.flat_labels import FlatLabels

            self._flat = FlatLabels.from_label_set(self.labels)
        return self._flat

    def count_many(self, pairs, deadline=None):
        """Batched ``(sd, spc)`` tuples over the vectorized flat engine.

        Matches :meth:`count_with_distance` element-for-element but costs a
        fixed number of numpy passes for the whole batch. ``deadline``
        (e.g. a :class:`repro.serving.Deadline`) makes the scan
        cooperative for bounded-latency callers.
        """
        from repro.core.batch_query import count_many

        return count_many(self.to_flat(), pairs, deadline=deadline)

    def single_source(self, s):
        """``(dist, count)`` numpy arrays from ``s`` over every vertex."""
        from repro.core.batch_query import single_source

        return single_source(self.to_flat(), s)

    def set_to_set(self, sources, targets):
        """``(sd(S, T), spc(S, T))`` over the vectorized flat engine.

        The set-to-set distance is the minimum over all ``(s, t)`` pairs;
        the count sums shortest paths over exactly the pairs achieving
        that minimum — same conventions as
        :func:`repro.core.batch_query.count_set_to_set`.
        """
        from repro.core.batch_query import count_set_to_set

        return count_set_to_set(self.to_flat(), sources, targets)

    # -- staleness ------------------------------------------------------------

    @property
    def stale(self):
        """True once the index no longer matches its graph (see :meth:`mark_stale`)."""
        return self._stale_reason is not None

    @property
    def stale_reason(self):
        """Why the index was marked stale, or ``None`` while fresh."""
        return self._stale_reason

    def mark_stale(self, reason="graph changed since this index was built"):
        """Flag the labels as no longer matching the live graph.

        Set by :class:`repro.dynamic.incremental.DynamicSPCIndex` on edge
        insertions; serving layers (:class:`repro.resilience
        .ResilientSPCIndex`, :class:`repro.serving.SPCService`) check the
        flag and degrade or rebuild instead of silently serving wrong
        counts. Queries *through* the marking owner stay exact — the flag
        protects everyone else holding a reference to the raw index.
        """
        self._stale_reason = reason

    # -- introspection ---------------------------------------------------------

    @property
    def labels(self):
        """The underlying :class:`~repro.core.labels.LabelSet`.

        CSR-engine builds store only the frozen flat form; the tuple-based
        labels are thawed (exactly) here on first access.
        """
        if self._labels is None:
            self._labels = self._flat.to_label_set()
        return self._labels

    @property
    def n(self):
        """Vertex count — answered without thawing a flat-primary index."""
        store = self._labels if self._labels is not None else self._flat
        return store.n

    @property
    def order(self):
        """The vertex order the index was built under (rank -> vertex)."""
        if self._labels is None:
            return tuple(self._flat.order.tolist())
        return self._labels.order

    @property
    def build_stats(self):
        """:class:`BuildStats` when built with ``collect_stats=True``."""
        return self._build_stats

    @property
    def build_seconds(self):
        """Wall-clock construction time recorded by :meth:`build`."""
        return self._build_seconds

    def total_entries(self):
        if self._labels is None:
            return self._flat.total_entries()
        return self._labels.total_entries()

    def size_bytes(self, entry_bits=64):
        """Paper-equivalent index size under the packed entry encoding."""
        if self._labels is None:
            return self._flat.packed_size_bytes(entry_bits)
        return self._labels.packed_size_bytes(entry_bits)

    def __repr__(self):
        store = self._labels if self._labels is not None else self._flat
        return f"SPCIndex(n={store.n}, entries={store.total_entries()})"
