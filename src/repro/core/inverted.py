"""Inverted label index: single-source answers from one label scan.

A hub labeling is a bipartite incidence between vertices and hubs. The
forward direction (vertex -> entries) answers pair queries; inverting it
(hub -> entries) answers *single-source* queries in one pass — for a
source ``s``, scatter ``L(s)`` and then sweep the inverted lists of its
hubs, combining at every reached vertex. This is the batch primitive
betweenness-style pipelines want (§1): all distances+counts from ``s``
in ``O(Σ_v |L(v)|)`` instead of ``n`` merge joins.
"""

INF = float("inf")


class InvertedLabelIndex:
    """Hub -> [(vertex, dist, count)] lists over a finalized labeling."""

    def __init__(self, labels):
        self._labels = labels
        postings = {}
        for v in range(labels.n):
            for _, hub, dist, count in labels.merged(v):
                postings.setdefault(hub, []).append((v, dist, count))
        self._postings = postings

    @property
    def labels(self):
        return self._labels

    def postings(self, hub):
        """The vertices that carry ``hub``, with their entry payloads."""
        return self._postings.get(hub, ())

    def single_source(self, s):
        """``(dist, count)`` arrays from ``s`` over every vertex.

        Sweeps the posting lists of ``s``'s hubs: vertex ``v`` combines
        ``dist(s,h) + dist(v,h)`` over shared hubs ``h``, keeping the
        minimum and summing counts at it — the same Algorithm 2 logic,
        amortised across all targets.
        """
        n = self._labels.n
        dist = [INF] * n
        count = [0] * n
        for _, hub, dist_s, count_s in self._labels.merged(s):
            for v, dist_v, count_v in self._postings.get(hub, ()):
                total = dist_s + dist_v
                if total < dist[v]:
                    dist[v] = total
                    count[v] = count_s * count_v
                elif total == dist[v] and total is not INF:
                    count[v] += count_s * count_v
        # The diagonal: the empty path, not a hub meeting.
        dist[s] = 0
        count[s] = 1
        for v in range(n):
            if count[v] == 0:
                dist[v] = INF
        return dist, count

    def hub_load(self):
        """``{hub: posting length}`` — how central each hub is."""
        return {hub: len(rows) for hub, rows in self._postings.items()}

    def heaviest_hubs(self, k=10):
        """The ``k`` hubs carried by the most vertices (rank-0 first)."""
        return sorted(self._postings, key=lambda h: -len(self._postings[h]))[:k]
