"""Batched query evaluation over :class:`~repro.core.flat_labels.FlatLabels`.

Where :mod:`repro.core.query` walks two Python lists per query, everything
here is array-at-a-time. Pair batches are grouped by source: the source
label is *scattered* into dense rank-indexed arrays once per distinct
source, and each target row then joins with a handful of vectorized
gathers — no per-entry Python, and repeated sources (single-source-heavy
workloads) pay the scatter only once. Single-source and set-to-set queries
scatter one side's hubs the same way and sweep label columns in bulk.

Semantics match :mod:`repro.core.query` exactly for the plain (unreduced)
index: disconnected pairs answer ``(inf, 0)``, ``s == t`` answers
``(0, 1)``, and counts are exact as long as they fit int64 (the flat store
refuses wider counts at freeze time). The λ-weighted ``multiplicity``
evaluation of the reductions stays on the tuple-based path.
"""

import contextlib
import threading
from time import perf_counter

import numpy as np

from repro.exceptions import VertexError
from repro.observability.metrics import get_registry

INF = float("inf")
INT = np.int64


def _validate_ids(flat, vertices):
    """Raise :class:`VertexError` naming the first id outside ``[0, n)``.

    Batched queries index rank-space arrays directly; an out-of-range id
    would otherwise surface as an opaque numpy ``IndexError`` (or, worse,
    a negative id would silently wrap around and answer for the wrong
    vertex). The happy path is two allocation-free reductions (min and
    max); only an actual violation pays for the offender search.
    """
    if vertices.size == 0:
        return
    if int(vertices.min()) >= 0 and int(vertices.max()) < flat.n:
        return
    bad = (vertices < 0) | (vertices >= flat.n)
    offender = int(vertices[bad][0])
    raise VertexError(offender, flat.n)


class _QueryScratch:
    """Reusable rank-indexed scatter buffers for one :class:`FlatLabels`.

    The batched queries scatter a label row into dense ``(dist, count)``
    arrays of length ``n``; allocating those per call dominates small
    batches. One clean pair is cached on the flat store and borrowed
    under a non-blocking lock — concurrent callers simply allocate a
    private pair, so reuse is a fast path, never a serialization point.

    Invariant: outside a borrow, ``hub_dist`` is all ``inf`` and
    ``hub_count`` all zero. Borrowers restore the positions they
    scattered (under ``try/finally``, so deadline aborts cannot leak a
    dirty buffer into the next query's answer).
    """

    __slots__ = ("lock", "hub_dist", "hub_count")

    def __init__(self, n):
        self.lock = threading.Lock()
        self.hub_dist = np.full(n, INF)
        self.hub_count = np.zeros(n, dtype=INT)


@contextlib.contextmanager
def _borrow_scratch(flat):
    """Yield clean ``(hub_dist, hub_count)`` arrays of length ``flat.n``."""
    scratch = flat._scratch
    if scratch is None:
        # Benign race: two threads may each build one; both are valid and
        # the loser's copy is garbage-collected with its borrow.
        scratch = _QueryScratch(flat.n)
        flat._scratch = scratch
    if scratch.lock.acquire(blocking=False):
        try:
            yield scratch.hub_dist, scratch.hub_count
        finally:
            scratch.lock.release()
    else:
        yield np.full(flat.n, INF), np.zeros(flat.n, dtype=INT)


def _gather_rows(flat, vertices):
    """Concatenate the label rows of ``vertices``.

    Returns ``(entry_idx, seg_ptr)`` where ``entry_idx`` indexes the flat
    columns and ``seg_ptr[i]:seg_ptr[i+1]`` delimits the row of
    ``vertices[i]`` inside ``entry_idx``.
    """
    starts = flat.indptr[vertices]
    lens = flat.indptr[vertices + 1] - starts
    seg_ptr = np.zeros(len(vertices) + 1, dtype=INT)
    np.cumsum(lens, out=seg_ptr[1:])
    total = int(seg_ptr[-1])
    entry_idx = np.repeat(starts - seg_ptr[:-1], lens) + np.arange(total, dtype=INT)
    return entry_idx, seg_ptr


def count_many_arrays(flat, sources, targets, deadline=None):
    """``(dist, count)`` numpy columns for a batch of pairs.

    ``dist`` is float64 (``inf`` marks disconnected pairs), ``count`` is
    int64. Pairs are processed grouped by source: each distinct source's
    label is scattered into rank-indexed ``(dist, count)`` arrays, and every
    target row of that group joins via dense gathers — the per-query cost is
    a few small-array numpy ops instead of a per-entry Python merge join.

    ``deadline`` (duck-typed ``check()``) is consulted every few dozen
    pairs, between label-scan chunks, so a huge batch under a per-request
    budget raises :class:`~repro.exceptions.DeadlineExceeded` promptly
    rather than running to completion.
    """
    registry = get_registry()
    metered = registry.enabled
    if metered:
        batch_start = perf_counter()
        scan_chunks = 0
    sources = np.asarray(sources, dtype=INT)
    targets = np.asarray(targets, dtype=INT)
    if sources.shape != targets.shape or sources.ndim != 1:
        raise ValueError("sources and targets must be 1-d arrays of equal length")
    _validate_ids(flat, sources)
    _validate_ids(flat, targets)
    pairs = len(sources)
    out_dist = np.full(pairs, INF)
    out_count = np.zeros(pairs, dtype=INT)
    if pairs == 0:
        return out_dist, out_count

    rows = flat.rows()
    grouped = np.argsort(sources, kind="stable").tolist()
    source_list = sources.tolist()
    target_list = targets.tolist()
    intp = np.intp
    f64 = np.float64
    with _borrow_scratch(flat) as (hub_dist, hub_count):
        current = -1
        scattered = None
        try:
            for done, i in enumerate(grouped):
                if deadline is not None and not done & 0x3F:
                    deadline.check()
                s = source_list[i]
                if s != current:
                    if scattered is not None:
                        hub_dist[scattered] = INF
                    rank_s, dist_s, count_s = rows[s]
                    # Fancy indexing converts a non-intp index array on
                    # every call; converting once and reusing it for the
                    # scatter and the reset halves the scatter cost.
                    # Value dtypes are hoisted for the same reason: an
                    # in-place uint16->float64 cast inside the scatter is
                    # several times slower than astype + same-dtype store.
                    rank_i = rank_s.astype(intp)
                    hub_dist[rank_i] = dist_s.astype(f64)
                    hub_count[rank_i] = count_s.astype(INT)
                    scattered = rank_i
                    current = s
                    if metered:
                        scan_chunks += 1
                rank_t, dist_t, count_t = rows[target_list[i]]
                rank_ti = rank_t.astype(intp)
                totals = hub_dist[rank_ti] + dist_t
                if totals.size:
                    best = totals.min()
                    if best < INF:
                        # Stale hub_count entries from earlier sources are
                        # unreadable here: at_best requires a finite
                        # hub_dist, which only freshly scattered positions
                        # have — so hub_count needs no per-source reset,
                        # just the one fill(0) on the way out.
                        at_best = totals == best
                        out_dist[i] = best
                        # dot, not (a * b).sum(): one BLAS-free fused pass
                        # instead of a temporary product array plus a
                        # reduction — measurably faster on wide tie sets.
                        out_count[i] = np.dot(
                            hub_count[rank_ti[at_best]],
                            count_t[at_best].astype(INT),
                        )
        finally:
            if scattered is not None:
                hub_dist[scattered] = INF
                hub_count.fill(0)

    # Algorithm 2's special case: the empty path, not a hub meeting.
    diagonal = sources == targets
    out_dist[diagonal] = 0.0
    out_count[diagonal] = 1
    if metered:
        registry.counter("spc_queries_total", engine="flat",
                         kind="pair").inc(pairs)
        registry.counter("spc_query_scan_chunks_total").inc(scan_chunks)
        registry.histogram("spc_batch_query_seconds").observe(
            perf_counter() - batch_start
        )
    return out_dist, out_count


def count_many(flat, pairs, deadline=None):
    """Batched ``count_query``: list of ``(sd(s,t), spc(s,t))`` tuples.

    Python-native results — ``(inf, 0)`` for disconnected pairs, integer
    distances otherwise — so elements compare equal to
    :func:`repro.core.query.count_query` output. ``deadline`` is threaded
    through to :func:`count_many_arrays`.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    sources = np.fromiter((s for s, _ in pairs), dtype=INT, count=len(pairs))
    targets = np.fromiter((t for _, t in pairs), dtype=INT, count=len(pairs))
    dist, count = count_many_arrays(flat, sources, targets, deadline=deadline)
    return [
        (int(d), int(c)) if c else (INF, 0)
        for d, c in zip(dist.tolist(), count.tolist())
    ]


def single_source_range(flat, s, lo, hi, deadline=None):
    """``(dist, count)`` arrays from ``s`` over targets ``lo <= t < hi``.

    The sharded building block behind :func:`single_source`: scatter
    ``L(s)`` once, then sweep only the CSR slice of rows ``[lo, hi)`` —
    segmented reductions over a contiguous label range, so a shard worker
    pays for exactly the vertices it owns. Results are positional:
    element ``i`` answers target ``lo + i``.
    """
    registry = get_registry()
    if registry.enabled:
        registry.counter("spc_queries_total", engine="flat",
                         kind="single_source").inc()
    _validate_ids(flat, np.asarray([s], dtype=INT))
    if not 0 <= lo <= hi <= flat.n:
        raise ValueError(f"invalid target range [{lo}, {hi}) for n={flat.n}")
    if deadline is not None:
        deadline.check()
    width = hi - lo
    mins = np.full(width, INF)
    counts = np.zeros(width, dtype=INT)
    if width == 0:
        return mins, counts
    rank_s, _, dist_s, count_s = flat.row(s)
    rank_i = rank_s.astype(np.intp)
    with _borrow_scratch(flat) as (hub_dist, hub_count):
        hub_dist[rank_i] = dist_s.astype(np.float64)
        hub_count[rank_i] = count_s.astype(INT)
        try:
            start = int(flat.indptr[lo])
            stop = int(flat.indptr[hi])
            ranks = flat.rank[start:stop].astype(np.intp)
            totals = hub_dist[ranks] + flat.dist[start:stop]
            if totals.size:
                seg_starts = np.asarray(flat.indptr[lo:hi], dtype=INT) - start
                seg_lens = np.diff(flat.indptr[lo:hi + 1])
                nonempty = seg_lens > 0
                clipped = np.minimum(seg_starts, totals.size - 1)
                raw_min = np.minimum.reduceat(totals, clipped)
                mins[nonempty] = raw_min[nonempty]
                at_min = totals == np.repeat(mins, seg_lens)
                prods = np.where(at_min, hub_count[ranks] * flat.count[start:stop],
                                 0)
                raw_sum = np.add.reduceat(prods, clipped)
                counts[nonempty] = raw_sum[nonempty]
        finally:
            hub_dist[rank_i] = INF
            hub_count[rank_i] = 0
    unreachable = ~np.isfinite(mins)
    counts[unreachable] = 0
    mins[unreachable] = INF
    if lo <= s < hi:
        # The diagonal: the empty path, not a hub meeting.
        mins[s - lo] = 0.0
        counts[s - lo] = 1
    return mins, counts


def single_source(flat, s):
    """``(dist, count)`` arrays from ``s`` over every vertex.

    The flat twin of :meth:`repro.core.inverted.InvertedLabelIndex
    .single_source`: scatter ``L(s)`` into rank-indexed arrays, then one
    vectorized pass over *all* label entries plus two segmented reductions
    produce every target at once. Equivalent to
    :func:`single_source_range` over ``[0, n)``.
    """
    return single_source_range(flat, s, 0, flat.n)


def count_set_to_set(flat, sources, targets):
    """Set-to-set counting ``(sd(S, T), spc(S, T))`` on the flat store.

    Mirrors :func:`repro.core.query.count_set_query`: aggregate the source
    side per hub (minimum distance, counts summed at the minimum) with
    scatter ops, then sweep the target rows once.
    """
    registry = get_registry()
    if registry.enabled:
        registry.counter("spc_queries_total", engine="flat",
                         kind="set_to_set").inc()
    sources = np.asarray(list(sources), dtype=INT)
    targets = np.asarray(list(targets), dtype=INT)
    _validate_ids(flat, sources)
    _validate_ids(flat, targets)
    if sources.size == 0 or targets.size == 0:
        return INF, 0

    idx_s, _ = _gather_rows(flat, sources)
    ranks_s = flat.rank[idx_s]
    with _borrow_scratch(flat) as (hub_best, hub_count):
        try:
            np.minimum.at(hub_best, ranks_s, flat.dist[idx_s])
            at_best = flat.dist[idx_s] == hub_best[ranks_s]
            np.add.at(hub_count, flat.rank[idx_s[at_best]],
                      flat.count[idx_s[at_best]])

            idx_t, _ = _gather_rows(flat, targets)
            ranks_t = flat.rank[idx_t]
            totals = hub_best[ranks_t] + flat.dist[idx_t]
            reachable = np.isfinite(totals)
            if not bool(reachable.any()):
                return INF, 0
            delta = totals[reachable].min()
            at_delta = totals == delta
            sigma = int(np.sum(hub_count[ranks_t[at_delta]]
                               * flat.count[idx_t[at_delta]]))
        finally:
            hub_best[ranks_s] = INF
            hub_count[ranks_s] = 0
    if sigma == 0:
        return INF, 0
    return int(delta), sigma
