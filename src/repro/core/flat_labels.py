"""Flat (struct-of-arrays) label store for the vectorized query engine.

:class:`FlatLabels` freezes a finalized :class:`~repro.core.labels.LabelSet`
into contiguous numpy columns in CSR layout: ``indptr[v]:indptr[v+1]``
delimits the merged label ``L(v) = L^c(v) ∪ L^nc(v)``, and within each row
the ``rank`` column is strictly increasing (a hub appears at most once per
vertex), so batched queries in :mod:`repro.core.batch_query` can intersect
rows with ``np.searchsorted`` instead of per-entry Python merge joins.

The canonical / non-canonical split survives the freeze as a boolean
column, so the round trip ``LabelSet -> FlatLabels -> LabelSet`` is exact
and the frozen form serializes through the same packed 64-bit entry
encoding as :mod:`repro.io.serialize` (see :meth:`FlatLabels.packed_words`).
"""

from time import perf_counter

import numpy as np

from repro.exceptions import LabelingError
from repro.io.serialize import DEFAULT_BITS, pack_entries

INT = np.int64


class FlatLabels:
    """Read-only CSR view of a finalized labeling.

    Columns (all length ``total_entries``):

    * ``rank``  — hub rank (strictly increasing within each row)
    * ``hub``   — hub vertex id; always equal to ``order[rank]``, so
      memory-frugal instances pass ``hub=None`` and the column is derived
      lazily on first access instead of being stored
    * ``dist``  — ``sd(v, hub)``
    * ``count`` — ``σ_{v,hub}`` (int64, or uint32 after :meth:`compact`;
      callers needing wider counts must stay on the tuple-based
      :class:`~repro.core.labels.LabelSet` path)
    * ``canonical`` — True for ``L^c`` entries, False for ``L^nc``

    Columns may be plain int64 arrays (the historical layout), the narrow
    dtypes produced by :meth:`compact`, or ``np.memmap`` views over an
    SPCF file (:mod:`repro.io.flat_store`); the query engines are
    dtype-agnostic.
    """

    __slots__ = ("n", "indptr", "rank", "dist", "count", "canonical", "order",
                 "_hub", "_rows", "_scratch")

    def __init__(self, n, indptr, rank, hub, dist, count, canonical, order):
        self.n = n
        self.indptr = indptr
        self.rank = rank
        self._hub = hub
        self.dist = dist
        self.count = count
        self.canonical = canonical
        self.order = order
        self._rows = None
        # Reusable rank-indexed scatter buffers, owned and managed by
        # repro.core.batch_query (borrowed per call, restored clean).
        self._scratch = None

    @property
    def hub(self):
        """Hub vertex ids, derived as ``order[rank]`` when not stored."""
        if self._hub is None:
            if self.rank.size:
                self._hub = np.asarray(self.order, dtype=INT)[
                    self.rank.astype(INT, copy=False)
                ]
            else:
                self._hub = np.empty(0, dtype=INT)
        return self._hub

    # -- construction --------------------------------------------------------

    @classmethod
    def from_label_set(cls, labels):
        """Freeze a finalized :class:`LabelSet` (order set, lists merged)."""
        from repro.observability.metrics import get_registry

        if labels.order is None:
            raise LabelingError("labels must have an order; call set_order() first")
        registry = get_registry()
        freeze_start = perf_counter() if registry.enabled else None
        n = labels.n
        indptr = np.zeros(n + 1, dtype=INT)
        rows = []
        for v in range(n):
            row = [(r, h, d, c, True) for r, h, d, c in labels.canonical(v)]
            row += [(r, h, d, c, False) for r, h, d, c in labels.noncanonical(v)]
            row.sort(key=lambda entry: entry[0])
            rows.append(row)
            indptr[v + 1] = indptr[v] + len(row)
        total = int(indptr[-1])
        rank = np.empty(total, dtype=INT)
        hub = np.empty(total, dtype=INT)
        dist = np.empty(total, dtype=INT)
        count = np.empty(total, dtype=INT)
        canonical = np.empty(total, dtype=np.bool_)
        pos = 0
        for row in rows:
            for r, h, d, c, is_canonical in row:
                if c < 0 or c > np.iinfo(INT).max:
                    raise LabelingError(f"count {c} does not fit the flat int64 column")
                rank[pos] = r
                hub[pos] = h
                dist[pos] = d
                count[pos] = c
                canonical[pos] = is_canonical
                pos += 1
        order = np.asarray(labels.order, dtype=INT)
        flat = cls(n, indptr, rank, hub, dist, count, canonical, order)
        if freeze_start is not None:
            registry.histogram("spc_flat_freeze_seconds").observe(
                perf_counter() - freeze_start
            )
        return flat

    def to_label_set(self):
        """Thaw back into a finalized :class:`LabelSet` (exact inverse).

        Bulk-converts the columns with ``.tolist()`` once and slices per
        row, so thawing a construction-sized labeling costs a fraction of
        the build instead of dominating it (numpy scalar indexing per entry
        is ~10x slower).
        """
        from repro.core.labels import LabelSet

        labels = LabelSet(self.n)
        labels.set_order(self.order.tolist())
        indptr = self.indptr.tolist()
        entries = list(zip(self.rank.tolist(), self.hub.tolist(),
                           self.dist.tolist(), self.count.tolist()))
        flags = self.canonical.tolist()
        canonical_rows = labels._canonical  # construction-time fill; LabelSet owns
        noncanonical_rows = labels._noncanonical
        for v in range(self.n):
            canonical_row = canonical_rows[v]
            noncanonical_row = noncanonical_rows[v]
            for i in range(indptr[v], indptr[v + 1]):
                if flags[i]:
                    canonical_row.append(entries[i])
                else:
                    noncanonical_row.append(entries[i])
        labels.finalize()
        return labels

    # -- row access ----------------------------------------------------------

    def row(self, v):
        """``(rank, hub, dist, count)`` column views of ``L(v)``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.rank[lo:hi], self.hub[lo:hi], self.dist[lo:hi], self.count[lo:hi]

    def rows(self):
        """Per-vertex ``(rank, dist, count)`` views, cached for the hot path.

        Slicing ``indptr`` per query costs more than the queries themselves
        on small labels; the batch engine grabs this list once instead.
        """
        if self._rows is None:
            indptr = self.indptr.tolist()
            self._rows = [
                (self.rank[lo:hi], self.dist[lo:hi], self.count[lo:hi])
                for lo, hi in zip(indptr, indptr[1:])
            ]
        return self._rows

    def label_size(self, v):
        """|L(v)|: number of entries of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def total_entries(self):
        """Σ_v |L(v)|: the labeling size in the paper's sense."""
        return int(self.indptr[-1])

    def nbytes(self):
        """In-memory footprint of the numpy columns.

        The lazily-derived ``hub`` column counts only once materialized —
        frugal instances never pay for it unless a caller asks for hubs.
        """
        columns = [self.indptr, self.rank, self.dist, self.count,
                   self.canonical, self.order]
        if self._hub is not None:
            columns.append(self._hub)
        return sum(column.nbytes for column in columns)

    def count_dtype_escaped(self):
        """True when the count column needed the int64 overflow escape.

        :meth:`compact` stores counts as uint32; a labeling whose largest
        σ value does not fit 32 bits escapes to int64 instead (and bumps
        ``spc_count_overflow_escapes_total`` when metrics are enabled).
        """
        return self.count.dtype == INT

    def compact(self):
        """Return a memory-frugal copy sharing no mutable state.

        * ``rank`` narrows to uint32 (ranks are ``< n < 2^32``),
        * ``dist`` narrows to uint16 when the diameter allows, else uint32,
        * ``count`` narrows to uint32 with an explicit escape back to
          int64 when any σ value is ``>= 2^32``,
        * the ``hub`` column is dropped entirely (re-derived as
          ``order[rank]`` on demand).

        ``indptr`` and ``order`` stay int64: they are O(n), index into
        numpy arrays constantly, and narrowing them saves little.
        """
        from repro.observability.metrics import get_registry

        rank = self.rank.astype(np.uint32)
        max_dist = int(self.dist.max()) if self.dist.size else 0
        dist = self.dist.astype(
            np.uint16 if max_dist <= np.iinfo(np.uint16).max else np.uint32
        )
        max_count = int(self.count.max()) if self.count.size else 0
        if max_count <= int(np.iinfo(np.uint32).max):
            count = self.count.astype(np.uint32)
        else:
            count = self.count.astype(INT)
            registry = get_registry()
            if registry.enabled:
                registry.counter("spc_count_overflow_escapes_total").inc()
        return FlatLabels(
            self.n,
            np.asarray(self.indptr, dtype=INT),
            rank,
            None,
            dist,
            count,
            np.asarray(self.canonical, dtype=np.bool_),
            np.asarray(self.order, dtype=INT),
        )

    # -- packed encoding -----------------------------------------------------

    def packed_words(self, bits=DEFAULT_BITS, strict=False):
        """All entries under the paper's packed 64-bit encoding (§6).

        One ``uint64`` word per entry, row-major in CSR order — the same
        hub|dist|count field layout (and count saturation rule) as
        :func:`repro.io.serialize.pack_entry`.
        """
        return pack_entries(self.hub, self.dist, self.count, bits=bits, strict=strict)

    def packed_size_bytes(self, entry_bits=64):
        """Index size in bytes under the packed encoding (parity with LabelSet)."""
        if entry_bits % 8:
            raise ValueError("entry_bits must be a multiple of 8")
        return self.total_entries() * (entry_bits // 8)

    def validate_sorted(self):
        """Check every row's rank column is strictly increasing."""
        for v in range(self.n):
            lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
            row = self.rank[lo:hi]
            if row.size > 1 and not bool(np.all(row[1:] > row[:-1])):
                raise LabelingError(f"flat label of vertex {v} is not rank-sorted")
        return True

    def equals(self, other):
        """Exact column-wise equality (used by the round-trip tests).

        Value equality, not dtype equality — a compacted or mmap-backed
        labeling equals its int64 twin. ``hub`` is not compared: it is
        always ``order[rank]``, so rank+order equality already pins it
        without materializing the derived column.
        """
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.rank, other.rank)
            and np.array_equal(self.dist, other.dist)
            and np.array_equal(self.count, other.count)
            and np.array_equal(self.canonical, other.canonical)
            and np.array_equal(self.order, other.order)
        )

    def __repr__(self):
        return f"FlatLabels(n={self.n}, entries={self.total_entries()})"


def flatten_labels(labels):
    """Convenience alias: freeze ``labels`` into a :class:`FlatLabels`."""
    return FlatLabels.from_label_set(labels)
