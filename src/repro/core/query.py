"""Query evaluation over hub labels (§3.3, Algorithm 2).

All queries are merge joins over rank-sorted label lists, so a query costs
``O(|L(s)| + |L(t)|)``. The optional ``multiplicity`` argument implements
the λ-weighted evaluation of the equivalence reduction (§4.2): a common hub
``h`` that is not a query endpoint contributes ``σ_{s,h}·σ_{t,h}·mult(h)``.
"""

INF = float("inf")


def _merge_join(row_s, row_t, s, t, multiplicity):
    """Shared merge join: returns ``(distance, count)`` over two label rows."""
    delta = INF
    sigma = 0
    i = j = 0
    len_s = len(row_s)
    len_t = len(row_t)
    while i < len_s and j < len_t:
        entry_s = row_s[i]
        entry_t = row_t[j]
        rank_s = entry_s[0]
        rank_t = entry_t[0]
        if rank_s < rank_t:
            i += 1
        elif rank_s > rank_t:
            j += 1
        else:
            total = entry_s[2] + entry_t[2]
            if total <= delta:
                hub = entry_s[1]
                if multiplicity is None or hub == s or hub == t:
                    term = entry_s[3] * entry_t[3]
                else:
                    term = entry_s[3] * entry_t[3] * multiplicity[hub]
                if total < delta:
                    delta = total
                    sigma = term
                else:
                    sigma += term
            i += 1
            j += 1
    if sigma == 0:
        return INF, 0
    return delta, sigma


def merge_join_rows(row_s, row_t, s, t, multiplicity=None):
    """Public merge join over two rank-sorted label rows.

    Shared by the directed extension (§7), which joins ``L^out(s)`` with
    ``L^in(t)`` rows that live outside a :class:`LabelSet`.
    """
    return _merge_join(row_s, row_t, s, t, multiplicity)


def count_query(labels, s, t, multiplicity=None):
    """``(sd(s,t), spc(s,t))`` from the full labels ``L = L^c ∪ L^nc``.

    Returns ``(inf, 0)`` for disconnected pairs and ``(0, 1)`` when
    ``s == t`` (the empty path).
    """
    if s == t:
        return 0, 1
    return _merge_join(labels.merged(s), labels.merged(t), s, t, multiplicity)


def count(labels, s, t, multiplicity=None):
    """Just the shortest-path count ``spc(s, t)`` (Algorithm 2's return)."""
    return count_query(labels, s, t, multiplicity)[1]


def distance_query(labels, s, t):
    """Shortest distance from the canonical labels alone (Equation 1)."""
    if s == t:
        return 0
    delta, _ = _merge_join(labels.canonical(s), labels.canonical(t), s, t, None)
    return delta


def count_canonical_only(labels, s, t, multiplicity=None):
    """The Exp-5 approximation: evaluate Algorithm 2 on ``L^c`` alone.

    The distance is exact (canonical labels satisfy the cover constraint)
    but the count can underestimate, since non-trough shortest paths are
    only covered by ``L^nc`` entries. Returns ``(distance, approx_count)``.
    """
    if s == t:
        return 0, 1
    return _merge_join(labels.canonical(s), labels.canonical(t), s, t, multiplicity)


def count_set_query(labels, sources, targets):
    """Set-to-set counting: ``(sd(S, T), spc(S, T))`` (§4.3's notion).

    ``sd(S, T)`` is the minimum pairwise distance and ``spc(S, T)`` the
    number of shortest paths of that length between the sets. A path of
    minimal length cannot contain a second source (its suffix would be
    shorter), so aggregating each side's labels per hub — minimum
    distance, counts summed at the minimum — counts every minimal path
    exactly once, including length-0 paths when the sets intersect.
    """
    agg = {}
    for v in sources:
        for _, hub, dist, cnt in labels.merged(v):
            found = agg.get(hub)
            if found is None or dist < found[0]:
                agg[hub] = (dist, cnt)
            elif dist == found[0]:
                agg[hub] = (dist, found[1] + cnt)
    delta = INF
    sigma = 0
    for v in targets:
        for _, hub, dist, cnt in labels.merged(v):
            found = agg.get(hub)
            if found is None:
                continue
            total = found[0] + dist
            if total > delta:
                continue
            term = found[1] * cnt
            if total < delta:
                delta = total
                sigma = term
            else:
                sigma += term
    if sigma == 0:
        return INF, 0
    return delta, sigma


def common_hubs(labels, s, t):
    """The hubs shared by ``L(s)`` and ``L(t)`` that lie on shortest paths.

    Diagnostic helper (used by tests and the ESPC verifier); not on any
    query hot path.
    """
    if s == t:
        return [s] if any(h == s for _, h, _, _ in labels.merged(s)) else []
    row_s = labels.merged(s)
    row_t = labels.merged(t)
    delta, _ = _merge_join(row_s, row_t, s, t, None)
    out = []
    i = j = 0
    while i < len(row_s) and j < len(row_t):
        if row_s[i][0] < row_t[j][0]:
            i += 1
        elif row_s[i][0] > row_t[j][0]:
            j += 1
        else:
            if row_s[i][2] + row_t[j][2] == delta:
                out.append(row_s[i][1])
            i += 1
            j += 1
    return out
