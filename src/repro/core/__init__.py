"""The paper's primary contribution: HP-SPC hub labeling for counting."""

from repro.core.approx import BudgetedApproximator, accuracy_curve
from repro.core.batch_query import (
    count_many,
    count_many_arrays,
    count_set_to_set,
    single_source,
)
from repro.core.diagnostics import (
    label_statistics,
    validate_against_bfs,
    validate_oracle,
    validate_structure,
)
from repro.core.flat_labels import FlatLabels, flatten_labels
from repro.core.hp_spc import BuildStats, build_labels
from repro.core.index import SPCIndex
from repro.core.labels import LabelEntry, LabelSet
from repro.core.ordering import (
    BetweennessOrdering,
    DegreeOrdering,
    OrderingStrategy,
    PushTree,
    SignificantPathOrdering,
    StaticOrdering,
    resolve_ordering,
)
from repro.core.query import (
    count,
    count_canonical_only,
    count_query,
    count_set_query,
    distance_query,
)

__all__ = [
    "SPCIndex",
    "BudgetedApproximator",
    "accuracy_curve",
    "validate_against_bfs",
    "validate_oracle",
    "validate_structure",
    "label_statistics",
    "count_set_query",
    "count_many",
    "count_many_arrays",
    "count_set_to_set",
    "single_source",
    "FlatLabels",
    "flatten_labels",
    "LabelSet",
    "LabelEntry",
    "BuildStats",
    "build_labels",
    "count",
    "count_query",
    "count_canonical_only",
    "distance_query",
    "OrderingStrategy",
    "BetweennessOrdering",
    "DegreeOrdering",
    "SignificantPathOrdering",
    "StaticOrdering",
    "PushTree",
    "resolve_ordering",
]
