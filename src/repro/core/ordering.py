"""Vertex orderings for HP-SPC (§3.4).

The order ``⪯`` drives indexing time, index size and query time. Two
state-of-the-art heuristics from the paper are provided — degree-based and
significant-path-based — plus a static wrapper for externally computed
orders (the §5 theory orders and test fixtures).

A strategy is *online*: HP-SPC asks for the first vertex, then after each
hub push hands back the partial shortest-path tree of that push and asks
for the next vertex. Degree ordering ignores the tree; the significant-path
scheme is exactly the adaptive heuristic of §3.4.
"""

from repro.exceptions import OrderingError


class PushTree:
    """The partial shortest-path tree produced by one hub push.

    ``root`` is the pushed hub, ``visit_order`` lists visited vertices in
    BFS dequeue order (root first), and ``parent`` maps each visited vertex
    to its first discoverer (the root maps to itself).
    """

    __slots__ = ("root", "visit_order", "parent")

    def __init__(self, root, visit_order, parent):
        self.root = root
        self.visit_order = visit_order
        self.parent = parent

    def descendant_counts(self):
        """Subtree sizes (``des(v)``, counting ``v`` itself).

        Children appear after their parent in BFS visit order, so one
        reverse sweep accumulates subtree sizes bottom-up.
        """
        des = {v: 1 for v in self.visit_order}
        for v in reversed(self.visit_order):
            if v != self.root:
                des[self.parent[v]] += des[v]
        return des

    def children(self):
        """Mapping vertex -> list of tree children, in visit order."""
        kids = {v: [] for v in self.visit_order}
        for v in self.visit_order:
            if v != self.root:
                kids[self.parent[v]].append(v)
        return kids


class OrderingStrategy:
    """Interface HP-SPC drives. Subclasses pick vertices one at a time."""

    #: whether HP-SPC should collect a :class:`PushTree` after each push
    wants_tree = False

    def first_vertex(self, graph):
        raise NotImplementedError

    def next_vertex(self, graph, pushed, tree):
        """Return the next unpushed vertex, or ``None`` when done.

        ``pushed`` is a boolean array; ``tree`` is the :class:`PushTree` of
        the last push (``None`` unless :attr:`wants_tree`).
        """
        raise NotImplementedError


class StaticOrdering(OrderingStrategy):
    """Wrap a precomputed order (a sequence rank -> vertex)."""

    wants_tree = False

    def __init__(self, order):
        self._order = list(order)
        self._cursor = 0

    def first_vertex(self, graph):
        if sorted(self._order) != list(range(graph.n)):
            raise OrderingError("static order must be a permutation of the vertex set")
        self._cursor = 1
        return self._order[0] if self._order else None

    def next_vertex(self, graph, pushed, tree):
        if self._cursor >= len(self._order):
            return None
        v = self._order[self._cursor]
        self._cursor += 1
        return v


class DegreeOrdering(OrderingStrategy):
    """Non-ascending degree, ties by vertex id (§3.4, [6, 32]).

    This is the order behind the state-of-the-art canonical distance
    labeling (pruned landmark labeling).
    """

    wants_tree = False

    def __init__(self):
        self._order = None
        self._cursor = 0

    @staticmethod
    def static_order(graph):
        """The full degree order as a list (rank -> vertex)."""
        return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))

    def first_vertex(self, graph):
        self._order = self.static_order(graph)
        self._cursor = 1
        return self._order[0] if self._order else None

    def next_vertex(self, graph, pushed, tree):
        if self._cursor >= len(self._order):
            return None
        v = self._order[self._cursor]
        self._cursor += 1
        return v


class SignificantPathOrdering(OrderingStrategy):
    """The adaptive significant-path scheme of §3.4 ([5, 39]).

    After pushing ``w_i``, walk the push tree from the root picking the
    child with the most descendants until a leaf — the *significant path*
    ``p_sig``. Among its vertices other than the root, pick the one
    maximising ``deg(v) * (des(par(v)) - des(v))`` as ``w_{i+1}``.
    ``w_1`` is the highest-degree vertex. When the push tree offers no
    candidate (trivial tree, exhausted component), fall back to the
    highest-degree unpushed vertex.
    """

    wants_tree = True

    def __init__(self):
        self._degree_queue = None

    def first_vertex(self, graph):
        # Highest degree first; the lazy queue below serves fallbacks.
        self._degree_queue = DegreeOrdering.static_order(graph)
        self._fallback_cursor = 1
        return self._degree_queue[0] if self._degree_queue else None

    def next_vertex(self, graph, pushed, tree):
        candidate = self._from_significant_path(graph, pushed, tree)
        if candidate is not None:
            return candidate
        while self._fallback_cursor < len(self._degree_queue):
            v = self._degree_queue[self._fallback_cursor]
            self._fallback_cursor += 1
            if not pushed[v]:
                return v
        return None

    def _from_significant_path(self, graph, pushed, tree):
        if tree is None or len(tree.visit_order) <= 1:
            return None
        des = tree.descendant_counts()
        kids = tree.children()
        # Walk the significant path root -> leaf by max descendant count.
        path = []
        v = tree.root
        while kids[v]:
            v = max(kids[v], key=lambda child: (des[child], -child))
            path.append(v)
        best = None
        best_score = -1
        for v in path:
            if pushed[v]:
                continue
            score = graph.degree(v) * (des[tree.parent[v]] - des[v])
            if score > best_score:
                best, best_score = v, score
        return best


class BetweennessOrdering(OrderingStrategy):
    """Rank by approximate betweenness from sampled BFS sources.

    A standard third heuristic in the hub-labeling literature ([39]'s
    experimental study): vertices covering many shortest paths get high
    rank. Dependencies are accumulated Brandes-style from ``samples``
    random sources (all sources when the graph is small), then vertices
    sort by descending score with degree and id as tie-breakers.
    """

    wants_tree = False

    def __init__(self, samples=64, seed=0):
        self._samples = samples
        self._seed = seed
        self._order = None
        self._cursor = 0

    def static_order(self, graph):
        from collections import deque

        from repro.utils.rng import ensure_rng

        n = graph.n
        rng = ensure_rng(self._seed)
        if n <= self._samples:
            sources = list(graph.vertices())
        else:
            sources = [rng.randrange(n) for _ in range(self._samples)]
        score = [0.0] * n
        for s in sources:
            dist = [-1] * n
            sigma = [0] * n
            preds = [[] for _ in range(n)]
            dist[s] = 0
            sigma[s] = 1
            order = []
            queue = deque([s])
            while queue:
                v = queue.popleft()
                order.append(v)
                for w in graph.neighbors(v):
                    if dist[w] < 0:
                        dist[w] = dist[v] + 1
                        queue.append(w)
                    if dist[w] == dist[v] + 1:
                        sigma[w] += sigma[v]
                        preds[w].append(v)
            delta = [0.0] * n
            for w in reversed(order):
                coefficient = (1.0 + delta[w]) / sigma[w]
                for v in preds[w]:
                    delta[v] += sigma[v] * coefficient
                if w != s:
                    score[w] += delta[w]
        return sorted(
            graph.vertices(), key=lambda v: (-score[v], -graph.degree(v), v)
        )

    def first_vertex(self, graph):
        self._order = self.static_order(graph)
        self._cursor = 1
        return self._order[0] if self._order else None

    def next_vertex(self, graph, pushed, tree):
        if self._cursor >= len(self._order):
            return None
        v = self._order[self._cursor]
        self._cursor += 1
        return v


_BY_NAME = {
    "degree": DegreeOrdering,
    "significant-path": SignificantPathOrdering,
    "sigpath": SignificantPathOrdering,
    "betweenness": BetweennessOrdering,
}


def resolve_ordering(spec):
    """Normalise an ordering spec into an :class:`OrderingStrategy`.

    ``spec`` may be a strategy instance, a name (``"degree"``,
    ``"significant-path"``), or an explicit sequence of vertices.
    """
    if isinstance(spec, OrderingStrategy):
        return spec
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec]()
        except KeyError:
            raise OrderingError(
                f"unknown ordering {spec!r}; expected one of {sorted(_BY_NAME)}"
            ) from None
    if isinstance(spec, (list, tuple)):
        return StaticOrdering(spec)
    raise OrderingError(f"cannot interpret ordering spec of type {type(spec).__name__}")


def resolve_static_order(graph, ordering="degree"):
    """Materialize a full static order (rank -> vertex) for ``ordering``.

    Drives the strategy without push trees, so any tree-free strategy
    (degree, betweenness, explicit lists) works; adaptive strategies raise
    :class:`OrderingError`. This is the entry point shared by the parallel
    builder and the vectorized CSR construction kernels, both of which need
    the whole order up front.
    """
    strategy = resolve_ordering(ordering)
    if strategy.wants_tree:
        raise OrderingError(
            "this builder needs a static ordering; "
            "adaptive (tree-driven) strategies must use the sequential python builder"
        )
    n = graph.n
    pushed = [False] * n
    order = []
    w = strategy.first_vertex(graph) if n else None
    while w is not None:
        if pushed[w]:
            raise OrderingError(f"ordering strategy returned vertex {w} twice")
        order.append(w)
        pushed[w] = True
        w = strategy.next_vertex(graph, pushed, None)
    if len(order) != n:
        missing = [v for v in range(n) if not pushed[v]]
        raise OrderingError(f"ordering did not cover all vertices; missing {missing[:5]}")
    return order
