"""Labeling diagnostics: validation and structural statistics.

Production tooling around an index: spot-check exactness against online
BFS, report per-label statistics, and audit the structural invariants the
construction guarantees (rank-sortedness, true distances, hub-rank
dominance). Used by the CLI's ``stats``/``verify`` commands and by the
integration tests.
"""

from repro.core.query import count_query
from repro.exceptions import LabelingError
from repro.graph.traversal import bfs_distances, spc_bfs
from repro.utils.rng import random_pairs
from repro.utils.stats import percentile

INF = float("inf")


def validate_against_bfs(labels, graph, samples=200, seed=0, multiplicity=None):
    """Spot-check ``count_query`` against BFS counting on random pairs.

    Intended for plain (unreduced) labelings, where label queries answer
    the same graph the BFS runs on. Raises :class:`LabelingError` on the
    first mismatch; returns the number of checked pairs.
    """
    checked = 0
    for s, t in random_pairs(graph.n, samples, rng=seed):
        want = spc_bfs(graph, s, t)
        got = count_query(labels, s, t, multiplicity)
        if got != want:
            raise LabelingError(f"query ({s}, {t}): labels say {got}, BFS says {want}")
        checked += 1
    return checked


def validate_oracle(oracle, graph, samples=200, seed=0):
    """Spot-check *any* index (reduced, directed-on-symmetric, dynamic...)
    exposing ``count_with_distance`` against BFS on ``graph``.

    Raises :class:`LabelingError` on the first mismatch; returns the
    number of checked pairs.
    """
    checked = 0
    for s, t in random_pairs(graph.n, samples, rng=seed):
        want = spc_bfs(graph, s, t)
        got = oracle.count_with_distance(s, t)
        if got != want:
            raise LabelingError(f"query ({s}, {t}): oracle says {got}, BFS says {want}")
        checked += 1
    return checked


def validate_structure(labels, graph):
    """Audit construction invariants on every label entry.

    * both lists rank-sorted;
    * entry distances equal true BFS distances;
    * every hub outranks (or equals) the labelled vertex;
    * counts are positive;
    * each vertex carries its self entry unless its label was dropped.

    Raises :class:`LabelingError` on the first violation.
    """
    labels.validate_sorted()
    rank_of = labels.rank_of
    if rank_of is None:
        raise LabelingError("labels carry no vertex order")
    for v in range(labels.n):
        merged = labels.merged(v)
        if not merged:
            continue  # dropped by the independent-set reduction
        dist = bfs_distances(graph, v)
        saw_self = False
        for rank, hub, d, c in merged:
            if rank_of[hub] != rank:
                raise LabelingError(f"L({v}): hub {hub} carries wrong rank {rank}")
            if rank > rank_of[v]:
                raise LabelingError(f"L({v}): hub {hub} ranks below vertex {v}")
            if d != dist[hub]:
                raise LabelingError(
                    f"L({v}): entry for hub {hub} has distance {d}, true {dist[hub]}"
                )
            if c < 1:
                raise LabelingError(f"L({v}): non-positive count for hub {hub}")
            saw_self = saw_self or hub == v
        if not saw_self:
            raise LabelingError(f"L({v}): missing self entry")
    return True


def label_statistics(labels):
    """Summary statistics for reports (sizes, c/nc split, percentiles)."""
    sizes = labels.size_histogram()
    populated = [size for size in sizes if size] or [0]
    return {
        "n": labels.n,
        "total_entries": labels.total_entries(),
        "canonical_entries": labels.canonical_size(),
        "noncanonical_entries": labels.noncanonical_size(),
        "nc_over_c": labels.noncanonical_size() / max(1, labels.canonical_size()),
        "dropped_labels": sum(1 for size in sizes if size == 0),
        "min_label": min(populated),
        "median_label": percentile(populated, 50),
        "p90_label": percentile(populated, 90),
        "max_label": max(populated),
        "bytes_64bit": labels.packed_size_bytes(64),
    }


def query_statistics(labels, pairs):
    """Per-query structural costs over a workload.

    Reports the average scanned label entries (the Algorithm 2 cost
    model, ``|L(s)| + |L(t)|``) and the average number of common hubs at
    the shortest distance.
    """
    from repro.core.query import common_hubs

    scanned = []
    meeting = []
    for s, t in pairs:
        scanned.append(labels.label_size(s) + labels.label_size(t))
        meeting.append(len(common_hubs(labels, s, t)))
    return {
        "queries": len(scanned),
        "avg_scanned_entries": sum(scanned) / max(1, len(scanned)),
        "avg_meeting_hubs": sum(meeting) / max(1, len(meeting)),
        "max_scanned_entries": max(scanned, default=0),
    }
