"""Explicit exact shortest path coverings (§3.1).

This module materialises the paper's ``T(·)`` structure — every trough
shortest path, as an actual vertex sequence — so the ESPC definitions can
be checked literally: ``cover(T(u), T(v))`` is built as a true multiset and
compared with the enumerated ``P_{u,v}``. It is exponential in the worst
case and exists for validation and pedagogy, not production use; HP-SPC
(:mod:`repro.core.hp_spc`) builds the induced labeling without ever
materialising paths.
"""

from collections import Counter, deque

from repro.exceptions import LabelingError, OrderingError

INF = float("inf")


def all_shortest_paths(graph, s, t):
    """Enumerate ``P_{s,t}`` as tuples of vertices (``s`` first).

    Returns an empty list when ``s`` and ``t`` are disconnected; the single
    empty-extension path ``(s,)`` when ``s == t``.
    """
    if s == t:
        return [(s,)]
    dist = [INF] * graph.n
    dist[s] = 0
    queue = deque([s])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if dist[w] is INF:
                dist[w] = dist[v] + 1
                queue.append(w)
    if dist[t] is INF:
        return []
    paths = []
    stack = [(t, (t,))]
    while stack:
        v, suffix = stack.pop()
        if v == s:
            paths.append(suffix)
            continue
        for w in graph.neighbors(v):
            if dist[w] == dist[v] - 1:
                stack.append((w, (w,) + suffix))
    return paths


def vertices_on_shortest_paths(graph, s, t):
    """``Q_{s,t}``: the set of vertices involved in ``P_{s,t}``."""
    out = set()
    for path in all_shortest_paths(graph, s, t):
        out.update(path)
    return out


def is_trough_path(path, rank_of):
    """Whether one endpoint outranks every other vertex of ``path`` ([32])."""
    if len(path) == 1:
        return True
    best = min(rank_of[v] for v in path)
    return rank_of[path[0]] == best or rank_of[path[-1]] == best


def trough_shortest_paths(graph, v, w, rank_of):
    """``C_{v,w}``: shortest ``v -> w`` paths with ``w`` ranked highest."""
    paths = []
    target_rank = rank_of[w]
    for path in all_shortest_paths(graph, v, w):
        if all(rank_of[x] >= target_rank for x in path):
            paths.append(path)
    return paths


def build_espc(graph, order):
    """Materialise ``T_⪯(·)`` for a total order (rank -> vertex list).

    ``T(v)`` maps hub ``w`` to the tuple of trough shortest paths from
    ``v`` to ``w`` (each path a vertex tuple starting at ``v``), for every
    ``w ⪯ v`` with a non-empty path set — including the trivial self entry.
    """
    if sorted(order) != list(range(graph.n)):
        raise OrderingError("order must be a permutation of the vertex set")
    rank_of = [0] * graph.n
    for rank, v in enumerate(order):
        rank_of[v] = rank
    cover_map = [dict() for _ in range(graph.n)]
    for v in graph.vertices():
        for w in graph.vertices():
            if rank_of[w] > rank_of[v]:
                continue  # w must outrank (or equal) v
            paths = trough_shortest_paths(graph, v, w, rank_of)
            if paths:
                cover_map[v][w] = tuple(sorted(paths))
    return cover_map, rank_of


def cover(entries_u, entries_v, sd_u_v):
    """The multiset ``cover(T(u), T(v))`` of §3.1.

    ``entries_u``/``entries_v`` map hub -> tuple of paths (from ``u``/``v``
    to the hub); concatenation reverses the second path. ``sd_u_v`` is the
    shortest distance between ``u`` and ``v``; hub pairs whose distance sum
    exceeds it contribute nothing.
    """
    result = Counter()
    for w, paths_u in entries_u.items():
        paths_v = entries_v.get(w)
        if not paths_v:
            continue
        du = len(paths_u[0]) - 1
        dv = len(paths_v[0]) - 1
        if du + dv != sd_u_v:
            continue
        for p1 in paths_u:
            for p2 in paths_v:
                result[p1 + tuple(reversed(p2[:-1]))] += 1
    return result


def verify_espc(graph, cover_map):
    """Check that ``cover_map`` is an ESPC: every pair's cover == P_{u,v}.

    Raises :class:`LabelingError` naming the first failing pair; returns
    ``True`` otherwise. Quadratic in pairs and exponential in path counts —
    test-sized graphs only.
    """
    from repro.graph.traversal import bfs_distances

    for u in graph.vertices():
        dist = bfs_distances(graph, u)
        for v in graph.vertices():
            if v < u or dist[v] is INF:
                continue
            covered = cover(cover_map[u], cover_map[v], dist[v])
            expected = Counter(all_shortest_paths(graph, u, v))
            if covered != expected:
                raise LabelingError(
                    f"cover(T({u}), T({v})) != P_{{{u},{v}}}: "
                    f"covered {sum(covered.values())} paths "
                    f"({sum(v > 1 for v in covered.values())} duplicated), "
                    f"expected {sum(expected.values())}"
                )
    return True


def is_minimal_espc(graph, cover_map):
    """Check §3.1's minimality claim: removing any entry breaks the ESPC."""
    for v in graph.vertices():
        for w in list(cover_map[v]):
            removed = cover_map[v].pop(w)
            try:
                verify_espc(graph, cover_map)
            except LabelingError:
                pass  # breaking the cover is exactly what minimality demands
            else:
                cover_map[v][w] = removed
                return False
            cover_map[v][w] = removed
    return True


def labels_from_espc(cover_map):
    """The hub labeling a cover induces: ``v -> {hub: (dist, count)}``.

    Mirrors §3.1's construction: each entry ``(w, C_{v,w})`` becomes
    ``(w, sd(v,w), |C_{v,w}|)``. Used to cross-check HP-SPC's output
    against the ground-truth ESPC in tests.
    """
    out = []
    for entries in cover_map:
        label = {}
        for w, paths in entries.items():
            label[w] = (len(paths[0]) - 1, len(paths))
        out.append(label)
    return out
