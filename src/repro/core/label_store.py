"""Streaming chunk store for freeze-free label construction.

:class:`LabelStore` is the emission sink of the large-graph construction
path: builders append per-push emission chunks (``(rank, verts, dists,
counts, canonical)`` in rank space, rank-ascending) and ``finalize``
assembles the final :class:`~repro.core.flat_labels.FlatLabels` CSR
columns directly — no intermediate Python ``LabelSet`` and no global
argsort.

Two properties of the emission stream make a counting sort sufficient:
chunks arrive in rank-ascending order, and within a chunk every vertex
appears at most once. An incremental per-vertex entry count therefore
yields ``indptr`` up front, and a single cursor scatter per chunk places
every entry at its final position with the rank column of each row
already strictly increasing — the same layout a stable argsort over the
concatenated chunks would produce, using O(n) scratch instead of
O(total entries).

Backends:

* **ram** (default) — chunks buffer in memory as narrow copies.
* **spill** (``spill_dir=...``) — chunk columns stream to three flat
  files on disk as they are appended, so peak construction RAM excludes
  the label payload entirely.

``finalize(mmap_dir=...)`` writes the output columns as ``np.memmap``
files instead of RAM arrays, so a build's label payload can exceed
memory end to end.
"""

import os
from time import perf_counter

import numpy as np

from repro.core.flat_labels import FlatLabels
from repro.observability.metrics import get_registry

INT = np.int64

#: spill / compact dtypes: vertex ids and distances are < n < 2^32.
_VERT_DTYPE = np.uint32
_DIST_DTYPE = np.uint32

_SPILL_FILES = ("store_verts.u32", "store_dists.u32", "store_counts.i64")
_COLUMN_FILES = {
    "rank": "labels_rank.bin",
    "dist": "labels_dist.bin",
    "count": "labels_count.bin",
    "canonical": "labels_canonical.bin",
}


class LabelStore:
    """Append-only emission log with a counting-sort finalize.

    Parameters
    ----------
    n : int
        Vertex count (chunks are in rank space, ids ``< n``).
    spill_dir : str or None
        When set, chunk columns stream to files under this directory
        instead of accumulating in RAM. The directory must exist; the
        spill files are removed by :meth:`close`.
    """

    __slots__ = ("n", "spill_dir", "entries", "bytes_appended",
                 "_per_vertex", "_meta", "_verts", "_dists", "_counts",
                 "_handles", "_max_dist", "_max_count", "_closed")

    def __init__(self, n, spill_dir=None):
        self.n = n
        self.spill_dir = spill_dir
        self.entries = 0
        self.bytes_appended = 0
        self._per_vertex = np.zeros(n, dtype=INT)
        self._meta = []  # (rank, size, canonical) per chunk
        self._verts = []
        self._dists = []
        self._counts = []
        self._handles = None
        self._max_dist = 0
        self._max_count = 0
        self._closed = False
        if spill_dir is not None:
            self._handles = tuple(
                open(os.path.join(spill_dir, name), "w+b")
                for name in _SPILL_FILES
            )

    # -- appending -----------------------------------------------------------

    def append(self, rank, verts, dists, counts, canonical):
        """Append one emission chunk (arrays in rank space, verts unique)."""
        size = verts.size
        if size == 0:
            return
        self._per_vertex[verts] += 1
        self._meta.append((int(rank), int(size), bool(canonical)))
        self.entries += size
        verts32 = verts.astype(_VERT_DTYPE, copy=False)
        dists32 = dists.astype(_DIST_DTYPE, copy=False)
        counts64 = counts.astype(INT, copy=False)
        self._max_dist = max(self._max_dist, int(dists32.max()))
        self._max_count = max(self._max_count, int(counts64.max()))
        appended = verts32.nbytes + dists32.nbytes + counts64.nbytes
        self.bytes_appended += appended
        if self._handles is None:
            # astype(copy=False) may alias the caller's scratch; keep copies.
            self._verts.append(np.array(verts32, copy=True))
            self._dists.append(np.array(dists32, copy=True))
            self._counts.append(np.array(counts64, copy=True))
        else:
            for handle, column in zip(self._handles,
                                      (verts32, dists32, counts64)):
                handle.write(column.tobytes())
        registry = get_registry()
        if registry.enabled:
            backend = "ram" if self._handles is None else "spill"
            registry.counter("spc_label_store_bytes_total",
                             backend=backend).inc(appended)

    def _iter_chunks(self):
        """Replay appended chunks in order: ``(rank, verts, dists, counts, flag)``."""
        if self._handles is None:
            for meta, verts, dists, counts in zip(self._meta, self._verts,
                                                  self._dists, self._counts):
                yield meta[0], verts, dists, counts, meta[2]
            return
        for handle in self._handles:
            handle.flush()
            handle.seek(0)
        vh, dh, ch = self._handles
        vert_width = np.dtype(_VERT_DTYPE).itemsize
        dist_width = np.dtype(_DIST_DTYPE).itemsize
        count_width = np.dtype(INT).itemsize
        for rank, size, flag in self._meta:
            verts = np.frombuffer(vh.read(size * vert_width), dtype=_VERT_DTYPE)
            dists = np.frombuffer(dh.read(size * dist_width), dtype=_DIST_DTYPE)
            counts = np.frombuffer(ch.read(size * count_width), dtype=INT)
            yield rank, verts, dists, counts, flag

    # -- finalize ------------------------------------------------------------

    def _alloc(self, name, dtype, total, mmap_dir):
        if mmap_dir is None or total == 0:  # mmap cannot map empty files
            return np.empty(total, dtype=dtype)
        path = os.path.join(mmap_dir, _COLUMN_FILES[name])
        return np.memmap(path, dtype=dtype, mode="w+", shape=(total,))

    def finalize(self, order_np, mmap_dir=None, compact=True):
        """Counting-sort the chunks into a :class:`FlatLabels` and clean up.

        ``order_np`` maps ranks back to original vertex ids. With
        ``compact`` (the default) the columns use the narrow dtypes of
        :meth:`FlatLabels.compact` — uint32 ranks, uint16/uint32 dists,
        uint32 counts with the explicit int64 overflow escape; otherwise
        everything is int64 for parity with the historical layout. With
        ``mmap_dir`` the four entry columns live in memory-mapped files
        under that directory instead of RAM.
        """
        registry = get_registry()
        start = perf_counter() if registry.enabled else None
        n = self.n
        order_np = np.asarray(order_np, dtype=INT)
        indptr = np.zeros(n + 1, dtype=INT)
        per_orig = np.zeros(n, dtype=INT)
        if n:
            per_orig[order_np] = self._per_vertex
        np.cumsum(per_orig, out=indptr[1:])
        total = int(indptr[-1])

        if compact:
            rank_dtype = np.uint32
            dist_dtype = (np.uint16 if self._max_dist <= np.iinfo(np.uint16).max
                          else np.uint32)
            if self._max_count <= int(np.iinfo(np.uint32).max):
                count_dtype = np.uint32
            else:
                count_dtype = INT
                if registry.enabled:
                    registry.counter("spc_count_overflow_escapes_total").inc()
        else:
            rank_dtype = dist_dtype = count_dtype = INT
        rank_col = self._alloc("rank", rank_dtype, total, mmap_dir)
        dist_col = self._alloc("dist", dist_dtype, total, mmap_dir)
        count_col = self._alloc("count", count_dtype, total, mmap_dir)
        can_col = self._alloc("canonical", np.bool_, total, mmap_dir)

        cursor = indptr[:-1].copy()
        for rank, verts, dists, counts, flag in self._iter_chunks():
            orig = order_np[verts]
            pos = cursor[orig]
            rank_col[pos] = rank
            dist_col[pos] = dists
            count_col[pos] = counts
            can_col[pos] = flag
            cursor[orig] = pos + 1
        self.close()
        flat = FlatLabels(n, indptr, rank_col, None, dist_col, count_col,
                          can_col, order_np.copy())
        if start is not None:
            registry.histogram("spc_label_store_finalize_seconds").observe(
                perf_counter() - start
            )
        return flat

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Release chunk buffers and delete any spill files (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._verts = self._dists = self._counts = []
        self._meta = []
        if self._handles is not None:
            for handle, name in zip(self._handles, _SPILL_FILES):
                handle.close()
                try:
                    os.unlink(os.path.join(self.spill_dir, name))
                except OSError:
                    pass
            self._handles = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
